//! The shared game arena: level-synchronous position enumeration with
//! parallel frontier fan-out, and worklist-driven deletion propagation.
//!
//! Every solver in this crate decides an AND-OR deletion game over a
//! space of positions: the Spoiler picks a *challenge*, the Duplicator
//! must pick a surviving *reply*. A position dies when some challenge has
//! no alive reply (forth failure); in games where the Spoiler may also
//! retreat (remove a pebble), every extension of a dead position dies
//! with it (closure under subpositions, contrapositive).
//!
//! [`Arena::build_and_solve`] does both steps:
//!
//! 1. **Generation** proceeds level by level from the root. Each frontier
//!    is expanded *in parallel* ([`kv_structures::par::par_map`]) — the
//!    per-position [`GameSpec::expand`] calls are pure and independent —
//!    and the results are interned sequentially in frontier order, so node
//!    ids are identical to a sequential build.
//! 2. **Deletion** runs a worklist seeded with forth failures. Every
//!    option edge carries a reverse (parent) link; when a position dies,
//!    its extensions are killed directly (if the game closes under
//!    subpositions) and each predecessor's alive-reply counter for the
//!    linking challenge is decremented, dying in turn on reaching zero.
//!    Each arena edge is thus examined O(1) times — total work O(edges) —
//!    instead of rescanning every position each round as a naive value
//!    iteration does ([`crate::win_iteration`], kept as the differential
//!    partner).

use kv_structures::par::par_map;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;

/// Where a reply leads, as reported by [`GameSpec::expand`].
#[derive(Debug, Clone)]
pub enum Child<K> {
    /// The reply leads back to the same position (re-pebbling an existing
    /// pair). A stutter counts as an option that can never be refuted: it
    /// gets no reverse link, so it is never decremented — the position it
    /// protects only dies by closure or another challenge.
    Stutter,
    /// The reply leads to the position with this key (interned on first
    /// sight).
    Key(K),
}

/// Why a position was deleted from the surviving family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Death<C> {
    /// Forth failure: this challenge defeated every reply.
    Forth(C),
    /// Closure under subpositions: the subposition `parent` died, and
    /// removing the pebble placed by `challenge` exposes it.
    Retreat {
        /// Id of the dead subposition.
        parent: usize,
        /// The challenge whose pebble the Spoiler picks up to retreat.
        challenge: C,
    },
}

/// A game presented to the arena builder.
///
/// `expand` must be **pure**: it is called from worker threads during the
/// parallel frontier fan-out, and its output must depend only on the key
/// (and level) so that parallel and sequential builds agree exactly.
pub trait GameSpec: Sync {
    /// Canonical position key (interning identity).
    type Key: Clone + Eq + Hash + Send + Sync;
    /// A Spoiler challenge.
    type Challenge: Clone + PartialEq + Send;
    /// A Duplicator reply.
    type Reply: Clone + PartialEq + Send;

    /// Number of expansion levels from the root (positions generated at
    /// the final level are not expanded — they have no challenge entries
    /// and stay alive unless killed by closure). Use `usize::MAX` for
    /// games whose position space is exhausted by reachability, e.g. on
    /// acyclic state graphs.
    fn depth(&self) -> usize;

    /// Whether extensions of a dead position die with it (the Spoiler may
    /// retreat by removing pebbles). `false` turns the deletion into pure
    /// backward induction, correct on acyclic position graphs.
    fn closure_under_subpositions(&self) -> bool;

    /// All challenges at `key` with, for each, every valid reply and the
    /// position it leads to. A challenge with an empty reply list is an
    /// immediate forth failure.
    fn expand(&self, key: &Self::Key, level: usize) -> Expansion<Self>;
}

/// The result of expanding one position: every challenge paired with its
/// reply options.
pub type Expansion<S> = Vec<(
    <S as GameSpec>::Challenge,
    Vec<(<S as GameSpec>::Reply, Child<<S as GameSpec>::Key>)>,
)>;

/// Per-challenge bookkeeping: surviving-reply counter plus the option
/// edges `(reply, child_id)`.
#[derive(Debug)]
struct ExtEntry<R> {
    alive_options: u32,
    options: Vec<(R, usize)>,
}

#[derive(Debug)]
struct Node<K, C, R> {
    key: K,
    /// Expanded nodes participate in forth seeding; final-level nodes do
    /// not (they carry no challenge entries).
    expanded: bool,
    alive: bool,
    death: Option<Death<C>>,
    extensions: Vec<(C, ExtEntry<R>)>,
    /// Reverse links: `(parent_id, challenge, reply)` for every non-stutter
    /// option edge `parent --challenge/reply--> self`.
    parents: Vec<(usize, C, R)>,
}

/// A built and solved arena: positions, option edges, aliveness verdicts.
#[derive(Debug)]
pub struct Arena<K, C, R> {
    nodes: Vec<Node<K, C, R>>,
    by_key: HashMap<K, usize>,
    edge_count: usize,
}

impl<K, C, R> Arena<K, C, R>
where
    K: Clone + Eq + Hash + Send + Sync,
    C: Clone + PartialEq + Send,
    R: Clone + PartialEq + Send,
{
    /// An arena with no positions at all (used by games whose root is
    /// already invalid).
    pub fn empty() -> Self {
        Self {
            nodes: Vec::new(),
            by_key: HashMap::new(),
            edge_count: 0,
        }
    }

    /// Enumerates the position space reachable from `root` and runs the
    /// deletion worklist. Position 0 is the root.
    pub fn build_and_solve<S>(spec: &S, root: K) -> Self
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        let mut arena = Self {
            nodes: vec![Node {
                key: root.clone(),
                expanded: false,
                alive: true,
                death: None,
                extensions: Vec::new(),
                parents: Vec::new(),
            }],
            by_key: HashMap::from([(root, 0usize)]),
            edge_count: 0,
        };

        let mut frontier: Vec<usize> = vec![0];
        let mut level = 0usize;
        while !frontier.is_empty() && level < spec.depth() {
            // Parallel fan-out: expansion is pure, so farm it out per
            // frontier position; interning below stays sequential and in
            // frontier order, keeping ids deterministic.
            let keys: Vec<K> = frontier
                .iter()
                .map(|&id| arena.nodes[id].key.clone())
                .collect();
            let expansions = par_map(&keys, |_, key| spec.expand(key, level));

            let mut next: Vec<usize> = Vec::new();
            for (&fid, expansion) in frontier.iter().zip(expansions) {
                arena.nodes[fid].expanded = true;
                for (ch, opts) in expansion {
                    let mut options: Vec<(R, usize)> = Vec::with_capacity(opts.len());
                    for (reply, child) in opts {
                        let child_id = match child {
                            Child::Stutter => fid,
                            Child::Key(key) => {
                                let id = match arena.by_key.entry(key) {
                                    Entry::Occupied(e) => *e.get(),
                                    Entry::Vacant(e) => {
                                        let id = arena.nodes.len();
                                        arena.nodes.push(Node {
                                            key: e.key().clone(),
                                            expanded: false,
                                            alive: true,
                                            death: None,
                                            extensions: Vec::new(),
                                            parents: Vec::new(),
                                        });
                                        next.push(id);
                                        e.insert(id);
                                        id
                                    }
                                };
                                arena.nodes[id]
                                    .parents
                                    .push((fid, ch.clone(), reply.clone()));
                                id
                            }
                        };
                        options.push((reply, child_id));
                    }
                    arena.edge_count += options.len();
                    arena.nodes[fid].extensions.push((
                        ch,
                        ExtEntry {
                            alive_options: options.len() as u32,
                            options,
                        },
                    ));
                }
            }
            frontier = next;
            level += 1;
        }

        arena.run_deletion(spec.closure_under_subpositions());
        arena
    }

    /// The deletion worklist: seed forth failures, then propagate each
    /// death once along its reverse links.
    fn run_deletion(&mut self, closure: bool) {
        let mut queue: Vec<usize> = Vec::new();
        for id in 0..self.nodes.len() {
            if !self.nodes[id].expanded {
                continue;
            }
            let failed = self.nodes[id]
                .extensions
                .iter()
                .find(|(_, e)| e.alive_options == 0)
                .map(|(c, _)| c.clone());
            if let Some(ch) = failed {
                self.kill(id, Death::Forth(ch), &mut queue);
            }
        }
        while let Some(dead) = queue.pop() {
            if closure {
                // Every extension of a dead position dies: the Spoiler
                // retreats to `dead` by lifting the linking pebble.
                let children: Vec<(C, usize)> = self.nodes[dead]
                    .extensions
                    .iter()
                    .flat_map(|(c, e)| e.options.iter().map(|&(_, child)| (c.clone(), child)))
                    .filter(|&(_, child)| child != dead)
                    .collect();
                for (ch, child) in children {
                    if self.nodes[child].alive {
                        self.kill(
                            child,
                            Death::Retreat {
                                parent: dead,
                                challenge: ch,
                            },
                            &mut queue,
                        );
                    }
                }
            }
            // Predecessors lose one surviving reply for the linking
            // challenge; on zero they fail forth.
            let parents = std::mem::take(&mut self.nodes[dead].parents);
            for &(pid, ref ch, _) in &parents {
                if !self.nodes[pid].alive {
                    continue;
                }
                let exhausted = {
                    let entry = self.nodes[pid]
                        .extensions
                        .iter_mut()
                        .find(|(c, _)| c == ch)
                        .map(|(_, e)| e)
                        .expect("reverse link matches an extension entry");
                    entry.alive_options -= 1;
                    entry.alive_options == 0
                };
                if exhausted {
                    self.kill(pid, Death::Forth(ch.clone()), &mut queue);
                }
            }
            self.nodes[dead].parents = parents;
        }
    }

    fn kill(&mut self, id: usize, death: Death<C>, queue: &mut Vec<usize>) {
        let node = &mut self.nodes[id];
        if node.alive {
            node.alive = false;
            node.death = Some(death);
            queue.push(id);
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no positions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of option edges (the worklist's propagation budget).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of surviving positions.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Did position `id` survive?
    pub fn is_alive(&self, id: usize) -> bool {
        self.nodes[id].alive
    }

    /// Why position `id` died, if it did.
    pub fn death(&self, id: usize) -> Option<&Death<C>> {
        self.nodes[id].death.as_ref()
    }

    /// The key of position `id`.
    pub fn key(&self, id: usize) -> &K {
        &self.nodes[id].key
    }

    /// Looks a position up by key.
    pub fn id_of(&self, key: &K) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// First surviving reply to `challenge` at position `id`.
    pub fn reply(&self, id: usize, challenge: &C) -> Option<(R, usize)> {
        self.entry(id, challenge)?
            .options
            .iter()
            .find(|&&(_, child)| self.nodes[child].alive)
            .cloned()
    }

    /// The position reached from `id` by `challenge` answered with
    /// `reply`, dead or alive.
    pub fn child(&self, id: usize, challenge: &C, reply: &R) -> Option<usize> {
        self.entry(id, challenge)?
            .options
            .iter()
            .find(|(r, _)| r == reply)
            .map(|&(_, child)| child)
    }

    /// The subposition reached from `id` by removing the pebble placed by
    /// `challenge` (any reply).
    pub fn parent_by_challenge(&self, id: usize, challenge: &C) -> Option<usize> {
        self.nodes[id]
            .parents
            .iter()
            .find(|(_, c, _)| c == challenge)
            .map(|&(pid, _, _)| pid)
    }

    /// The subposition reached from `id` by removing the exact pebble
    /// `(challenge, reply)`.
    pub fn parent_by_edge(&self, id: usize, challenge: &C, reply: &R) -> Option<usize> {
        self.nodes[id]
            .parents
            .iter()
            .find(|(_, c, r)| c == challenge && r == reply)
            .map(|&(pid, _, _)| pid)
    }

    fn entry(&self, id: usize, challenge: &C) -> Option<&ExtEntry<R>> {
        self.nodes[id]
            .extensions
            .iter()
            .find(|(c, _)| c == challenge)
            .map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy game on small integers: position `n` (up to `max`) is
    /// challenged once; replies go to `n + 1` (if `n + 1 <= max`) and,
    /// when `n` is even, also stutter. Positions at `max` are leaves.
    struct Count {
        max: usize,
        closure: bool,
    }

    impl GameSpec for Count {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            self.max
        }

        fn closure_under_subpositions(&self) -> bool {
            self.closure
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            let mut replies = Vec::new();
            if *key < self.max {
                replies.push((0u8, Child::Key(key + 1)));
            }
            if key.is_multiple_of(2) {
                replies.push((1u8, Child::Stutter));
            }
            vec![(0u8, replies)]
        }
    }

    #[test]
    fn chain_survives_when_leaf_survives() {
        let arena = Arena::build_and_solve(
            &Count {
                max: 3,
                closure: true,
            },
            0usize,
        );
        assert_eq!(arena.len(), 4);
        // Leaf 3 is unexpanded, hence alive; everything upstream follows.
        for id in 0..4 {
            assert!(arena.is_alive(id), "position {id}");
        }
        // Edges: 0 -> {1, stutter}, 1 -> {2}, 2 -> {3, stutter}.
        assert_eq!(arena.edge_count(), 5);
    }

    /// A game where a mid-chain position has zero replies: the forth seed
    /// kills it, the worklist walks the death back to the root, and (with
    /// closure) forward over its extensions.
    struct Gap;

    impl GameSpec for Gap {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            3
        }

        fn closure_under_subpositions(&self) -> bool {
            true
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            match key {
                0 => vec![(0u8, vec![(0u8, Child::Key(1)), (1u8, Child::Key(2))])],
                // Position 1 extends to 3; position 2 is stuck.
                1 => vec![(0u8, vec![(0u8, Child::Key(3))])],
                2 => vec![(0u8, vec![])],
                _ => vec![],
            }
        }
    }

    #[test]
    fn forth_failure_propagates_both_ways() {
        let arena = Arena::build_and_solve(&Gap, 0usize);
        assert_eq!(arena.len(), 4);
        // 2 dies by forth; 0 survives via reply to 1; 1 and 3 survive.
        assert!(arena.is_alive(0));
        assert!(arena.is_alive(1));
        assert!(!arena.is_alive(2));
        assert!(arena.is_alive(3));
        assert_eq!(arena.death(2), Some(&Death::Forth(0u8)));
        // The surviving reply from the root skips the dead child.
        assert_eq!(arena.reply(0, &0u8), Some((0u8, 1)));
        assert_eq!(arena.alive_count(), 3);
    }

    /// Without the stuck branch the root's only reply dies, killing the
    /// root by forth — and with closure enabled, the root's death kills
    /// its extensions in turn.
    struct DeadEnd;

    impl GameSpec for DeadEnd {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            3
        }

        fn closure_under_subpositions(&self) -> bool {
            true
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            match key {
                0 => vec![(0u8, vec![(0u8, Child::Key(1))])],
                1 => vec![(0u8, vec![]), (1u8, vec![(0u8, Child::Key(2))])],
                _ => vec![],
            }
        }
    }

    #[test]
    fn closure_kills_extensions_of_the_dead() {
        let arena = Arena::build_and_solve(&DeadEnd, 0usize);
        assert!(!arena.is_alive(1), "stuck by challenge 0");
        assert!(!arena.is_alive(0), "its predecessor fails forth");
        assert!(
            !arena.is_alive(2),
            "closure kills the dead node's extension"
        );
        assert!(matches!(
            arena.death(2),
            Some(Death::Retreat { parent: 1, .. })
        ));
        assert_eq!(arena.alive_count(), 0);
    }

    #[test]
    fn no_closure_spares_extensions() {
        struct DeadEndOpen;
        impl GameSpec for DeadEndOpen {
            type Key = usize;
            type Challenge = u8;
            type Reply = u8;
            fn depth(&self) -> usize {
                3
            }
            fn closure_under_subpositions(&self) -> bool {
                false
            }
            fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
                match key {
                    0 => vec![(0u8, vec![(0u8, Child::Key(1))])],
                    1 => vec![(0u8, vec![]), (1u8, vec![(0u8, Child::Key(2))])],
                    _ => vec![],
                }
            }
        }
        let arena = Arena::build_and_solve(&DeadEndOpen, 0usize);
        assert!(!arena.is_alive(1));
        assert!(!arena.is_alive(0));
        assert!(
            arena.is_alive(2),
            "backward induction leaves successors alone"
        );
    }

    #[test]
    fn navigation_helpers() {
        let arena = Arena::build_and_solve(&Gap, 0usize);
        assert_eq!(arena.id_of(&1), Some(1));
        assert_eq!(arena.child(0, &0u8, &1u8), Some(2));
        assert_eq!(arena.parent_by_challenge(1, &0u8), Some(0));
        assert_eq!(arena.parent_by_edge(2, &0u8, &1u8), Some(0));
        assert_eq!(arena.parent_by_edge(2, &0u8, &0u8), None);
        assert_eq!(*arena.key(3), 3usize);
    }
}
