//! CNF formulas: the combinatorial raw material of Section 6.2.
//!
//! Provides literals, clauses, brute-force satisfiability (the exponential
//! ground truth for the SAT → two-disjoint-paths reduction, experiment
//! E11), and the **complete formulas** `φ_k` — the only CNF formulas with
//! `2^k` distinct clauses of `k` distinct literals over `k` variables —
//! used as the engine of Theorem 6.6.

use std::fmt;

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Variable index `0, …, m-1`.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `x̄`.
    pub positive: bool,
}

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: usize) -> Self {
        Self {
            var,
            positive: true,
        }
    }

    /// The negative literal of `var`.
    pub fn neg(var: usize) -> Self {
        Self {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn complement(self) -> Self {
        Self {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Dense index `2·var + polarity-bit`, handy for tables.
    pub fn index(self) -> usize {
        2 * self.var + usize::from(!self.positive)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var + 1)
        } else {
            write!(f, "~x{}", self.var + 1)
        }
    }
}

/// Convenience constructor for a clause.
pub fn clause(lits: impl IntoIterator<Item = Lit>) -> Vec<Lit> {
    lits.into_iter().collect()
}

/// A CNF formula: a conjunction of clauses over variables `0, …, vars-1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates a formula; clauses must only mention variables `< vars`.
    ///
    /// # Panics
    /// Panics on out-of-range variables or empty clause lists being fine —
    /// empty clauses are allowed (and unsatisfiable).
    pub fn new(vars: usize, clauses: Vec<Vec<Lit>>) -> Self {
        for c in &clauses {
            for l in c {
                assert!(l.var < vars, "literal {l} out of range");
            }
        }
        Self { vars, clauses }
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// The number of occurrences of each literal, indexed by
    /// [`Lit::index`].
    pub fn occurrence_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; 2 * self.vars];
        for c in &self.clauses {
            for l in c {
                counts[l.index()] += 1;
            }
        }
        counts
    }

    /// Evaluates under an assignment (`assignment[v]` = value of `x_{v+1}`).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var] == l.positive))
    }

    /// Brute-force satisfiability; returns a satisfying assignment if one
    /// exists. Exponential in `vars` — ground truth for small formulas.
    pub fn brute_force_sat(&self) -> Option<Vec<bool>> {
        let n = self.vars;
        assert!(n < 26, "brute force limited to small formulas");
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// The **complete formula** `φ_k` on `k` variables: all `2^k` clauses
    /// with one literal per variable. Unsatisfiable for every `k ≥ 1`, yet
    /// the Duplicator survives the k-pebble formula game on it
    /// (Definition 6.5 discussion).
    pub fn complete(k: usize) -> Self {
        assert!((1..20).contains(&k));
        let mut clauses = Vec::with_capacity(1 << k);
        for bits in 0u32..(1 << k) {
            let clause: Vec<Lit> = (0..k)
                .map(|v| Lit {
                    var: v,
                    positive: bits & (1 << v) != 0,
                })
                .collect();
            clauses.push(clause);
        }
        Self::new(k, clauses)
    }

    /// The paper's 2-pebble-losable family:
    /// `x1 ∧ x2 ∧ … ∧ xk ∧ (x̄1 ∨ … ∨ x̄k)`.
    pub fn units_plus_negated_clause(k: usize) -> Self {
        let mut clauses: Vec<Vec<Lit>> = (0..k).map(|v| vec![Lit::pos(v)]).collect();
        clauses.push((0..k).map(Lit::neg).collect());
        Self::new(k, clauses)
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let x = Lit::pos(2);
        assert_eq!(x.complement(), Lit::neg(2));
        assert_eq!(x.index(), 4);
        assert_eq!(Lit::neg(2).index(), 5);
        assert_eq!(x.to_string(), "x3");
        assert_eq!(Lit::neg(0).to_string(), "~x1");
    }

    #[test]
    fn eval_simple() {
        // (x1 | ~x2) & (x2)
        let f = CnfFormula::new(
            2,
            vec![clause([Lit::pos(0), Lit::neg(1)]), clause([Lit::pos(1)])],
        );
        assert!(f.eval(&[true, true]));
        assert!(!f.eval(&[false, true]));
        assert!(!f.eval(&[true, false]));
    }

    #[test]
    fn brute_force_finds_models() {
        let f = CnfFormula::new(
            3,
            vec![
                clause([Lit::pos(0), Lit::pos(1)]),
                clause([Lit::neg(0)]),
                clause([Lit::neg(1), Lit::pos(2)]),
            ],
        );
        let model = f.brute_force_sat().expect("satisfiable");
        assert!(f.eval(&model));
    }

    #[test]
    fn empty_clause_unsatisfiable() {
        let f = CnfFormula::new(1, vec![vec![]]);
        assert!(f.brute_force_sat().is_none());
    }

    #[test]
    fn complete_formula_shape_and_unsat() {
        for k in 1..=4usize {
            let f = CnfFormula::complete(k);
            assert_eq!(f.clause_count(), 1 << k);
            assert!(f.clauses().iter().all(|c| c.len() == k));
            assert!(f.brute_force_sat().is_none(), "φ_{k} must be unsatisfiable");
            // Every literal occurs in exactly half the clauses.
            let counts = f.occurrence_counts();
            assert!(counts
                .iter()
                .all(|&c| c == (1 << k) / 2 || k == 1 && c == 1));
        }
    }

    #[test]
    fn units_family_unsat() {
        for k in 1..=4 {
            assert!(CnfFormula::units_plus_negated_clause(k)
                .brute_force_sat()
                .is_none());
        }
    }

    #[test]
    fn display_roundtrip_readable() {
        let f = CnfFormula::new(2, vec![clause([Lit::pos(0), Lit::neg(1)])]);
        assert_eq!(f.to_string(), "(x1 | ~x2)");
    }
}
