//! The k-pebble game on Boolean formulas (Definition 6.5).
//!
//! Player I pebbles a literal (Player II must assign it a truth value) or a
//! clause (Player II must pick one of its literals and make it **true**).
//! Player I wins if some literal ever carries both values; Player II wins
//! by playing forever. Between rounds Player I may lift pebbles.
//!
//! A position is a set of at most `k` pebbled pairs; each pair commits one
//! literal to **true** (assigning `x := false` is the same commitment as
//! `x̄ := true`). The solver mirrors [`crate::game`] on the shared
//! [`crate::arena`]: the greatest family of *consistent* positions closed
//! under subsets with the forth property (every challenge has a surviving
//! response). Re-pebbling an existing pair is a stutter edge — an option
//! the Spoiler can never refute.
//!
//! Facts reproduced in tests (all from the paper's Section 6.2 discussion):
//! satisfiable ⇒ Duplicator wins every `k`; unsatisfiable with `k`
//! variables ⇒ Spoiler wins with `k + 1` pebbles; Duplicator wins the
//! `k`-game on the complete formula `φ_k`; Spoiler wins the 2-game on
//! `x1 ∧ … ∧ xk ∧ (x̄1 ∨ … ∨ x̄k)`.

use crate::arena::{Arena, ArenaCheckpoint, Child, GameSpec};
use crate::cnf::{CnfFormula, Lit};
use crate::game::Winner;
use kv_structures::govern::{Governor, Interrupted};
use std::fmt;

/// A Player I challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Challenge {
    /// Pebble a literal: Player II assigns it a value.
    Literal(Lit),
    /// Pebble clause `i`: Player II selects a literal of it to satisfy.
    Clause(usize),
}

/// A pebbled pair: the challenge plus the literal Player II committed to
/// **true** (for a literal challenge this is the literal itself or its
/// complement; for a clause challenge, a member of the clause).
pub type PebblePair = (Challenge, Lit);

/// A position: sorted set of pebbled pairs.
pub type CnfPosition = Vec<PebblePair>;

/// Is a set of true-literal commitments consistent (no complementary pair)?
fn consistent(position: &CnfPosition) -> bool {
    for (i, &(_, l1)) in position.iter().enumerate() {
        for &(_, l2) in &position[i + 1..] {
            if l1 == l2.complement() {
                return false;
            }
        }
    }
    true
}

/// The CNF game as a [`GameSpec`]: keys are sorted positions, challenges
/// are literal/clause pebbles, replies are committed literals.
struct CnfSpec<'f> {
    formula: &'f CnfFormula,
    challenges: Vec<Challenge>,
    k: usize,
}

impl CnfSpec<'_> {
    fn responses(&self, ch: Challenge) -> Vec<Lit> {
        match ch {
            Challenge::Literal(l) => vec![l, l.complement()],
            Challenge::Clause(i) => self.formula.clauses()[i].clone(),
        }
    }
}

impl GameSpec for CnfSpec<'_> {
    type Key = CnfPosition;
    type Challenge = Challenge;
    type Reply = Lit;

    fn depth(&self) -> usize {
        // One expansion level per pebble.
        self.k
    }

    fn closure_under_subpositions(&self) -> bool {
        // Player I may lift pebbles between rounds.
        true
    }

    fn expand(
        &self,
        key: &CnfPosition,
        _level: usize,
    ) -> Vec<(Challenge, Vec<(Lit, Child<CnfPosition>)>)> {
        self.challenges
            .iter()
            .map(|&ch| {
                let mut options = Vec::new();
                for resp in self.responses(ch) {
                    let pair = (ch, resp);
                    if key.contains(&pair) {
                        // Re-pebbling an existing pair.
                        options.push((resp, Child::Stutter));
                        continue;
                    }
                    let mut pos = key.clone();
                    let insert_at = pos.partition_point(|p| *p < pair);
                    pos.insert(insert_at, pair);
                    if consistent(&pos) {
                        options.push((resp, Child::Key(pos)));
                    }
                }
                (ch, options)
            })
            .collect()
    }

    fn subpositions(&self, key: &CnfPosition) -> Vec<(CnfPosition, Challenge, Lit)> {
        key.iter()
            .map(|&(ch, lit)| {
                let sub: CnfPosition = key.iter().copied().filter(|&p| p != (ch, lit)).collect();
                (sub, ch, lit)
            })
            .collect()
    }
}

/// Resumable state of an interrupted governed CNF-game solve.
#[derive(Debug)]
pub struct CnfGameCheckpoint {
    arena: ArenaCheckpoint<CnfPosition, Challenge, Lit>,
}

impl CnfGameCheckpoint {
    /// Positions interned so far (partial progress).
    pub fn positions(&self) -> usize {
        self.arena.positions()
    }
}

/// A governed CNF-game solve was interrupted.
#[derive(Debug)]
pub struct CnfGameInterrupted {
    /// Why the solve stopped.
    pub reason: Interrupted,
    /// Committed state; pass to [`CnfGame::resume`].
    pub checkpoint: CnfGameCheckpoint,
}

impl fmt::Display for CnfGameInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} position(s)",
            self.reason,
            self.checkpoint.positions()
        )
    }
}

impl std::error::Error for CnfGameInterrupted {}

/// A solved k-pebble game on a CNF formula.
#[derive(Debug)]
pub struct CnfGame<'f> {
    formula: &'f CnfFormula,
    k: usize,
    arena: Arena<CnfPosition, Challenge, Lit>,
}

impl<'f> CnfGame<'f> {
    /// Builds and solves the game with `k` pebbles.
    pub fn solve(formula: &'f CnfFormula, k: usize) -> Self {
        match Self::try_solve(formula, k, &Governor::unlimited()) {
            Ok(game) => game,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`solve`](Self::solve): honors the governor's budget,
    /// deadline, and cancellation token inside the arena build and the
    /// deletion worklist, interrupting at a committed boundary with a
    /// resumable [`CnfGameCheckpoint`].
    pub fn try_solve(
        formula: &'f CnfFormula,
        k: usize,
        gov: &Governor,
    ) -> Result<Self, CnfGameInterrupted> {
        assert!(k >= 1);
        let spec = Self::spec(formula, k);
        match Arena::try_build_and_solve(&spec, Vec::new(), gov) {
            Ok(arena) => Ok(Self { formula, k, arena }),
            Err(e) => Err(CnfGameInterrupted {
                reason: e.reason,
                checkpoint: CnfGameCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// Demand-driven [`solve`](Self::solve) via the lazy arena solver:
    /// expands positions only as needed to decide the winner, with
    /// dominance pruning and early exit on root death. The winner agrees
    /// exactly with the eager solve; the arena is a partial subarena, so
    /// position ids and [`arena_size`](Self::arena_size) are not
    /// comparable to an eager build.
    pub fn solve_lazy(formula: &'f CnfFormula, k: usize) -> Self {
        match Self::try_solve_lazy(formula, k, &Governor::unlimited()) {
            Ok(game) => game,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`solve_lazy`](Self::solve_lazy), interrupting at a
    /// committed boundary with a resumable [`CnfGameCheckpoint`] (resume
    /// with the ordinary [`resume`](Self::resume)).
    pub fn try_solve_lazy(
        formula: &'f CnfFormula,
        k: usize,
        gov: &Governor,
    ) -> Result<Self, CnfGameInterrupted> {
        assert!(k >= 1);
        let spec = Self::spec(formula, k);
        match Arena::try_lazy_solve(&spec, Vec::new(), gov) {
            Ok(arena) => Ok(Self { formula, k, arena }),
            Err(e) => Err(CnfGameInterrupted {
                reason: e.reason,
                checkpoint: CnfGameCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// Resumes an interrupted governed solve (eager or lazy). `formula`
    /// and `k` must be those of the original call; pass a fresh or
    /// relaxed governor.
    pub fn resume(
        formula: &'f CnfFormula,
        k: usize,
        checkpoint: CnfGameCheckpoint,
        gov: &Governor,
    ) -> Result<Self, CnfGameInterrupted> {
        assert!(k >= 1);
        let spec = Self::spec(formula, k);
        match Arena::resume_build(&spec, checkpoint.arena, gov) {
            Ok(arena) => Ok(Self { formula, k, arena }),
            Err(e) => Err(CnfGameInterrupted {
                reason: e.reason,
                checkpoint: CnfGameCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    fn spec(formula: &'f CnfFormula, k: usize) -> CnfSpec<'f> {
        let challenges: Vec<Challenge> = (0..formula.var_count())
            .flat_map(|v| {
                [
                    Challenge::Literal(Lit::pos(v)),
                    Challenge::Literal(Lit::neg(v)),
                ]
            })
            .chain((0..formula.clause_count()).map(Challenge::Clause))
            .collect();
        CnfSpec {
            formula,
            challenges,
            k,
        }
    }

    /// The winner.
    pub fn winner(&self) -> Winner {
        if self.arena.is_alive(0) {
            Winner::Duplicator
        } else {
            Winner::Spoiler
        }
    }

    /// The formula under play.
    pub fn formula(&self) -> &CnfFormula {
        self.formula
    }

    /// Pebble budget.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of generated positions.
    pub fn arena_size(&self) -> usize {
        self.arena.len()
    }

    /// Total number of option edges (benchmark metric).
    pub fn arena_edge_count(&self) -> usize {
        self.arena.edge_count()
    }

    /// Looks up a position id.
    pub fn position_id(&self, position: &CnfPosition) -> Option<usize> {
        self.arena.id_of(position)
    }

    /// Is the position in the surviving family?
    pub fn is_alive(&self, id: usize) -> bool {
        self.arena.is_alive(id)
    }

    /// Duplicator's reply to `challenge` from position `id`: a literal to
    /// set true whose resulting position survives.
    pub fn duplicator_reply(&self, id: usize, challenge: Challenge) -> Option<(Lit, usize)> {
        self.arena.reply(id, &challenge)
    }

    /// The position reached by dropping `pair` from position `id`.
    pub fn drop_pair(&self, id: usize, pair: PebblePair) -> Option<usize> {
        self.arena.parent_by_edge(id, &pair.0, &pair.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::clause;

    #[test]
    fn satisfiable_formula_duplicator_wins_all_k() {
        // (x1 | x2) & (~x1 | x2): satisfiable with x2 = true.
        let f = CnfFormula::new(
            2,
            vec![
                clause([Lit::pos(0), Lit::pos(1)]),
                clause([Lit::neg(0), Lit::pos(1)]),
            ],
        );
        assert!(f.brute_force_sat().is_some());
        for k in 1..=4 {
            assert_eq!(CnfGame::solve(&f, k).winner(), Winner::Duplicator, "k={k}");
        }
    }

    #[test]
    fn unsat_with_m_vars_spoiler_wins_with_m_plus_1() {
        // x1 & ~x1 — unsat on 1 variable; Spoiler wins with 2 pebbles.
        let f = CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])]);
        assert_eq!(CnfGame::solve(&f, 2).winner(), Winner::Spoiler);
        // With a single pebble, positions never conflict: Duplicator wins.
        assert_eq!(CnfGame::solve(&f, 1).winner(), Winner::Duplicator);
    }

    #[test]
    fn complete_formula_duplicator_wins_k_game() {
        for k in 1..=3usize {
            let f = CnfFormula::complete(k);
            assert_eq!(
                CnfGame::solve(&f, k).winner(),
                Winner::Duplicator,
                "Duplicator must win the {k}-game on φ_{k}"
            );
        }
    }

    #[test]
    fn complete_formula_spoiler_wins_k_plus_1_game() {
        for k in 1..=2usize {
            let f = CnfFormula::complete(k);
            assert_eq!(
                CnfGame::solve(&f, k + 1).winner(),
                Winner::Spoiler,
                "Spoiler must win the {}-game on φ_{k}",
                k + 1
            );
        }
    }

    #[test]
    fn units_family_spoiler_wins_with_two_pebbles() {
        for k in 2..=4usize {
            let f = CnfFormula::units_plus_negated_clause(k);
            assert_eq!(
                CnfGame::solve(&f, 2).winner(),
                Winner::Spoiler,
                "2-game on the units formula with k={k}"
            );
        }
    }

    #[test]
    fn duplicator_reply_is_alive_and_consistent() {
        let f = CnfFormula::complete(2);
        let g = CnfGame::solve(&f, 2);
        assert_eq!(g.winner(), Winner::Duplicator);
        let root = g.position_id(&Vec::new()).unwrap();
        // Challenge with each clause; the reply must be a member literal.
        for c in 0..f.clause_count() {
            let (lit, child) = g
                .duplicator_reply(root, Challenge::Clause(c))
                .expect("reply exists");
            assert!(f.clauses()[c].contains(&lit));
            assert!(g.is_alive(child));
        }
    }

    #[test]
    fn empty_formula_always_duplicator() {
        let f = CnfFormula::new(1, vec![]);
        for k in 1..=3 {
            assert_eq!(CnfGame::solve(&f, k).winner(), Winner::Duplicator);
        }
    }

    /// An interrupted governed CNF-game solve, resumed, reproduces the
    /// uninterrupted verdict and arena.
    #[test]
    fn interrupted_cnf_solve_resumes_identically() {
        let f = CnfFormula::complete(2);
        for k in [2usize, 3] {
            let baseline = CnfGame::solve(&f, k);
            for max_steps in [1u64, 17, 200, 4_000] {
                let gov = kv_structures::govern::chaos::step_tripper(max_steps);
                let game = match CnfGame::try_solve(&f, k, &gov) {
                    Ok(game) => game,
                    Err(e) => CnfGame::resume(&f, k, e.checkpoint, &Governor::unlimited())
                        .expect("unlimited resume completes"),
                };
                assert_eq!(game.winner(), baseline.winner(), "k={k} budget {max_steps}");
                assert_eq!(game.arena_size(), baseline.arena_size());
                for id in 0..baseline.arena_size() {
                    assert_eq!(game.is_alive(id), baseline.is_alive(id));
                }
            }
        }
    }

    /// The lazy CNF solver agrees with the eager one on every fact the
    /// eager tests pin down, across formulas and pebble counts.
    #[test]
    fn lazy_winner_matches_eager_on_cnf_games() {
        let formulas = [
            CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])]),
            CnfFormula::complete(1),
            CnfFormula::complete(2),
            CnfFormula::units_plus_negated_clause(3),
            CnfFormula::new(1, vec![]),
        ];
        for f in &formulas {
            for k in 1..=3usize {
                let eager = CnfGame::solve(f, k);
                let lazy = CnfGame::solve_lazy(f, k);
                assert_eq!(lazy.winner(), eager.winner(), "k={k} formula {f:?}");
                assert!(
                    lazy.arena_size() <= eager.arena_size(),
                    "lazy {} > eager {} (k={k})",
                    lazy.arena_size(),
                    eager.arena_size()
                );
            }
        }
    }

    /// An interrupted lazy CNF solve resumes to the identical verdict.
    #[test]
    fn interrupted_lazy_cnf_solve_resumes_identically() {
        let f = CnfFormula::complete(2);
        let baseline = CnfGame::solve_lazy(&f, 3);
        for max_steps in [1u64, 17, 200, 4_000] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            let game = match CnfGame::try_solve_lazy(&f, 3, &gov) {
                Ok(game) => game,
                Err(e) => CnfGame::resume(&f, 3, e.checkpoint, &Governor::unlimited())
                    .expect("unlimited resume completes"),
            };
            assert_eq!(game.winner(), baseline.winner(), "budget {max_steps}");
            assert_eq!(game.arena_size(), baseline.arena_size());
            for id in 0..baseline.arena_size() {
                assert_eq!(game.is_alive(id), baseline.is_alive(id));
            }
        }
    }

    /// Dropping a pebbled pair navigates back to the subposition it
    /// extended.
    #[test]
    fn drop_pair_navigates_to_parent() {
        let f = CnfFormula::complete(2);
        let g = CnfGame::solve(&f, 2);
        let root = g.position_id(&Vec::new()).unwrap();
        let ch = Challenge::Literal(Lit::pos(0));
        let (lit, child) = g.duplicator_reply(root, ch).expect("reply exists");
        assert_ne!(child, root);
        assert_eq!(g.drop_pair(child, (ch, lit)), Some(root));
    }
}
