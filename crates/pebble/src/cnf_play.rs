//! Playing the k-pebble game on Boolean formulas (Definition 6.5) move by
//! move — the referee, strategy traits, and solver-backed players, mirroring
//! [`crate::play`] for the structure game.

use crate::cnf::{CnfFormula, Lit};
use crate::cnf_game::{Challenge, CnfGame, CnfPosition, PebblePair};
use crate::game::Winner;
use kv_structures::SplitMix64;

/// A Player I move in the formula game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnfMove {
    /// Place a pebble issuing `challenge` into `slot`.
    Place {
        /// Pebble slot `0..k`.
        slot: usize,
        /// The challenge (a literal or a clause).
        challenge: Challenge,
    },
    /// Lift the pebble in `slot`.
    Remove {
        /// Pebble slot `0..k`.
        slot: usize,
    },
}

/// Player I of the formula game.
pub trait CnfSpoiler {
    /// Chooses the next move given the slot contents.
    fn choose(&mut self, slots: &[Option<PebblePair>]) -> CnfMove;
}

/// Player II of the formula game: must answer a challenge with a literal
/// set to **true** (for a literal challenge: the literal or its
/// complement; for a clause challenge: a member of the clause).
pub trait CnfDuplicator {
    /// Answers `challenge`; `None` concedes.
    fn respond(&mut self, slots: &[Option<PebblePair>], challenge: Challenge) -> Option<Lit>;
}

/// Referee: plays `rounds` rounds; Player I wins as soon as the commitments
/// contradict (some literal set both true and false) or a response is
/// ill-formed; Player II wins by surviving.
pub fn play_cnf_game(
    formula: &CnfFormula,
    k: usize,
    spoiler: &mut dyn CnfSpoiler,
    duplicator: &mut dyn CnfDuplicator,
    rounds: usize,
) -> Winner {
    let mut slots: Vec<Option<PebblePair>> = vec![None; k];
    for _ in 0..rounds {
        match spoiler.choose(&slots) {
            CnfMove::Remove { slot } => {
                assert!(slots[slot].is_some(), "removing an empty slot");
                slots[slot] = None;
            }
            CnfMove::Place { slot, challenge } => {
                assert!(slots[slot].is_none(), "placing on a full slot");
                let Some(lit) = duplicator.respond(&slots, challenge) else {
                    return Winner::Spoiler;
                };
                // Well-formedness of the response.
                let ok = match challenge {
                    Challenge::Literal(l) => lit == l || lit == l.complement(),
                    Challenge::Clause(c) => formula.clauses()[c].contains(&lit),
                };
                if !ok {
                    return Winner::Spoiler;
                }
                slots[slot] = Some((challenge, lit));
                // Consistency: no literal both true and false.
                let commitments: Vec<Lit> = slots.iter().flatten().map(|&(_, l)| l).collect();
                for (i, &a) in commitments.iter().enumerate() {
                    for &b in &commitments[i + 1..] {
                        if a == b.complement() {
                            return Winner::Spoiler;
                        }
                    }
                }
            }
        }
    }
    Winner::Duplicator
}

/// Player II backed by the solved game's surviving family.
pub struct CnfFamilyDuplicator<'g, 'f> {
    game: &'g CnfGame<'f>,
}

impl<'g, 'f> CnfFamilyDuplicator<'g, 'f> {
    /// Wraps a solved game (the Duplicator should be its winner).
    pub fn new(game: &'g CnfGame<'f>) -> Self {
        Self { game }
    }
}

impl CnfDuplicator for CnfFamilyDuplicator<'_, '_> {
    fn respond(&mut self, slots: &[Option<PebblePair>], challenge: Challenge) -> Option<Lit> {
        let mut position: CnfPosition = slots.iter().flatten().copied().collect();
        position.sort();
        position.dedup();
        let id = self.game.position_id(&position)?;
        self.game.duplicator_reply(id, challenge).map(|(l, _)| l)
    }
}

/// Player II playing a fixed assignment (wins whenever the assignment
/// satisfies the formula — the easy direction of Definition 6.5's
/// discussion).
pub struct AssignmentDuplicator<'f> {
    /// The assignment (indexed by variable).
    pub assignment: Vec<bool>,
    /// The formula (for clause lookups).
    pub formula: &'f CnfFormula,
}

impl CnfDuplicator for AssignmentDuplicator<'_> {
    fn respond(&mut self, _slots: &[Option<PebblePair>], challenge: Challenge) -> Option<Lit> {
        match challenge {
            Challenge::Literal(l) => Some(if self.assignment[l.var] == l.positive {
                l
            } else {
                l.complement()
            }),
            Challenge::Clause(c) => self.formula.clauses()[c]
                .iter()
                .copied()
                .find(|l| self.assignment[l.var] == l.positive),
        }
    }
}

/// A random Player I.
pub struct RandomCnfSpoiler {
    rng: SplitMix64,
    challenges: Vec<Challenge>,
}

impl RandomCnfSpoiler {
    /// Creates a random Spoiler for `formula`.
    pub fn new(formula: &CnfFormula, seed: u64) -> Self {
        let challenges = (0..formula.var_count())
            .flat_map(|v| {
                [
                    Challenge::Literal(Lit::pos(v)),
                    Challenge::Literal(Lit::neg(v)),
                ]
            })
            .chain((0..formula.clause_count()).map(Challenge::Clause))
            .collect();
        Self {
            rng: SplitMix64::seed_from_u64(seed),
            challenges,
        }
    }
}

impl CnfSpoiler for RandomCnfSpoiler {
    fn choose(&mut self, slots: &[Option<PebblePair>]) -> CnfMove {
        let filled: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_some()).collect();
        let empty: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
        if !filled.is_empty() && (empty.is_empty() || self.rng.gen_bool(0.3)) {
            CnfMove::Remove {
                slot: filled[self.rng.gen_range(0..filled.len())],
            }
        } else {
            CnfMove::Place {
                slot: empty[self.rng.gen_range(0..empty.len())],
                challenge: self.challenges[self.rng.gen_range(0..self.challenges.len())],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::clause;

    #[test]
    fn assignment_duplicator_wins_on_satisfiable() {
        let f = CnfFormula::new(
            2,
            vec![
                clause([Lit::pos(0), Lit::pos(1)]),
                clause([Lit::neg(0), Lit::pos(1)]),
            ],
        );
        let model = f.brute_force_sat().unwrap();
        for seed in 0..10 {
            let mut sp = RandomCnfSpoiler::new(&f, seed);
            let mut dup = AssignmentDuplicator {
                assignment: model.clone(),
                formula: &f,
            };
            assert_eq!(
                play_cnf_game(&f, 3, &mut sp, &mut dup, 200),
                Winner::Duplicator,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn family_duplicator_wins_k_game_on_phi_k() {
        for k in 1..=3usize {
            let f = CnfFormula::complete(k);
            let game = CnfGame::solve(&f, k);
            assert_eq!(game.winner(), Winner::Duplicator);
            for seed in 0..8 {
                let mut sp = RandomCnfSpoiler::new(&f, seed);
                let mut dup = CnfFamilyDuplicator::new(&game);
                assert_eq!(
                    play_cnf_game(&f, k, &mut sp, &mut dup, 150),
                    Winner::Duplicator,
                    "k={k} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn scripted_spoiler_beats_units_formula_with_two_pebbles() {
        // The paper's 2-pebble attack on x1 ∧ … ∧ xk ∧ (¬x1 ∨ … ∨ ¬xk):
        // pebble the big clause (Duplicator makes some ¬xi true), then
        // pebble the unit clause (xi) — forced contradiction.
        let k = 3;
        let f = CnfFormula::units_plus_negated_clause(k);
        let game = CnfGame::solve(&f, 2);
        assert_eq!(game.winner(), Winner::Spoiler);
        struct PaperSpoiler {
            unit_of: usize,
            step: usize,
            big_clause: usize,
        }
        impl CnfSpoiler for PaperSpoiler {
            fn choose(&mut self, slots: &[Option<PebblePair>]) -> CnfMove {
                if self.step == 0 {
                    self.step = 1;
                    return CnfMove::Place {
                        slot: 0,
                        challenge: Challenge::Clause(self.big_clause),
                    };
                }
                // Read which literal the Duplicator satisfied.
                let (_, lit) = slots[0].expect("first pebble placed");
                self.unit_of = lit.var;
                CnfMove::Place {
                    slot: 1,
                    challenge: Challenge::Clause(self.unit_of),
                }
            }
        }
        let mut sp = PaperSpoiler {
            unit_of: 0,
            step: 0,
            big_clause: k, // clauses 0..k are the units; clause k is the big one
        };
        let mut dup = CnfFamilyDuplicator::new(&game);
        assert_eq!(
            play_cnf_game(&f, 2, &mut sp, &mut dup, 2),
            Winner::Spoiler,
            "the paper's scripted 2-pebble attack must land"
        );
    }

    #[test]
    fn referee_rejects_ill_formed_responses() {
        let f = CnfFormula::new(1, vec![clause([Lit::pos(0)])]);
        struct Liar;
        impl CnfDuplicator for Liar {
            fn respond(&mut self, _: &[Option<PebblePair>], _: Challenge) -> Option<Lit> {
                Some(Lit::neg(0)) // not a member of the challenged clause
            }
        }
        struct ClauseOnly;
        impl CnfSpoiler for ClauseOnly {
            fn choose(&mut self, _: &[Option<PebblePair>]) -> CnfMove {
                CnfMove::Place {
                    slot: 0,
                    challenge: Challenge::Clause(0),
                }
            }
        }
        assert_eq!(
            play_cnf_game(&f, 1, &mut ClauseOnly, &mut Liar, 1),
            Winner::Spoiler
        );
    }
}
