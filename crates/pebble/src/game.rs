//! The existential k-pebble game solver (Definition 4.3 / Proposition 5.3).
//!
//! The Duplicator wins iff there is a nonempty family `H` of partial
//! one-to-one homomorphisms (each containing the constant pairs) that is
//! closed under subfunctions and has the forth property up to `k`
//! (Definition 4.7 / Theorem 4.8). The *greatest* such family is obtained
//! co-inductively: start from **all** valid configurations (partial
//! homomorphisms with at most `k` non-constant pairs), then repeatedly
//! delete
//!
//! 1. any configuration of size `< k` for which some element `a` of `A` has
//!    no surviving extension `f ∪ {(a, b)}` (forth failure), and
//! 2. any extension of a deleted configuration (closure under
//!    subfunctions, contrapositive),
//!
//! until stable. The Duplicator wins iff the root configuration (the
//! constants-only map) survives. Deletion reasons are recorded, yielding an
//! executable Spoiler strategy; the surviving family is an executable
//! Duplicator strategy ([`crate::play`]).
//!
//! Both steps run on the shared [`crate::arena`]: the configuration space
//! is enumerated level-synchronously with parallel frontier fan-out, and
//! the deletion is worklist-driven — O(arena edges) total, instead of
//! rescanning every configuration each round.
//!
//! For fixed `k` the arena has `O((|A|·|B|)^k)` configurations and the
//! whole computation is polynomial — this is Proposition 5.3.

use crate::arena::{Arena, ArenaCheckpoint, Child, Death, GameSpec};
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::hom::{extension_ok, respects_constants, TupleIndex};
use kv_structures::{Element, HomKind, PartialMap, Structure};
use std::fmt;

/// Who wins the game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// Player I of the paper.
    Spoiler,
    /// Player II of the paper.
    Duplicator,
}

/// Why a configuration was deleted from the candidate family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathReason {
    /// The constant pairs themselves are not a partial homomorphism.
    InvalidRoot,
    /// Forth failure: pebbling this element of `A` defeats every reply.
    Forth(Element),
    /// A subfunction (the given configuration id) died; removing the
    /// stored element's pebble exposes it.
    Subfunction {
        /// Id of the dead subfunction configuration.
        parent: usize,
        /// The domain element whose pebble the Spoiler should pick up.
        drop: Element,
    },
}

/// The existential game as a [`GameSpec`]: keys are partial maps,
/// challenges are elements of `A`, replies are elements of `B`.
struct ExistentialSpec<'s> {
    a: &'s Structure,
    b: &'s Structure,
    index_a: TupleIndex,
    k: usize,
    kind: HomKind,
    /// Domain elements pinned by constants: never removable, so they are
    /// skipped when enumerating subfunctions for the lazy solver.
    constant_dom: Vec<Element>,
}

impl<'s> ExistentialSpec<'s> {
    fn new(
        a: &'s Structure,
        b: &'s Structure,
        index_a: TupleIndex,
        k: usize,
        kind: HomKind,
    ) -> Self {
        let mut constant_dom = a.constant_values().to_vec();
        constant_dom.sort_unstable();
        constant_dom.dedup();
        Self {
            a,
            b,
            index_a,
            k,
            kind,
            constant_dom,
        }
    }
}

impl GameSpec for ExistentialSpec<'_> {
    type Key = PartialMap;
    type Challenge = Element;
    type Reply = Element;

    fn depth(&self) -> usize {
        self.k
    }

    fn closure_under_subpositions(&self) -> bool {
        // The Spoiler may lift pebbles: the family must be closed under
        // subfunctions.
        true
    }

    fn expand(
        &self,
        key: &PartialMap,
        _level: usize,
    ) -> Vec<(Element, Vec<(Element, Child<PartialMap>)>)> {
        self.a
            .elements()
            .filter(|&ax| !key.contains_domain(ax))
            .map(|ax| {
                let replies = self
                    .b
                    .elements()
                    .filter(|&bx| extension_ok(key, ax, bx, &self.index_a, self.b, self.kind))
                    .map(|bx| (bx, Child::Key(key.extended(ax, bx))))
                    .collect();
                (ax, replies)
            })
            .collect()
    }

    fn subpositions(&self, key: &PartialMap) -> Vec<(PartialMap, Element, Element)> {
        key.pairs()
            .iter()
            .filter(|(ax, _)| !self.constant_dom.contains(ax))
            .map(|&(ax, bx)| (key.without(ax), ax, bx))
            .collect()
    }
}

/// Resumable state of an interrupted governed solve: the partially built
/// and solved configuration arena.
#[derive(Debug)]
pub struct GameCheckpoint {
    arena: ArenaCheckpoint<PartialMap, Element, Element>,
}

impl GameCheckpoint {
    /// Configurations interned so far (partial progress).
    pub fn positions(&self) -> usize {
        self.arena.positions()
    }
}

/// A governed existential-game solve was interrupted.
#[derive(Debug)]
pub struct GameInterrupted {
    /// Why the solve stopped.
    pub reason: Interrupted,
    /// Committed state; pass to [`ExistentialGame::resume`].
    pub checkpoint: GameCheckpoint,
}

impl fmt::Display for GameInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} configuration(s)",
            self.reason,
            self.checkpoint.positions()
        )
    }
}

impl std::error::Error for GameInterrupted {}

/// A solved existential k-pebble game on a fixed pair of structures.
#[derive(Debug)]
pub struct ExistentialGame<'s> {
    a: &'s Structure,
    b: &'s Structure,
    k: usize,
    kind: HomKind,
    arena: Arena<PartialMap, Element, Element>,
    /// Root configuration id, unless the constant map is already invalid.
    root: Result<usize, DeathReason>,
}

impl<'s> ExistentialGame<'s> {
    /// Builds the arena and solves the game. `kind` selects the one-to-one
    /// game (Datalog(≠)/`L^ω`, Definition 4.3) or the plain-homomorphism
    /// variant (Datalog, Remark 4.12(1)).
    ///
    /// ```
    /// use kv_pebble::{ExistentialGame, Winner};
    /// use kv_structures::generators::{two_crossing_paths, two_disjoint_paths};
    /// use kv_structures::HomKind;
    ///
    /// // Example 4.5: the Spoiler separates disjoint from crossing paths.
    /// let a = two_disjoint_paths(1);
    /// let b = two_crossing_paths(1);
    /// let game = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
    /// assert_eq!(game.winner(), Winner::Spoiler);
    /// ```
    ///
    /// # Panics
    /// Panics if the vocabularies differ or `k == 0`.
    pub fn solve(a: &'s Structure, b: &'s Structure, k: usize, kind: HomKind) -> Self {
        match Self::try_solve(a, b, k, kind, &Governor::unlimited()) {
            Ok(game) => game,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`solve`](Self::solve): honors the governor's budget,
    /// deadline, and cancellation token cooperatively inside the arena
    /// build and deletion worklist, interrupting at a committed boundary
    /// with a resumable [`GameCheckpoint`].
    ///
    /// # Panics
    /// Panics if the vocabularies differ or `k == 0`.
    pub fn try_solve(
        a: &'s Structure,
        b: &'s Structure,
        k: usize,
        kind: HomKind,
        gov: &Governor,
    ) -> Result<Self, GameInterrupted> {
        assert!(k >= 1, "at least one pebble");
        assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
        let index_a = TupleIndex::build(a);
        let Some(root_map) = Self::constant_root(a, b, &index_a, kind) else {
            return Ok(Self {
                a,
                b,
                k,
                kind,
                arena: Arena::empty(),
                root: Err(DeathReason::InvalidRoot),
            });
        };
        debug_assert!(respects_constants(&root_map, a, b));

        let spec = ExistentialSpec::new(a, b, index_a, k, kind);
        match Arena::try_build_and_solve(&spec, root_map, gov) {
            Ok(arena) => Ok(Self {
                a,
                b,
                k,
                kind,
                arena,
                root: Ok(0),
            }),
            Err(e) => Err(GameInterrupted {
                reason: e.reason,
                checkpoint: GameCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// Demand-driven [`solve`](Self::solve): explores only as much of the
    /// configuration space as needed to decide the winner, via the lazy
    /// arena solver (one committed reply per challenge, dominance-pruned
    /// reuse of already materialized configurations, early exit on root
    /// death). The [`winner`](Self::winner) agrees exactly with the eager
    /// solve; the arena is a partial subarena, so configuration ids,
    /// [`arena_size`](Self::arena_size), and
    /// [`family_size`](Self::family_size) are **not** comparable to an
    /// eager build (unexplored configurations are absent, and some alive
    /// ones are optimistic never-expanded leaves).
    ///
    /// # Panics
    /// Panics if the vocabularies differ or `k == 0`.
    pub fn solve_lazy(a: &'s Structure, b: &'s Structure, k: usize, kind: HomKind) -> Self {
        match Self::try_solve_lazy(a, b, k, kind, &Governor::unlimited()) {
            Ok(game) => game,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`solve_lazy`](Self::solve_lazy), interrupting at a
    /// committed boundary with a resumable [`GameCheckpoint`] (resume with
    /// the ordinary [`resume`](Self::resume)).
    ///
    /// # Panics
    /// Panics if the vocabularies differ or `k == 0`.
    pub fn try_solve_lazy(
        a: &'s Structure,
        b: &'s Structure,
        k: usize,
        kind: HomKind,
        gov: &Governor,
    ) -> Result<Self, GameInterrupted> {
        assert!(k >= 1, "at least one pebble");
        assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
        let index_a = TupleIndex::build(a);
        let Some(root_map) = Self::constant_root(a, b, &index_a, kind) else {
            return Ok(Self {
                a,
                b,
                k,
                kind,
                arena: Arena::empty(),
                root: Err(DeathReason::InvalidRoot),
            });
        };
        debug_assert!(respects_constants(&root_map, a, b));

        let spec = ExistentialSpec::new(a, b, index_a, k, kind);
        match Arena::try_lazy_solve(&spec, root_map, gov) {
            Ok(arena) => Ok(Self {
                a,
                b,
                k,
                kind,
                arena,
                root: Ok(0),
            }),
            Err(e) => Err(GameInterrupted {
                reason: e.reason,
                checkpoint: GameCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// Resumes an interrupted governed solve (eager or lazy). `a`, `b`,
    /// `k`, and `kind` must be those of the original call; budget counters
    /// live in the governor, so pass a fresh or relaxed one. The resumed
    /// game is identical — configuration by configuration — to an
    /// uninterrupted solve of the same flavor.
    pub fn resume(
        a: &'s Structure,
        b: &'s Structure,
        k: usize,
        kind: HomKind,
        checkpoint: GameCheckpoint,
        gov: &Governor,
    ) -> Result<Self, GameInterrupted> {
        assert!(k >= 1, "at least one pebble");
        assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
        let spec = ExistentialSpec::new(a, b, TupleIndex::build(a), k, kind);
        match Arena::resume_build(&spec, checkpoint.arena, gov) {
            Ok(arena) => Ok(Self {
                a,
                b,
                k,
                kind,
                arena,
                root: Ok(0),
            }),
            Err(e) => Err(GameInterrupted {
                reason: e.reason,
                checkpoint: GameCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// The root configuration — the constant pairs — or `None` when the
    /// constants themselves are not a partial homomorphism.
    fn constant_root(
        a: &Structure,
        b: &Structure,
        index_a: &TupleIndex,
        kind: HomKind,
    ) -> Option<PartialMap> {
        let mut root_map = PartialMap::new();
        for (&ca, &cb) in a.constant_values().iter().zip(b.constant_values()) {
            if let Some(existing) = root_map.get(ca) {
                if existing != cb {
                    return None;
                }
                continue;
            }
            if !extension_ok(&root_map, ca, cb, index_a, b, kind) {
                return None;
            }
            root_map.insert(ca, cb);
        }
        Some(root_map)
    }

    /// The winner (Theorem 4.8: Duplicator wins iff the family is
    /// nonempty, i.e. the root survives).
    pub fn winner(&self) -> Winner {
        match self.root {
            Ok(root) if self.arena.is_alive(root) => Winner::Duplicator,
            _ => Winner::Spoiler,
        }
    }

    /// Pebble budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Homomorphism notion in use.
    pub fn kind(&self) -> HomKind {
        self.kind
    }

    /// Left structure.
    pub fn structure_a(&self) -> &Structure {
        self.a
    }

    /// Right structure.
    pub fn structure_b(&self) -> &Structure {
        self.b
    }

    /// Total number of configurations in the arena (benchmark metric).
    pub fn arena_size(&self) -> usize {
        self.arena.len()
    }

    /// Total number of option edges in the arena — the budget of the
    /// worklist deletion (benchmark metric).
    pub fn arena_edge_count(&self) -> usize {
        self.arena.edge_count()
    }

    /// Number of surviving configurations — the size of the maximal family
    /// `H` of Definition 4.7 (0 when the Spoiler wins).
    pub fn family_size(&self) -> usize {
        self.arena.alive_count()
    }

    /// Looks a configuration up by its partial map (including constant
    /// pairs). Returns its id if the map is a valid configuration.
    pub fn config_id(&self, map: &PartialMap) -> Option<usize> {
        self.arena.id_of(map)
    }

    /// Whether configuration `id` survived (is in the maximal family).
    pub fn is_alive(&self, id: usize) -> bool {
        self.arena.is_alive(id)
    }

    /// The partial map of configuration `id`.
    pub fn config_map(&self, id: usize) -> &PartialMap {
        self.arena.key(id)
    }

    /// Death reason of configuration `id`, if dead. For the root-invalid
    /// case use [`root_invalid`](Self::root_invalid).
    pub fn death(&self, id: usize) -> Option<DeathReason> {
        self.arena.death(id).map(|d| match *d {
            Death::Forth(a) => DeathReason::Forth(a),
            Death::Retreat { parent, challenge } => DeathReason::Subfunction {
                parent,
                drop: challenge,
            },
        })
    }

    /// Whether the game was lost before it began (constants do not map).
    pub fn root_invalid(&self) -> bool {
        self.root.is_err()
    }

    /// Duplicator's reply from configuration `id` when the Spoiler pebbles
    /// element `a` of `A`: some `b` whose extension survives, if any.
    /// Returns the pair `(b, child_id)`.
    pub fn duplicator_reply(&self, id: usize, a: Element) -> Option<(Element, usize)> {
        if let Some(b) = self.arena.key(id).get(a) {
            // Element already pebbled: the only consistent reply.
            return Some((b, id));
        }
        self.arena.reply(id, &a)
    }

    /// The child configuration reached by extending `id` with `(a, b)`,
    /// dead or alive; `None` if the extension is not even a partial
    /// homomorphism.
    pub fn child(&self, id: usize, a: Element, b: Element) -> Option<usize> {
        if self.arena.key(id).get(a) == Some(b) {
            return Some(id);
        }
        self.arena.child(id, &a, &b)
    }

    /// The subfunction configuration reached from `id` by removing the
    /// pebble on domain element `a` (a no-op id if `a` is a constant or
    /// unpebbled).
    pub fn drop_pebble(&self, id: usize, a: Element) -> usize {
        self.arena.parent_by_challenge(id, &a).unwrap_or(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{directed_path, two_crossing_paths, two_disjoint_paths};
    use kv_structures::HomKind;

    /// Example 4.4: short path into long path — Duplicator wins for all k.
    #[test]
    fn example_4_4_short_into_long() {
        let a = directed_path(4);
        let b = directed_path(7);
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
            assert_eq!(g.winner(), Winner::Duplicator, "k = {k}");
            assert!(g.family_size() > 0);
        }
    }

    /// Example 4.4: long path into short path — Spoiler wins with 2 pebbles
    /// (but not with 1).
    #[test]
    fn example_4_4_long_into_short() {
        let a = directed_path(7);
        let b = directed_path(4);
        let g1 = ExistentialGame::solve(&a, &b, 1, HomKind::OneToOne);
        assert_eq!(g1.winner(), Winner::Duplicator, "one pebble is blind");
        let g2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(g2.winner(), Winner::Spoiler);
        let g3 = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
        assert_eq!(g3.winner(), Winner::Spoiler);
    }

    /// Example 4.5: two disjoint paths vs two crossing paths — the paper
    /// exhibits a Spoiler win with 3 pebbles; the solver confirms it (and
    /// sharpens the example: 2 pebbles already suffice, because the
    /// crossing structure has a single node with both in- and out-degree,
    /// while the disjoint structure has two non-adjacent ones — the
    /// Spoiler walks a second pebble to the missing neighbour). With a
    /// single pebble the Duplicator survives.
    #[test]
    fn example_4_5_disjoint_vs_crossing() {
        for n in 1..=2usize {
            let a = two_disjoint_paths(n);
            let b = two_crossing_paths(n);
            let g1 = ExistentialGame::solve(&a, &b, 1, HomKind::OneToOne);
            assert_eq!(g1.winner(), Winner::Duplicator, "n = {n}, k = 1");
            let g2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
            assert_eq!(g2.winner(), Winner::Spoiler, "n = {n}, k = 2");
            let g3 = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
            assert_eq!(g3.winner(), Winner::Spoiler, "n = {n}, k = 3");
        }
    }

    /// The game relation is not symmetric (Example 4.4 discussion).
    #[test]
    fn asymmetry() {
        let a = directed_path(3);
        let b = directed_path(5);
        let fwd = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let bwd = ExistentialGame::solve(&b, &a, 2, HomKind::OneToOne);
        assert_eq!(fwd.winner(), Winner::Duplicator);
        assert_eq!(bwd.winner(), Winner::Spoiler);
    }

    /// With constants pinned incompatibly, the Spoiler wins before moving.
    #[test]
    fn invalid_root_loses_immediately() {
        let mut ga = kv_structures::generators::directed_path_graph(2);
        ga.set_distinguished(vec![0, 1]);
        let mut gb = kv_structures::generators::directed_path_graph(2);
        gb.set_distinguished(vec![1, 0]); // edge reversed w.r.t. constants
        let a = ga.to_structure();
        let b = gb.to_structure();
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert!(g.root_invalid());
        assert_eq!(g.winner(), Winner::Spoiler);
    }

    /// Identity game: Duplicator always wins on identical structures.
    #[test]
    fn identity_game() {
        let a = two_crossing_paths(2);
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &a, k, HomKind::OneToOne);
            assert_eq!(g.winner(), Winner::Duplicator, "k = {k}");
        }
    }

    /// Datalog variant: a cycle maps homomorphically onto a shorter cycle
    /// whose length divides it, so the Duplicator survives the plain-hom
    /// game for every k, while the one-to-one game with 3 pebbles is lost
    /// (three pebbled cycle nodes need three distinct images in a 2-cycle).
    /// With only 2 pebbles even the one-to-one game is survivable — the
    /// Duplicator leapfrogs the two images around the short cycle.
    #[test]
    fn homomorphism_variant_collapses_cycles() {
        let a = kv_structures::generators::directed_cycle(4);
        let b = kv_structures::generators::directed_cycle(2);
        let plain = ExistentialGame::solve(&a, &b, 3, HomKind::Homomorphism);
        assert_eq!(plain.winner(), Winner::Duplicator);
        let strict2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(strict2.winner(), Winner::Duplicator);
        let strict3 = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
        assert_eq!(strict3.winner(), Winner::Spoiler);
    }

    /// Duplicator replies from the solved family are always alive children.
    #[test]
    fn duplicator_reply_consistency() {
        let a = directed_path(3);
        let b = directed_path(6);
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let root = g.config_id(&PartialMap::new()).unwrap();
        for ax in a.elements() {
            let (bx, child) = g.duplicator_reply(root, ax).expect("reply exists");
            assert!(g.is_alive(child));
            assert_eq!(g.config_map(child).get(ax), Some(bx));
        }
    }

    /// Spoiler's recorded death reasons form a coherent winning recipe on a
    /// lost game: following Forth/Subfunction hints never dead-ends.
    #[test]
    fn spoiler_death_reasons_traceable() {
        let a = directed_path(7);
        let b = directed_path(4);
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let root = g.config_id(&PartialMap::new()).unwrap();
        assert!(!g.is_alive(root));
        // Walk one level of the recipe.
        match g.death(root).unwrap() {
            DeathReason::Forth(ax) => {
                // Every reply leads to a dead or invalid config.
                for bx in b.elements() {
                    if let Some(child) = g.child(root, ax, bx) {
                        assert!(!g.is_alive(child));
                    }
                }
            }
            other => panic!("root of fresh game should die by forth, got {other:?}"),
        }
    }

    /// Arena sizes stay polynomial-ish and deterministic.
    #[test]
    fn arena_size_reported() {
        let a = directed_path(4);
        let b = directed_path(5);
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert!(g.arena_size() > 1);
        assert!(g.family_size() <= g.arena_size());
        assert!(g.arena_edge_count() > 0);
    }

    /// An interrupted governed solve, resumed, reproduces the
    /// uninterrupted game verdict by verdict.
    #[test]
    fn interrupted_solve_resumes_identically() {
        let a = directed_path(7);
        let b = directed_path(4);
        let baseline = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        for max_steps in [1u64, 5, 23, 120, 900] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            let game = match ExistentialGame::try_solve(&a, &b, 2, HomKind::OneToOne, &gov) {
                Ok(game) => game,
                Err(e) => {
                    assert!(e.checkpoint.positions() <= baseline.arena_size());
                    ExistentialGame::resume(
                        &a,
                        &b,
                        2,
                        HomKind::OneToOne,
                        e.checkpoint,
                        &kv_structures::Governor::unlimited(),
                    )
                    .expect("unlimited resume completes")
                }
            };
            assert_eq!(game.winner(), baseline.winner(), "budget {max_steps}");
            assert_eq!(game.arena_size(), baseline.arena_size());
            assert_eq!(game.family_size(), baseline.family_size());
            for id in 0..baseline.arena_size() {
                assert_eq!(game.config_map(id), baseline.config_map(id));
                assert_eq!(game.is_alive(id), baseline.is_alive(id));
                assert_eq!(game.death(id), baseline.death(id));
            }
        }
    }

    /// The lazy solver agrees with the eager solver on every winner, for
    /// both homomorphism notions and k ∈ {1, 2, 3}, while never exploring
    /// more configurations.
    #[test]
    fn lazy_winner_matches_eager() {
        let pairs = [
            (directed_path(4), directed_path(7)),
            (directed_path(7), directed_path(4)),
            (two_disjoint_paths(2), two_crossing_paths(2)),
            (
                kv_structures::generators::directed_cycle(4),
                kv_structures::generators::directed_cycle(2),
            ),
        ];
        for (a, b) in &pairs {
            for k in 1..=3 {
                for kind in [HomKind::OneToOne, HomKind::Homomorphism] {
                    let eager = ExistentialGame::solve(a, b, k, kind);
                    let lazy = ExistentialGame::solve_lazy(a, b, k, kind);
                    assert_eq!(lazy.winner(), eager.winner(), "k={k} kind={kind:?}");
                    assert!(
                        lazy.arena_size() <= eager.arena_size(),
                        "lazy {} > eager {} (k={k} kind={kind:?})",
                        lazy.arena_size(),
                        eager.arena_size()
                    );
                }
            }
        }
    }

    /// On a Duplicator win the lazy solver commits one reply per challenge
    /// instead of materializing every consistent configuration.
    #[test]
    fn lazy_duplicator_win_is_much_smaller() {
        let a = directed_path(4);
        let b = directed_path(9);
        let eager = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let lazy = ExistentialGame::solve_lazy(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(eager.winner(), Winner::Duplicator);
        assert_eq!(lazy.winner(), Winner::Duplicator);
        assert!(
            lazy.arena_size() * 2 <= eager.arena_size(),
            "lazy {} vs eager {}",
            lazy.arena_size(),
            eager.arena_size()
        );
    }

    /// An interrupted lazy solve resumes to the identical partial arena
    /// and verdict.
    #[test]
    fn interrupted_lazy_solve_resumes_identically() {
        let a = two_disjoint_paths(2);
        let b = two_crossing_paths(2);
        let baseline = ExistentialGame::solve_lazy(&a, &b, 2, HomKind::OneToOne);
        for max_steps in [1u64, 5, 23, 120, 900] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            let game = match ExistentialGame::try_solve_lazy(&a, &b, 2, HomKind::OneToOne, &gov) {
                Ok(game) => game,
                Err(e) => ExistentialGame::resume(
                    &a,
                    &b,
                    2,
                    HomKind::OneToOne,
                    e.checkpoint,
                    &kv_structures::Governor::unlimited(),
                )
                .expect("unlimited resume completes"),
            };
            assert_eq!(game.winner(), baseline.winner(), "budget {max_steps}");
            assert_eq!(game.arena_size(), baseline.arena_size());
            for id in 0..baseline.arena_size() {
                assert_eq!(game.config_map(id), baseline.config_map(id));
                assert_eq!(game.is_alive(id), baseline.is_alive(id));
            }
        }
    }

    /// Cancellation interrupts the solve without panicking; the invalid
    /// root shortcut still answers without consulting the governor's
    /// arena loops.
    #[test]
    fn cancellation_interrupts_solve() {
        let a = directed_path(4);
        let b = directed_path(5);
        let gov = kv_structures::Governor::unlimited();
        gov.cancel_token().cancel();
        let err = ExistentialGame::try_solve(&a, &b, 2, HomKind::OneToOne, &gov).unwrap_err();
        assert_eq!(err.reason, kv_structures::Interrupted::Cancelled, "{err}");
    }

    /// The parallel frontier fan-out is transparent: solving with many
    /// worker threads and with one produces identical arenas, verdict by
    /// verdict. (Thread count is read from the environment at first use;
    /// this test relies on determinism of the interning order instead of
    /// toggling it.)
    #[test]
    fn arena_is_deterministic() {
        let a = directed_path(5);
        let b = directed_path(7);
        let g1 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let g2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(g1.arena_size(), g2.arena_size());
        assert_eq!(g1.arena_edge_count(), g2.arena_edge_count());
        for id in 0..g1.arena_size() {
            assert_eq!(g1.config_map(id), g2.config_map(id));
            assert_eq!(g1.is_alive(id), g2.is_alive(id));
        }
    }
}
