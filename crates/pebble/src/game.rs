//! The existential k-pebble game solver (Definition 4.3 / Proposition 5.3).
//!
//! The Duplicator wins iff there is a nonempty family `H` of partial
//! one-to-one homomorphisms (each containing the constant pairs) that is
//! closed under subfunctions and has the forth property up to `k`
//! (Definition 4.7 / Theorem 4.8). The *greatest* such family is obtained
//! co-inductively: start from **all** valid configurations (partial
//! homomorphisms with at most `k` non-constant pairs), then repeatedly
//! delete
//!
//! 1. any configuration of size `< k` for which some element `a` of `A` has
//!    no surviving extension `f ∪ {(a, b)}` (forth failure), and
//! 2. any extension of a deleted configuration (closure under
//!    subfunctions, contrapositive),
//!
//! until stable. The Duplicator wins iff the root configuration (the
//! constants-only map) survives. Deletion reasons are recorded, yielding an
//! executable Spoiler strategy; the surviving family is an executable
//! Duplicator strategy ([`crate::play`]).
//!
//! For fixed `k` the arena has `O((|A|·|B|)^k)` configurations and the
//! whole computation is polynomial — this is Proposition 5.3.

use kv_structures::hom::{extension_ok, respects_constants, TupleIndex};
use kv_structures::{Element, HomKind, PartialMap, Structure};
use std::collections::HashMap;

/// Who wins the game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// Player I of the paper.
    Spoiler,
    /// Player II of the paper.
    Duplicator,
}

/// Why a configuration was deleted from the candidate family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathReason {
    /// The constant pairs themselves are not a partial homomorphism.
    InvalidRoot,
    /// Forth failure: pebbling this element of `A` defeats every reply.
    Forth(Element),
    /// A subfunction (the given configuration id) died; removing the
    /// stored element's pebble exposes it.
    Subfunction {
        /// Id of the dead subfunction configuration.
        parent: usize,
        /// The domain element whose pebble the Spoiler should pick up.
        drop: Element,
    },
}

/// Arena entry for one configuration.
#[derive(Debug)]
struct Config {
    /// The partial map, including the constant pairs.
    map: PartialMap,
    /// Number of non-constant pairs.
    size: usize,
    alive: bool,
    death: Option<DeathReason>,
    /// For each extension element `a`: (number of alive children, list of
    /// `(b, child_id)` options). Present only for configs of size `< k`.
    extensions: HashMap<Element, (u32, Vec<(Element, usize)>)>,
    /// Edges to subfunction configs: `(parent_id, a)` meaning
    /// `self = parent ∪ {(a, self.map(a))}`.
    parents: Vec<(usize, Element)>,
}

/// A solved existential k-pebble game on a fixed pair of structures.
#[derive(Debug)]
pub struct ExistentialGame<'s> {
    a: &'s Structure,
    b: &'s Structure,
    k: usize,
    kind: HomKind,
    configs: Vec<Config>,
    by_map: HashMap<PartialMap, usize>,
    /// Root configuration id, unless the constant map is already invalid.
    root: Result<usize, DeathReason>,
}

impl<'s> ExistentialGame<'s> {
    /// Builds the arena and solves the game. `kind` selects the one-to-one
    /// game (Datalog(≠)/`L^ω`, Definition 4.3) or the plain-homomorphism
    /// variant (Datalog, Remark 4.12(1)).
    ///
    /// ```
    /// use kv_pebble::{ExistentialGame, Winner};
    /// use kv_structures::generators::{two_crossing_paths, two_disjoint_paths};
    /// use kv_structures::HomKind;
    ///
    /// // Example 4.5: the Spoiler separates disjoint from crossing paths.
    /// let a = two_disjoint_paths(1);
    /// let b = two_crossing_paths(1);
    /// let game = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
    /// assert_eq!(game.winner(), Winner::Spoiler);
    /// ```
    ///
    /// # Panics
    /// Panics if the vocabularies differ or `k == 0`.
    pub fn solve(a: &'s Structure, b: &'s Structure, k: usize, kind: HomKind) -> Self {
        assert!(k >= 1, "at least one pebble");
        assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
        let index_a = TupleIndex::build(a);

        // Root: the constant pairs.
        let mut root_map = PartialMap::new();
        let mut root_ok = true;
        for (&ca, &cb) in a.constant_values().iter().zip(b.constant_values()) {
            if let Some(existing) = root_map.get(ca) {
                if existing != cb {
                    root_ok = false;
                    break;
                }
                continue;
            }
            if !extension_ok(&root_map, ca, cb, &index_a, b, kind) {
                root_ok = false;
                break;
            }
            root_map.insert(ca, cb);
        }
        if !root_ok {
            return Self {
                a,
                b,
                k,
                kind,
                configs: Vec::new(),
                by_map: HashMap::new(),
                root: Err(DeathReason::InvalidRoot),
            };
        }
        debug_assert!(respects_constants(&root_map, a, b));
        let root_size = 0usize; // constant pairs do not count toward k

        let mut configs: Vec<Config> = Vec::new();
        let mut by_map: HashMap<PartialMap, usize> = HashMap::new();
        configs.push(Config {
            map: root_map.clone(),
            size: root_size,
            alive: true,
            death: None,
            extensions: HashMap::new(),
            parents: Vec::new(),
        });
        by_map.insert(root_map, 0);

        // Level-by-level generation of all valid configurations.
        let mut frontier: Vec<usize> = vec![0];
        for level in 0..k {
            let mut next_frontier: Vec<usize> = Vec::new();
            for &fid in &frontier {
                let fmap = configs[fid].map.clone();
                for ax in a.elements() {
                    if fmap.contains_domain(ax) {
                        continue;
                    }
                    let mut options: Vec<(Element, usize)> = Vec::new();
                    for bx in b.elements() {
                        if !extension_ok(&fmap, ax, bx, &index_a, b, kind) {
                            continue;
                        }
                        let child_map = fmap.extended(ax, bx);
                        let child_id = *by_map.entry(child_map.clone()).or_insert_with(|| {
                            configs.push(Config {
                                map: child_map,
                                size: level + 1,
                                alive: true,
                                death: None,
                                extensions: HashMap::new(),
                                parents: Vec::new(),
                            });
                            next_frontier.push(configs.len() - 1);
                            configs.len() - 1
                        });
                        configs[child_id].parents.push((fid, ax));
                        options.push((bx, child_id));
                    }
                    let count = options.len() as u32;
                    configs[fid].extensions.insert(ax, (count, options));
                }
            }
            frontier = next_frontier;
        }

        let mut game = Self {
            a,
            b,
            k,
            kind,
            configs,
            by_map,
            root: Ok(0),
        };
        game.run_deletion();
        game
    }

    /// The deletion fixpoint: kill forth-failures, propagate.
    fn run_deletion(&mut self) {
        let mut queue: Vec<usize> = Vec::new();
        // Seed: size < k configs with an inextensible element.
        for id in 0..self.configs.len() {
            if self.configs[id].size < self.k {
                let bad = self.configs[id]
                    .extensions
                    .iter()
                    .find(|(_, (count, _))| *count == 0)
                    .map(|(&a, _)| a);
                if let Some(a) = bad {
                    self.kill(id, DeathReason::Forth(a), &mut queue);
                }
            }
        }
        while let Some(dead) = queue.pop() {
            // Closure: every extension of a dead config dies.
            let children: Vec<(Element, usize)> = self.configs[dead]
                .extensions
                .values()
                .flat_map(|(_, opts)| opts.iter().copied())
                .collect();
            for (_, child) in children {
                if self.configs[child].alive {
                    // The child should drop the pebble it has but `dead`
                    // lacks.
                    let drop = self.configs[child]
                        .parents
                        .iter()
                        .find(|&&(p, _)| p == dead)
                        .map(|&(_, a)| a)
                        .expect("child links back to parent");
                    self.kill(
                        child,
                        DeathReason::Subfunction { parent: dead, drop },
                        &mut queue,
                    );
                }
            }
            // Forth bookkeeping: parents lose one option for the element.
            let parents = self.configs[dead].parents.clone();
            for (pid, a) in parents {
                if !self.configs[pid].alive {
                    continue;
                }
                let exhausted = {
                    let entry = self.configs[pid]
                        .extensions
                        .get_mut(&a)
                        .expect("parent has extension entry");
                    entry.0 -= 1;
                    entry.0 == 0
                };
                if exhausted {
                    self.kill(pid, DeathReason::Forth(a), &mut queue);
                }
            }
        }
    }

    fn kill(&mut self, id: usize, reason: DeathReason, queue: &mut Vec<usize>) {
        let c = &mut self.configs[id];
        if !c.alive {
            return;
        }
        c.alive = false;
        c.death = Some(reason);
        queue.push(id);
    }

    /// The winner (Theorem 4.8: Duplicator wins iff the family is
    /// nonempty, i.e. the root survives).
    pub fn winner(&self) -> Winner {
        match self.root {
            Ok(root) if self.configs[root].alive => Winner::Duplicator,
            _ => Winner::Spoiler,
        }
    }

    /// Pebble budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Homomorphism notion in use.
    pub fn kind(&self) -> HomKind {
        self.kind
    }

    /// Left structure.
    pub fn structure_a(&self) -> &Structure {
        self.a
    }

    /// Right structure.
    pub fn structure_b(&self) -> &Structure {
        self.b
    }

    /// Total number of configurations in the arena (benchmark metric).
    pub fn arena_size(&self) -> usize {
        self.configs.len()
    }

    /// Number of surviving configurations — the size of the maximal family
    /// `H` of Definition 4.7 (0 when the Spoiler wins).
    pub fn family_size(&self) -> usize {
        self.configs.iter().filter(|c| c.alive).count()
    }

    /// Looks a configuration up by its partial map (including constant
    /// pairs). Returns its id if the map is a valid configuration.
    pub fn config_id(&self, map: &PartialMap) -> Option<usize> {
        self.by_map.get(map).copied()
    }

    /// Whether configuration `id` survived (is in the maximal family).
    pub fn is_alive(&self, id: usize) -> bool {
        self.configs[id].alive
    }

    /// The partial map of configuration `id`.
    pub fn config_map(&self, id: usize) -> &PartialMap {
        &self.configs[id].map
    }

    /// Death reason of configuration `id`, if dead. For the root-invalid
    /// case use [`root_invalid`](Self::root_invalid).
    pub fn death(&self, id: usize) -> Option<DeathReason> {
        self.configs[id].death
    }

    /// Whether the game was lost before it began (constants do not map).
    pub fn root_invalid(&self) -> bool {
        self.root.is_err()
    }

    /// Duplicator's reply from configuration `id` when the Spoiler pebbles
    /// element `a` of `A`: some `b` whose extension survives, if any.
    /// Returns the pair `(b, child_id)`.
    pub fn duplicator_reply(&self, id: usize, a: Element) -> Option<(Element, usize)> {
        if let Some(b) = self.configs[id].map.get(a) {
            // Element already pebbled: the only consistent reply.
            return Some((b, id));
        }
        self.configs[id]
            .extensions
            .get(&a)?
            .1
            .iter()
            .find(|&&(_, child)| self.configs[child].alive)
            .copied()
    }

    /// The child configuration reached by extending `id` with `(a, b)`,
    /// dead or alive; `None` if the extension is not even a partial
    /// homomorphism.
    pub fn child(&self, id: usize, a: Element, b: Element) -> Option<usize> {
        if self.configs[id].map.get(a) == Some(b) {
            return Some(id);
        }
        self.configs[id]
            .extensions
            .get(&a)?
            .1
            .iter()
            .find(|&&(bb, _)| bb == b)
            .map(|&(_, child)| child)
    }

    /// The subfunction configuration reached from `id` by removing the
    /// pebble on domain element `a` (a no-op id if `a` is a constant or
    /// unpebbled).
    pub fn drop_pebble(&self, id: usize, a: Element) -> usize {
        for &(pid, pa) in &self.configs[id].parents {
            if pa == a {
                return pid;
            }
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{
        directed_path, two_crossing_paths, two_disjoint_paths,
    };
    use kv_structures::HomKind;

    /// Example 4.4: short path into long path — Duplicator wins for all k.
    #[test]
    fn example_4_4_short_into_long() {
        let a = directed_path(4);
        let b = directed_path(7);
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
            assert_eq!(g.winner(), Winner::Duplicator, "k = {k}");
            assert!(g.family_size() > 0);
        }
    }

    /// Example 4.4: long path into short path — Spoiler wins with 2 pebbles
    /// (but not with 1).
    #[test]
    fn example_4_4_long_into_short() {
        let a = directed_path(7);
        let b = directed_path(4);
        let g1 = ExistentialGame::solve(&a, &b, 1, HomKind::OneToOne);
        assert_eq!(g1.winner(), Winner::Duplicator, "one pebble is blind");
        let g2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(g2.winner(), Winner::Spoiler);
        let g3 = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
        assert_eq!(g3.winner(), Winner::Spoiler);
    }

    /// Example 4.5: two disjoint paths vs two crossing paths — the paper
    /// exhibits a Spoiler win with 3 pebbles; the solver confirms it (and
    /// sharpens the example: 2 pebbles already suffice, because the
    /// crossing structure has a single node with both in- and out-degree,
    /// while the disjoint structure has two non-adjacent ones — the
    /// Spoiler walks a second pebble to the missing neighbour). With a
    /// single pebble the Duplicator survives.
    #[test]
    fn example_4_5_disjoint_vs_crossing() {
        for n in 1..=2usize {
            let a = two_disjoint_paths(n);
            let b = two_crossing_paths(n);
            let g1 = ExistentialGame::solve(&a, &b, 1, HomKind::OneToOne);
            assert_eq!(g1.winner(), Winner::Duplicator, "n = {n}, k = 1");
            let g2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
            assert_eq!(g2.winner(), Winner::Spoiler, "n = {n}, k = 2");
            let g3 = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
            assert_eq!(g3.winner(), Winner::Spoiler, "n = {n}, k = 3");
        }
    }

    /// The game relation is not symmetric (Example 4.4 discussion).
    #[test]
    fn asymmetry() {
        let a = directed_path(3);
        let b = directed_path(5);
        let fwd = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let bwd = ExistentialGame::solve(&b, &a, 2, HomKind::OneToOne);
        assert_eq!(fwd.winner(), Winner::Duplicator);
        assert_eq!(bwd.winner(), Winner::Spoiler);
    }

    /// With constants pinned incompatibly, the Spoiler wins before moving.
    #[test]
    fn invalid_root_loses_immediately() {
        let mut ga = kv_structures::generators::directed_path_graph(2);
        ga.set_distinguished(vec![0, 1]);
        let mut gb = kv_structures::generators::directed_path_graph(2);
        gb.set_distinguished(vec![1, 0]); // edge reversed w.r.t. constants
        let a = ga.to_structure();
        let b = gb.to_structure();
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert!(g.root_invalid());
        assert_eq!(g.winner(), Winner::Spoiler);
    }

    /// Identity game: Duplicator always wins on identical structures.
    #[test]
    fn identity_game() {
        let a = two_crossing_paths(2);
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &a, k, HomKind::OneToOne);
            assert_eq!(g.winner(), Winner::Duplicator, "k = {k}");
        }
    }

    /// Datalog variant: a cycle maps homomorphically onto a shorter cycle
    /// whose length divides it, so the Duplicator survives the plain-hom
    /// game for every k, while the one-to-one game with 3 pebbles is lost
    /// (three pebbled cycle nodes need three distinct images in a 2-cycle).
    /// With only 2 pebbles even the one-to-one game is survivable — the
    /// Duplicator leapfrogs the two images around the short cycle.
    #[test]
    fn homomorphism_variant_collapses_cycles() {
        let a = kv_structures::generators::directed_cycle(4);
        let b = kv_structures::generators::directed_cycle(2);
        let plain = ExistentialGame::solve(&a, &b, 3, HomKind::Homomorphism);
        assert_eq!(plain.winner(), Winner::Duplicator);
        let strict2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(strict2.winner(), Winner::Duplicator);
        let strict3 = ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne);
        assert_eq!(strict3.winner(), Winner::Spoiler);
    }

    /// Duplicator replies from the solved family are always alive children.
    #[test]
    fn duplicator_reply_consistency() {
        let a = directed_path(3);
        let b = directed_path(6);
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let root = g.config_id(&PartialMap::new()).unwrap();
        for ax in a.elements() {
            let (bx, child) = g.duplicator_reply(root, ax).expect("reply exists");
            assert!(g.is_alive(child));
            assert_eq!(g.config_map(child).get(ax), Some(bx));
        }
    }

    /// Spoiler's recorded death reasons form a coherent winning recipe on a
    /// lost game: following Forth/Subfunction hints never dead-ends.
    #[test]
    fn spoiler_death_reasons_traceable() {
        let a = directed_path(7);
        let b = directed_path(4);
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        let root = g.config_id(&PartialMap::new()).unwrap();
        assert!(!g.is_alive(root));
        // Walk one level of the recipe.
        match g.death(root).unwrap() {
            DeathReason::Forth(ax) => {
                // Every reply leads to a dead or invalid config.
                for bx in b.elements() {
                    if let Some(child) = g.child(root, ax, bx) {
                        assert!(!g.is_alive(child));
                    }
                }
            }
            other => panic!("root of fresh game should die by forth, got {other:?}"),
        }
    }

    /// Arena sizes stay polynomial-ish and deterministic.
    #[test]
    fn arena_size_reported() {
        let a = directed_path(4);
        let b = directed_path(5);
        let g = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert!(g.arena_size() > 1);
        assert!(g.family_size() <= g.arena_size());
    }
}
