//! Demand-driven (lazy) arena solving: local witness search with
//! dominance pruning and early termination.
//!
//! The eager builder ([`Arena::build_and_solve`]) materializes the entire
//! position space reachable from the root and then deletes refuted
//! positions until the greatest forth-closed family remains. Deciding the
//! *root* rarely needs all of that: by Theorem 4.8 the Duplicator wins
//! from the root iff the root belongs to **some** forth-closed (and, for
//! retreat games, subposition-closed) family — not necessarily the
//! greatest one. [`Arena::lazy_solve`] searches for such a witness family
//! directly, in the style of local (on-the-fly) fixpoint evaluation à la
//! Liu–Smolka:
//!
//! - Positions are expanded only when *demanded*: the root is demanded,
//!   and an expansion demands one **chosen** reply per challenge plus (for
//!   closure games) every direct subposition. Sibling replies stay
//!   unexplored unless the chosen one is refuted.
//! - Choices prefer, in order: a stutter (never refutable), an already
//!   materialized alive position (**dominance pruning** — re-entering the
//!   candidate family costs nothing, so the family is reused rather than
//!   grown), and only then a fresh position.
//! - When a position dies, its death is propagated *backwards only along
//!   demanded links*: supers of a dead subposition die (retreat), and
//!   choosers of a dead child re-choose among their remaining options,
//!   dying by forth when none survive.
//! - The run stops the moment the root's verdict is decided: immediately
//!   when the root dies, or when no demanded position is left unexpanded —
//!   at that point the alive positions linked from the root are a
//!   forth-closed, subposition-closed family containing the root, i.e. a
//!   winning witness for the Duplicator.
//!
//! The resulting arena is a *partial* subarena of the eager one: only the
//! root's verdict is comparable. Governance mirrors the eager builder —
//! positions are charged on interning, steps per option scanned or death
//! propagated, and interrupts land on committed boundaries (a fully
//! recorded expansion or a fully propagated death) with the lazy state
//! checkpointed inside the ordinary [`crate::ArenaCheckpoint`].

use crate::arena::{Arena, ArenaCheckpoint, ArenaInterrupted, Child, Death, GameSpec, Node, Phase};
use kv_structures::govern::{Governor, Interrupted};
use std::collections::VecDeque;
use std::hash::Hash;

/// One Spoiler challenge at a demanded position, with the reply options
/// not yet tried and the currently committed choice.
#[derive(Debug)]
struct PendingChallenge<K, C, R> {
    challenge: C,
    /// Options not yet committed. An option is consumed when chosen;
    /// options leading to refuted positions are dropped for good.
    untried: Vec<(R, Child<K>)>,
    /// The committed `(reply, child_id)`, if any. `None` only transiently
    /// during a re-choice.
    chosen: Option<(R, usize)>,
}

/// Lazy-solver bookkeeping for one arena position.
#[derive(Debug)]
struct LazyNode<K, C, R> {
    /// Challenges recorded at expansion, each with its committed choice.
    pending: Vec<PendingChallenge<K, C, R>>,
    /// Positions that materialized this one as a direct subposition (with
    /// the challenge of the removed pebble); they die when this one dies.
    supers: Vec<(usize, C)>,
    /// `(chooser, pending_index)` links: positions whose committed choice
    /// for that challenge is this node; they re-choose when this one dies.
    choosers: Vec<(usize, usize)>,
    /// Expansion level (distance from the root in forth steps), used only
    /// against [`GameSpec::depth`].
    level: usize,
    /// Whether the node currently sits in the expansion queue.
    queued: bool,
}

impl<K, C, R> LazyNode<K, C, R> {
    fn fresh(level: usize) -> Self {
        Self {
            pending: Vec::new(),
            supers: Vec::new(),
            choosers: Vec::new(),
            level,
            queued: true,
        }
    }
}

/// Resumable state of a lazy solve, stored as [`Phase::Lazy`] inside an
/// [`ArenaCheckpoint`]. Mirrors `Arena::nodes` index for index.
#[derive(Debug)]
pub(crate) struct LazyState<K, C, R> {
    nodes: Vec<LazyNode<K, C, R>>,
    expand_queue: VecDeque<usize>,
    death_queue: Vec<usize>,
}

impl<K, C, R> LazyState<K, C, R> {
    /// State for a freshly created root-only arena: the root is demanded.
    pub(crate) fn with_root() -> Self {
        Self {
            nodes: vec![LazyNode::fresh(0)],
            expand_queue: VecDeque::from([0]),
            death_queue: Vec::new(),
        }
    }
}

/// Governor charges accumulated by one committed unit of work.
#[derive(Default)]
struct Charges {
    positions: u64,
    steps: u64,
}

impl Charges {
    fn apply(&self, gov: &Governor) -> Result<(), Interrupted> {
        gov.charge_positions(self.positions)
            .and_then(|()| gov.step(self.steps))
    }
}

/// The lazy main loop: alternates death propagation (preferred — it is
/// cheap and decides the root earliest) with demanded expansions, until
/// the root dies or no demand remains.
pub(crate) fn run_lazy<S, K, C, R>(
    spec: &S,
    gov: &Governor,
    mut arena: Arena<K, C, R>,
    mut state: LazyState<K, C, R>,
) -> Result<Arena<K, C, R>, ArenaInterrupted<K, C, R>>
where
    S: GameSpec<Key = K, Challenge = C, Reply = R>,
    K: Clone + Eq + Hash + Send + Sync,
    C: Clone + PartialEq + Send,
    R: Clone + PartialEq + Send,
{
    loop {
        if !arena.nodes[0].alive {
            // Early termination: the Spoiler wins from the root; whatever
            // is still queued cannot change that.
            return Ok(arena);
        }
        if let Err(reason) = gov.check() {
            return Err(interrupt(reason, arena, state));
        }
        if let Some(dead) = state.death_queue.pop() {
            let mut charges = Charges::default();
            propagate(&mut arena, &mut state, dead, &mut charges);
            if let Err(reason) = charges.apply(gov) {
                return Err(interrupt(reason, arena, state));
            }
            continue;
        }
        let Some(id) = state.expand_queue.pop_front() else {
            // No demanded position left unexpanded and no deaths pending:
            // the alive positions linked from the root form a forth-closed
            // (and subposition-closed) family — the Duplicator wins.
            return Ok(arena);
        };
        state.nodes[id].queued = false;
        if !arena.nodes[id].alive || arena.nodes[id].expanded || !is_needed(&arena, &state, id) {
            // Demand was withdrawn (every link into this node died) while
            // it sat in the queue; it is re-queued if demanded again.
            continue;
        }
        let mut charges = Charges::default();
        expand_node(spec, &mut arena, &mut state, id, &mut charges);
        if let Err(reason) = charges.apply(gov) {
            return Err(interrupt(reason, arena, state));
        }
    }
}

fn interrupt<K, C, R>(
    reason: Interrupted,
    arena: Arena<K, C, R>,
    state: LazyState<K, C, R>,
) -> ArenaInterrupted<K, C, R> {
    ArenaInterrupted {
        reason,
        checkpoint: ArenaCheckpoint {
            arena,
            phase: Phase::Lazy(state),
        },
    }
}

/// Whether expanding `id` can still matter: the root always does; other
/// nodes only while some alive super awaits them or some alive chooser
/// currently commits to them.
fn is_needed<K, C, R>(arena: &Arena<K, C, R>, state: &LazyState<K, C, R>, id: usize) -> bool {
    if id == 0 {
        return true;
    }
    let node = &state.nodes[id];
    node.supers.iter().any(|&(sup, _)| arena.nodes[sup].alive)
        || node.choosers.iter().any(|&(m, pi)| {
            arena.nodes[m].alive
                && state.nodes[m].pending[pi]
                    .chosen
                    .as_ref()
                    .is_some_and(|&(_, c)| c == id)
        })
}

/// Interns `key` if absent (demanding its expansion); returns its id.
fn intern_or_get<K, C, R>(
    arena: &mut Arena<K, C, R>,
    state: &mut LazyState<K, C, R>,
    key: &K,
    level: usize,
    charges: &mut Charges,
) -> usize
where
    K: Clone + Eq + Hash,
{
    if let Some(&id) = arena.by_key.get(key) {
        return id;
    }
    let id = arena.nodes.len();
    arena.by_key.insert(key.clone(), id);
    arena.nodes.push(Node::fresh(key.clone()));
    state.nodes.push(LazyNode::fresh(level));
    state.expand_queue.push_back(id);
    charges.positions += 1;
    id
}

/// Re-queues an existing, still unexpanded node whose demand was renewed
/// by a fresh link.
fn ensure_queued<K, C, R>(arena: &Arena<K, C, R>, state: &mut LazyState<K, C, R>, id: usize) {
    if arena.nodes[id].alive && !arena.nodes[id].expanded && !state.nodes[id].queued {
        state.nodes[id].queued = true;
        state.expand_queue.push_back(id);
    }
}

/// Expands one demanded position: materializes its direct subpositions
/// (closure games only — dying at once if one is already refuted), then
/// records every challenge and commits one choice per challenge.
fn expand_node<S, K, C, R>(
    spec: &S,
    arena: &mut Arena<K, C, R>,
    state: &mut LazyState<K, C, R>,
    id: usize,
    charges: &mut Charges,
) where
    S: GameSpec<Key = K, Challenge = C, Reply = R>,
    K: Clone + Eq + Hash + Send + Sync,
    C: Clone + PartialEq + Send,
    R: Clone + PartialEq + Send,
{
    let key = arena.nodes[id].key.clone();
    let level = state.nodes[id].level;
    arena.nodes[id].expanded = true;
    charges.steps += 1;
    if spec.closure_under_subpositions() {
        for (sub_key, challenge, _reply) in spec.subpositions(&key) {
            charges.steps += 1;
            let sub = intern_or_get(arena, state, &sub_key, level.saturating_sub(1), charges);
            state.nodes[sub].supers.push((id, challenge.clone()));
            arena.edge_count += 1;
            if !arena.nodes[sub].alive {
                arena.kill(
                    id,
                    Death::Retreat {
                        parent: sub,
                        challenge,
                    },
                    &mut state.death_queue,
                );
                return;
            }
            ensure_queued(arena, state, sub);
        }
    }
    if level >= spec.depth() {
        return;
    }
    for (challenge, options) in spec.expand(&key, level) {
        charges.steps += options.len() as u64;
        let pi = state.nodes[id].pending.len();
        state.nodes[id].pending.push(PendingChallenge {
            challenge,
            untried: options,
            chosen: None,
        });
        choose(arena, state, id, pi, charges);
        if !arena.nodes[id].alive {
            return;
        }
    }
}

/// Commits one reply for challenge `pi` of node `id`, preferring (1) a
/// stutter, (2) an already materialized alive position — the dominance
/// rule: stay inside the candidate family instead of growing the arena —
/// then (3) a fresh position. If every remaining option leads to a
/// refuted position, `id` fails forth and dies.
fn choose<K, C, R>(
    arena: &mut Arena<K, C, R>,
    state: &mut LazyState<K, C, R>,
    id: usize,
    pi: usize,
    charges: &mut Charges,
) where
    K: Clone + Eq + Hash + Send + Sync,
    C: Clone + PartialEq + Send,
    R: Clone + PartialEq + Send,
{
    charges.steps += 1;
    let stutter = state.nodes[id].pending[pi]
        .untried
        .iter()
        .position(|(_, c)| matches!(c, Child::Stutter));
    if let Some(pos) = stutter {
        let (reply, _) = state.nodes[id].pending[pi].untried.remove(pos);
        // A stutter stays at `id` itself and can never be refuted while
        // `id` is alive, so no chooser link is needed.
        state.nodes[id].pending[pi].chosen = Some((reply, id));
        return;
    }
    let interned_alive = state.nodes[id].pending[pi]
        .untried
        .iter()
        .position(|(_, c)| match c {
            Child::Key(k) => arena
                .by_key
                .get(k)
                .is_some_and(|&cid| arena.nodes[cid].alive),
            Child::Stutter => false,
        });
    if let Some(pos) = interned_alive {
        let (reply, child) = state.nodes[id].pending[pi].untried.remove(pos);
        if let Child::Key(k) = child {
            if let Some(&cid) = arena.by_key.get(&k) {
                state.nodes[id].pending[pi].chosen = Some((reply, cid));
                state.nodes[cid].choosers.push((id, pi));
                arena.edge_count += 1;
                ensure_queued(arena, state, cid);
            }
        }
        return;
    }
    let fresh = state.nodes[id].pending[pi]
        .untried
        .iter()
        .position(|(_, c)| matches!(c, Child::Key(k) if !arena.by_key.contains_key(k)));
    if let Some(pos) = fresh {
        let (reply, child) = state.nodes[id].pending[pi].untried.remove(pos);
        if let Child::Key(k) = child {
            let level = state.nodes[id].level + 1;
            let cid = intern_or_get(arena, state, &k, level, charges);
            state.nodes[id].pending[pi].chosen = Some((reply, cid));
            state.nodes[cid].choosers.push((id, pi));
            arena.edge_count += 1;
        }
        return;
    }
    // Every remaining option (and every option tried before) leads to a
    // refuted position: forth failure.
    charges.steps += state.nodes[id].pending[pi].untried.len() as u64;
    state.nodes[id].pending[pi].untried.clear();
    let challenge = state.nodes[id].pending[pi].challenge.clone();
    arena.kill(id, Death::Forth(challenge), &mut state.death_queue);
}

/// Propagates one death backwards along demanded links: supers die by
/// retreat, choosers re-choose (possibly dying by forth in turn).
fn propagate<K, C, R>(
    arena: &mut Arena<K, C, R>,
    state: &mut LazyState<K, C, R>,
    dead: usize,
    charges: &mut Charges,
) where
    K: Clone + Eq + Hash + Send + Sync,
    C: Clone + PartialEq + Send,
    R: Clone + PartialEq + Send,
{
    charges.steps += 1;
    let supers = std::mem::take(&mut state.nodes[dead].supers);
    charges.steps += supers.len() as u64;
    for (sup, challenge) in supers {
        if arena.nodes[sup].alive {
            arena.kill(
                sup,
                Death::Retreat {
                    parent: dead,
                    challenge,
                },
                &mut state.death_queue,
            );
        }
    }
    let choosers = std::mem::take(&mut state.nodes[dead].choosers);
    charges.steps += choosers.len() as u64;
    for (m, pi) in choosers {
        if !arena.nodes[m].alive {
            continue;
        }
        let points_here = state.nodes[m].pending[pi]
            .chosen
            .as_ref()
            .is_some_and(|&(_, c)| c == dead);
        if points_here {
            state.nodes[m].pending[pi].chosen = None;
            choose(arena, state, m, pi, charges);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::govern::Budget;

    /// The `Count` toy from the arena tests, without closure: position `n`
    /// is challenged once; replies go to `n + 1` (if in range) and, at
    /// even `n`, also stutter.
    struct Count {
        max: usize,
    }

    impl GameSpec for Count {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            self.max
        }

        fn closure_under_subpositions(&self) -> bool {
            false
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            let mut replies = Vec::new();
            if *key < self.max {
                replies.push((0u8, Child::Key(key + 1)));
            }
            if key.is_multiple_of(2) {
                replies.push((1u8, Child::Stutter));
            }
            vec![(0u8, replies)]
        }
    }

    #[test]
    fn stutter_preference_decides_root_in_one_expansion() {
        let spec = Count { max: 100 };
        let eager = Arena::build_and_solve(&spec, 0usize);
        let lazy = Arena::lazy_solve(&spec, 0usize);
        assert!(eager.is_alive(0));
        assert!(lazy.is_alive(0));
        // The root's stutter option wins immediately; the 100-position
        // chain is never materialized.
        assert_eq!(lazy.len(), 1);
        assert_eq!(eager.len(), 101);
    }

    /// A dead-end chain with no closure: 0 -> 1, and 1 is stuck.
    struct DeadEndOpen;

    impl GameSpec for DeadEndOpen {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            3
        }

        fn closure_under_subpositions(&self) -> bool {
            false
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            match key {
                0 => vec![(0u8, vec![(0u8, Child::Key(1))])],
                1 => vec![(0u8, vec![]), (1u8, vec![(0u8, Child::Key(2))])],
                _ => vec![],
            }
        }
    }

    #[test]
    fn forth_failure_reaches_the_root() {
        let eager = Arena::build_and_solve(&DeadEndOpen, 0usize);
        let lazy = Arena::lazy_solve(&DeadEndOpen, 0usize);
        assert!(!eager.is_alive(0));
        assert!(!lazy.is_alive(0));
        assert_eq!(lazy.death(0), Some(&Death::Forth(0u8)));
        // Early exit: node 2 (demanded by 1's second challenge before the
        // first one killed it, or never, depending on order) does not
        // change the verdict; only the root matters.
    }

    /// A miniature existential pebble game, with honest subpositions:
    /// positions are partial maps (sorted pair lists) from the vertices of
    /// digraph `ea` to those of `eb`; a reply is valid iff the extended
    /// map stays a partial homomorphism.
    struct MiniHom {
        na: u8,
        nb: u8,
        ea: Vec<(u8, u8)>,
        eb: Vec<(u8, u8)>,
        k: usize,
    }

    type Map = Vec<(u8, u8)>;

    impl MiniHom {
        fn consistent(&self, map: &Map) -> bool {
            for &(x, fx) in map {
                for &(y, fy) in map {
                    if self.ea.contains(&(x, y)) && !self.eb.contains(&(fx, fy)) {
                        return false;
                    }
                }
            }
            true
        }
    }

    impl GameSpec for MiniHom {
        type Key = Map;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            self.k
        }

        fn closure_under_subpositions(&self) -> bool {
            true
        }

        fn expand(&self, key: &Map, _level: usize) -> Vec<(u8, Vec<(u8, Child<Map>)>)> {
            (0..self.na)
                .filter(|p| !key.iter().any(|&(x, _)| x == *p))
                .map(|p| {
                    let options = (0..self.nb)
                        .filter_map(|r| {
                            let mut next = key.clone();
                            next.push((p, r));
                            next.sort_unstable();
                            self.consistent(&next).then_some((r, Child::Key(next)))
                        })
                        .collect();
                    (p, options)
                })
                .collect()
        }

        fn subpositions(&self, key: &Map) -> Vec<(Map, u8, u8)> {
            key.iter()
                .map(|&(p, r)| {
                    let sub: Map = key.iter().copied().filter(|&(x, _)| x != p).collect();
                    (sub, p, r)
                })
                .collect()
        }
    }

    fn clique(n: u8) -> Vec<(u8, u8)> {
        (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect()
    }

    #[test]
    fn mini_hom_lazy_matches_eager_verdicts() {
        // K3 -> K2: Duplicator survives 2 pebbles, loses at 3.
        for (k, alive) in [(1usize, true), (2, true), (3, false)] {
            let spec = MiniHom {
                na: 3,
                nb: 2,
                ea: clique(3),
                eb: clique(2),
                k,
            };
            let eager = Arena::build_and_solve(&spec, Vec::new());
            let lazy = Arena::lazy_solve(&spec, Vec::new());
            assert_eq!(eager.is_alive(0), alive, "eager k={k}");
            assert_eq!(lazy.is_alive(0), alive, "lazy k={k}");
            assert!(
                lazy.len() <= eager.len(),
                "lazy explored {} > eager {} at k={k}",
                lazy.len(),
                eager.len()
            );
        }
        // K2 -> K3: a homomorphism exists, Duplicator always wins.
        let spec = MiniHom {
            na: 2,
            nb: 3,
            ea: clique(2),
            eb: clique(3),
            k: 2,
        };
        assert!(Arena::build_and_solve(&spec, Vec::new()).is_alive(0));
        assert!(Arena::lazy_solve(&spec, Vec::new()).is_alive(0));
    }

    #[test]
    fn lazy_duplicator_win_explores_less() {
        // K2 -> K4 with 2 pebbles: the witness family needs one reply per
        // challenge, while the eager arena holds every consistent map.
        let spec = MiniHom {
            na: 2,
            nb: 4,
            ea: clique(2),
            eb: clique(4),
            k: 2,
        };
        let eager = Arena::build_and_solve(&spec, Vec::new());
        let lazy = Arena::lazy_solve(&spec, Vec::new());
        assert!(eager.is_alive(0));
        assert!(lazy.is_alive(0));
        assert!(
            lazy.len() * 2 <= eager.len(),
            "lazy {} vs eager {}",
            lazy.len(),
            eager.len()
        );
    }

    fn assert_same_arena(a: &Arena<Map, u8, u8>, b: &Arena<Map, u8, u8>) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        for id in 0..a.len() {
            assert_eq!(a.key(id), b.key(id), "key of {id}");
            assert_eq!(a.is_alive(id), b.is_alive(id), "aliveness of {id}");
            assert_eq!(a.death(id), b.death(id), "death of {id}");
        }
    }

    #[test]
    fn interrupted_lazy_solve_resumes_to_identical_arena() {
        for k in [2usize, 3] {
            let spec = MiniHom {
                na: 3,
                nb: 2,
                ea: clique(3),
                eb: clique(2),
                k,
            };
            let baseline = Arena::lazy_solve(&spec, Vec::new());
            for max_steps in [1u64, 2, 3, 5, 8, 13, 50, 200] {
                let gov = kv_structures::govern::chaos::step_tripper(max_steps);
                match Arena::try_lazy_solve(&spec, Vec::new(), &gov) {
                    Ok(arena) => assert_same_arena(&baseline, &arena),
                    Err(e) => {
                        assert!(matches!(e.reason, Interrupted::Limit(_)));
                        let resumed =
                            Arena::resume_build(&spec, e.checkpoint, &Governor::unlimited())
                                .expect("unlimited resume completes");
                        assert_same_arena(&baseline, &resumed);
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_position_budget_interrupts_and_resumes() {
        let spec = MiniHom {
            na: 3,
            nb: 3,
            ea: clique(3),
            eb: clique(3),
            k: 3,
        };
        let gov = Governor::with_budget(Budget::positions(2));
        let err = Arena::try_lazy_solve(&spec, Vec::new(), &gov).unwrap_err();
        assert!(matches!(err.reason, Interrupted::Limit(_)));
        let resumed = Arena::resume_build(&spec, err.checkpoint, &Governor::unlimited())
            .expect("relaxed resume completes");
        assert_same_arena(&Arena::lazy_solve(&spec, Vec::new()), &resumed);
    }

    #[test]
    fn cancelled_lazy_solve_interrupts_immediately() {
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let err = Arena::try_lazy_solve(&DeadEndOpen, 0usize, &gov).unwrap_err();
        assert_eq!(err.reason, Interrupted::Cancelled);
        assert_eq!(err.checkpoint.positions(), 1, "only the root is interned");
    }
}
