//! Pebble games: the paper's tool set.
//!
//! - [`game`]: the **existential k-pebble game** of Definition 4.3 between
//!   the Spoiler (Player I) and the Duplicator (Player II), solved in
//!   polynomial time for fixed `k` (Proposition 5.3) by computing the
//!   greatest family of partial one-to-one homomorphisms closed under
//!   subfunctions with the forth property (Definition 4.7). The Datalog
//!   variant with plain homomorphisms (Remark 4.12(1)) is a parameter.
//! - [`play`]: an actual game harness — positions, moves, strategy traits,
//!   random/exhaustive Spoilers — used to validate solver verdicts and the
//!   hand-rolled strategies of Section 6 by adversarial play.
//! - [`preceq`]: the relation `A ≼^k B` ("every `L^k` sentence true in `A`
//!   holds in `B`", Definition 4.1) decided via Theorem 4.8.
//! - [`cnf`], [`cnf_game`]: CNF formulas and the k-pebble game **on Boolean
//!   formulas** of Definition 6.5, the bookkeeping device of Theorem 6.6.
//! - [`acyclic`]: the two-player pebble game on an (acyclic) input graph
//!   that characterizes fixed subgraph homeomorphism (Theorem 6.2), plus
//!   the single-player variant of FHW's Lemma 4.
//! - [`arena`]: the shared configuration arena behind every solver —
//!   level-synchronous parallel generation plus predecessor-indexed
//!   worklist deletion in `O(edges)`. Besides the eager build, the arena
//!   offers a demand-driven lazy solve (`Arena::lazy_solve`) that expands
//!   positions only as needed to decide the root, with dominance pruning
//!   and early termination.
//! - [`win_iteration`]: the paper's literal `Win_k` value iteration,
//!   retained as the ablation/differential partner of the worklist path.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Interrupt errors deliberately carry the resumable checkpoint inline; they
// are cold-path values, so the large `Err` variants are intentional.
#![allow(clippy::result_large_err)]

pub mod acyclic;
pub mod arena;
pub mod cnf;
pub mod cnf_game;
pub mod cnf_play;
pub mod game;
mod lazy;
pub mod play;
pub mod preceq;
pub mod win_iteration;

pub use acyclic::{AcyclicCheckpoint, AcyclicGame, AcyclicInterrupted, PatternSpec};
pub use arena::{ArenaCheckpoint, ArenaInterrupted};
pub use cnf::{clause, CnfFormula, Lit};
pub use cnf_game::{CnfGame, CnfGameCheckpoint, CnfGameInterrupted};
pub use cnf_play::{
    play_cnf_game, AssignmentDuplicator, CnfDuplicator, CnfFamilyDuplicator, CnfMove, CnfSpoiler,
    RandomCnfSpoiler,
};
pub use game::{DeathReason, ExistentialGame, GameCheckpoint, GameInterrupted, Winner};
pub use kv_structures::{Budget, CancelToken, Deadline, Governor, Interrupted};
pub use play::{
    play_game, DuplicatorStrategy, ExhaustiveSpoiler, FamilyDuplicator, GamePosition,
    HomomorphismDuplicator, RandomSpoiler, SolverSpoiler, SpoilerMove, SpoilerStrategy,
};
pub use preceq::preceq;
pub use win_iteration::{solve_by_win_iteration, solve_by_worklist};
