//! Playing the existential k-pebble game move by move.
//!
//! The solver ([`crate::game`]) decides the winner; this module lets the
//! verdict be *exercised*: actual pebbles are placed and removed, a
//! [`SpoilerStrategy`] picks Player I's moves, a [`DuplicatorStrategy`]
//! picks Player II's replies, and the referee checks the one-to-one
//! homomorphism condition after every round (Definition 4.3).
//!
//! This is how the reproduction validates the *hand-built* strategies of
//! the paper's Section 6 (the simulation strategy of Theorem 6.6 lives in
//! `kv-reduction` and implements [`DuplicatorStrategy`]): play them against
//! exhaustive and randomized Spoilers and confirm they never lose.

use crate::game::{DeathReason, ExistentialGame, Winner};
use kv_structures::SplitMix64;
use kv_structures::{Element, HomKind, PartialMap, Structure};

/// A Spoiler move: place pebble `slot` on element `on` of `A`, or pick the
/// pebble of `slot` up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoilerMove {
    /// Place the (currently unplaced) pebble `slot` on `on`.
    Place {
        /// Pebble index in `0..k`.
        slot: usize,
        /// Element of `A`.
        on: Element,
    },
    /// Remove the (currently placed) pebble `slot`.
    Remove {
        /// Pebble index in `0..k`.
        slot: usize,
    },
}

/// The game position: where each of the `k` pebble pairs sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GamePosition {
    /// `slots[i]` = `Some((a, b))` if pebble pair `i` is on `a ∈ A`,
    /// `b ∈ B`.
    pub slots: Vec<Option<(Element, Element)>>,
}

impl GamePosition {
    /// The empty position with `k` slots.
    pub fn new(k: usize) -> Self {
        Self {
            slots: vec![None; k],
        }
    }

    /// The partial map induced by the pebbles together with the constant
    /// pairs; `None` if two pebbles contradict each other (not a function).
    pub fn to_map(&self, a: &Structure, b: &Structure) -> Option<PartialMap> {
        let mut m = PartialMap::new();
        for (&ca, &cb) in a.constant_values().iter().zip(b.constant_values()) {
            if !m.insert(ca, cb) {
                return None;
            }
        }
        for slot in self.slots.iter().flatten() {
            if !m.insert(slot.0, slot.1) {
                return None;
            }
        }
        Some(m)
    }
}

/// Player I. Sees the full position; must return a legal move.
pub trait SpoilerStrategy {
    /// Chooses the next move in `position`.
    fn choose(&mut self, position: &GamePosition) -> SpoilerMove;
}

/// Player II. Must answer a placement with an element of `B`, and is
/// notified of removals.
pub trait DuplicatorStrategy {
    /// The Spoiler placed pebble `slot` on `a`; answer with an element of
    /// `B` (or concede by returning `None`).
    fn respond(&mut self, position: &GamePosition, slot: usize, a: Element) -> Option<Element>;
    /// The Spoiler removed pebble `slot` (state-tracking hook).
    fn notify_remove(&mut self, _position: &GamePosition, _slot: usize) {}
}

/// Referee: play `rounds` rounds. Returns [`Winner::Spoiler`] as soon as the
/// position stops being a partial one-to-one homomorphism (or the
/// Duplicator concedes); [`Winner::Duplicator`] if all rounds are survived.
///
/// For the plain-homomorphism variant pass [`HomKind::Homomorphism`] — the
/// injectivity requirement is then waived.
pub fn play_game(
    a: &Structure,
    b: &Structure,
    k: usize,
    kind: HomKind,
    spoiler: &mut dyn SpoilerStrategy,
    duplicator: &mut dyn DuplicatorStrategy,
    rounds: usize,
) -> Winner {
    let mut position = GamePosition::new(k);
    // Constants must match up-front.
    if !position_valid(&position, a, b, kind) {
        return Winner::Spoiler;
    }
    for _ in 0..rounds {
        let mv = spoiler.choose(&position);
        match mv {
            SpoilerMove::Remove { slot } => {
                assert!(position.slots[slot].is_some(), "removing an empty slot");
                position.slots[slot] = None;
                duplicator.notify_remove(&position, slot);
            }
            SpoilerMove::Place { slot, on } => {
                assert!(position.slots[slot].is_none(), "placing a placed pebble");
                let Some(reply) = duplicator.respond(&position, slot, on) else {
                    return Winner::Spoiler;
                };
                position.slots[slot] = Some((on, reply));
                if !position_valid(&position, a, b, kind) {
                    return Winner::Spoiler;
                }
            }
        }
    }
    Winner::Duplicator
}

/// Is the position's induced map a partial homomorphism of the right kind
/// (constants included)?
pub fn position_valid(
    position: &GamePosition,
    a: &Structure,
    b: &Structure,
    kind: HomKind,
) -> bool {
    match position.to_map(a, b) {
        None => false,
        Some(map) => kv_structures::hom::is_partial_hom(&map, a, b, kind),
    }
}

/// A Duplicator that plays along a fixed total homomorphism `h` from `A`
/// to `B` — the strategy of Proposition 5.4's easy direction.
pub struct HomomorphismDuplicator {
    /// `h[a]` = image of `a`.
    pub h: Vec<Element>,
}

impl DuplicatorStrategy for HomomorphismDuplicator {
    fn respond(&mut self, _position: &GamePosition, _slot: usize, a: Element) -> Option<Element> {
        self.h.get(a as usize).copied()
    }
}

/// A Duplicator that follows the maximal family computed by
/// [`ExistentialGame`] — the constructive content of Theorem 4.8.
pub struct FamilyDuplicator<'g, 's> {
    game: &'g ExistentialGame<'s>,
}

impl<'g, 's> FamilyDuplicator<'g, 's> {
    /// Wraps a solved game. The Duplicator must actually be the winner for
    /// the strategy to be total.
    pub fn new(game: &'g ExistentialGame<'s>) -> Self {
        Self { game }
    }
}

impl DuplicatorStrategy for FamilyDuplicator<'_, '_> {
    fn respond(&mut self, position: &GamePosition, _slot: usize, a: Element) -> Option<Element> {
        let map = position.to_map(self.game.structure_a(), self.game.structure_b())?;
        let id = self.game.config_id(&map)?;
        self.game.duplicator_reply(id, a).map(|(b, _)| b)
    }
}

/// A Spoiler that plays uniformly random legal moves (seeded).
pub struct RandomSpoiler {
    rng: SplitMix64,
    universe_a: usize,
}

impl RandomSpoiler {
    /// Creates a random Spoiler for a structure with the given universe.
    pub fn new(universe_a: usize, seed: u64) -> Self {
        Self {
            rng: SplitMix64::seed_from_u64(seed),
            universe_a,
        }
    }
}

impl SpoilerStrategy for RandomSpoiler {
    fn choose(&mut self, position: &GamePosition) -> SpoilerMove {
        let placed: Vec<usize> = (0..position.slots.len())
            .filter(|&i| position.slots[i].is_some())
            .collect();
        let empty: Vec<usize> = (0..position.slots.len())
            .filter(|&i| position.slots[i].is_none())
            .collect();
        let remove = !placed.is_empty() && (empty.is_empty() || self.rng.gen_bool(0.3));
        if remove {
            SpoilerMove::Remove {
                slot: placed[self.rng.gen_range(0..placed.len())],
            }
        } else {
            SpoilerMove::Place {
                slot: empty[self.rng.gen_range(0..empty.len())],
                on: self.rng.gen_range(0..self.universe_a as Element),
            }
        }
    }
}

/// A Spoiler that follows the death-reason recipe of a solved game it is
/// winning: forth-failures tell it what to pebble, subfunction deaths tell
/// it what to pick up.
pub struct SolverSpoiler<'g, 's> {
    game: &'g ExistentialGame<'s>,
}

impl<'g, 's> SolverSpoiler<'g, 's> {
    /// Wraps a solved game that the Spoiler wins.
    pub fn new(game: &'g ExistentialGame<'s>) -> Self {
        Self { game }
    }
}

impl SpoilerStrategy for SolverSpoiler<'_, '_> {
    fn choose(&mut self, position: &GamePosition) -> SpoilerMove {
        let a = self.game.structure_a();
        let b = self.game.structure_b();
        let fallback = SpoilerMove::Place {
            slot: position.slots.iter().position(Option::is_none).unwrap_or(0),
            on: 0,
        };
        let Some(map) = position.to_map(a, b) else {
            return fallback; // already won; referee will notice
        };
        let Some(id) = self.game.config_id(&map) else {
            return fallback;
        };
        match self.game.death(id) {
            Some(DeathReason::Forth(ax)) => {
                // Infallible: forth deaths are only recorded on positions
                // of size < k, so a slot is free.
                #[allow(clippy::expect_used)]
                let slot = position
                    .slots
                    .iter()
                    .position(Option::is_none)
                    .expect("forth death implies size < k, so a slot is free");
                SpoilerMove::Place { slot, on: ax }
            }
            Some(DeathReason::Subfunction { drop, .. }) => {
                // Infallible: the recorded drop element is pebbled in the
                // position the death was derived from.
                #[allow(clippy::expect_used)]
                let slot = position
                    .slots
                    .iter()
                    .position(|s| s.map(|(pa, _)| pa) == Some(drop))
                    .expect("drop element is pebbled");
                SpoilerMove::Remove { slot }
            }
            Some(DeathReason::InvalidRoot) | None => fallback,
        }
    }
}

/// Exhaustively checks that a Duplicator strategy survives **every**
/// Spoiler move sequence of the given depth. The strategy is cloned at
/// each branch via the `factory`, so strategies must be reconstructible;
/// deterministic strategies can just be rebuilt.
///
/// Returns `None` if the Duplicator survives everything, or the losing
/// move sequence.
pub struct ExhaustiveSpoiler;

impl ExhaustiveSpoiler {
    /// Runs the exhaustive check. `make_duplicator` builds a fresh
    /// strategy; the same move prefix is replayed into it each time
    /// (quadratic but simple and deterministic).
    pub fn refute<F, D>(
        a: &Structure,
        b: &Structure,
        k: usize,
        kind: HomKind,
        depth: usize,
        make_duplicator: F,
    ) -> Option<Vec<SpoilerMove>>
    where
        F: Fn() -> D,
        D: DuplicatorStrategy,
    {
        let mut prefix: Vec<SpoilerMove> = Vec::new();
        Self::search(a, b, k, kind, depth, &make_duplicator, &mut prefix)
    }

    fn search<F, D>(
        a: &Structure,
        b: &Structure,
        k: usize,
        kind: HomKind,
        depth: usize,
        make_duplicator: &F,
        prefix: &mut Vec<SpoilerMove>,
    ) -> Option<Vec<SpoilerMove>>
    where
        F: Fn() -> D,
        D: DuplicatorStrategy,
    {
        // Replay the prefix to get the current position (and check the
        // Duplicator survives it — by induction it does).
        let (position, _dup) = match Self::replay(a, b, k, kind, prefix, make_duplicator) {
            Ok(pd) => pd,
            Err(()) => return Some(prefix.clone()),
        };
        if depth == 0 {
            return None;
        }
        // All legal Spoiler moves.
        for slot in 0..k {
            match position.slots[slot] {
                Some(_) => {
                    prefix.push(SpoilerMove::Remove { slot });
                    if let Some(loss) =
                        Self::search(a, b, k, kind, depth - 1, make_duplicator, prefix)
                    {
                        return Some(loss);
                    }
                    prefix.pop();
                }
                None => {
                    for on in a.elements() {
                        prefix.push(SpoilerMove::Place { slot, on });
                        if let Some(loss) =
                            Self::search(a, b, k, kind, depth - 1, make_duplicator, prefix)
                        {
                            return Some(loss);
                        }
                        prefix.pop();
                    }
                }
            }
        }
        None
    }

    #[allow(clippy::type_complexity)]
    fn replay<F, D>(
        a: &Structure,
        b: &Structure,
        k: usize,
        kind: HomKind,
        moves: &[SpoilerMove],
        make_duplicator: &F,
    ) -> Result<(GamePosition, D), ()>
    where
        F: Fn() -> D,
        D: DuplicatorStrategy,
    {
        let mut dup = make_duplicator();
        let mut position = GamePosition::new(k);
        if !position_valid(&position, a, b, kind) {
            return Err(());
        }
        for mv in moves {
            match *mv {
                SpoilerMove::Remove { slot } => {
                    position.slots[slot] = None;
                    dup.notify_remove(&position, slot);
                }
                SpoilerMove::Place { slot, on } => {
                    let reply = dup.respond(&position, slot, on).ok_or(())?;
                    position.slots[slot] = Some((on, reply));
                    if !position_valid(&position, a, b, kind) {
                        return Err(());
                    }
                }
            }
        }
        Ok((position, dup))
    }
}

/// Convenience: check solver verdict by actual play — family Duplicator
/// against the solver Spoiler and a batch of random Spoilers.
pub fn validate_by_play(
    a: &Structure,
    b: &Structure,
    k: usize,
    kind: HomKind,
    rounds: usize,
    seeds: std::ops::Range<u64>,
) -> bool {
    let game = ExistentialGame::solve(a, b, k, kind);
    match game.winner() {
        Winner::Duplicator => {
            // The family strategy must survive the solver Spoiler and
            // random Spoilers.
            for seed in seeds {
                let mut sp = RandomSpoiler::new(a.universe_size(), seed);
                let mut dup = FamilyDuplicator::new(&game);
                if play_game(a, b, k, kind, &mut sp, &mut dup, rounds) != Winner::Duplicator {
                    return false;
                }
            }
            true
        }
        Winner::Spoiler => {
            // The solver Spoiler must beat the (doomed) family Duplicator —
            // and indeed any Duplicator; we test the family one, which
            // plays "as well as possible".
            let mut sp = SolverSpoiler::new(&game);
            let mut dup = FamilyDuplicator::new(&game);
            play_game(a, b, k, kind, &mut sp, &mut dup, rounds) == Winner::Spoiler
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{directed_path, two_crossing_paths, two_disjoint_paths};

    #[test]
    fn family_duplicator_survives_random_spoilers() {
        let a = directed_path(4);
        let b = directed_path(7);
        assert!(validate_by_play(&a, &b, 2, HomKind::OneToOne, 200, 0..10));
    }

    #[test]
    fn solver_spoiler_wins_lost_games_quickly() {
        let a = directed_path(8);
        let b = directed_path(4);
        assert!(validate_by_play(&a, &b, 2, HomKind::OneToOne, 64, 0..1));
    }

    #[test]
    fn solver_spoiler_beats_example_4_5() {
        let a = two_disjoint_paths(2);
        let b = two_crossing_paths(2);
        assert!(validate_by_play(&a, &b, 3, HomKind::OneToOne, 200, 0..1));
    }

    #[test]
    fn homomorphism_duplicator_wins_via_embedding() {
        // Shift embedding of a short path into a long path.
        let a = directed_path(3);
        let b = directed_path(6);
        let mut sp = RandomSpoiler::new(3, 99);
        let mut dup = HomomorphismDuplicator { h: vec![1, 2, 3] };
        let w = play_game(&a, &b, 3, HomKind::OneToOne, &mut sp, &mut dup, 300);
        assert_eq!(w, Winner::Duplicator);
    }

    #[test]
    fn exhaustive_spoiler_confirms_family_strategy() {
        let a = directed_path(3);
        let b = directed_path(5);
        let game = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(game.winner(), Winner::Duplicator);
        let loss = ExhaustiveSpoiler::refute(&a, &b, 2, HomKind::OneToOne, 4, || {
            FamilyDuplicator::new(&game)
        });
        assert!(loss.is_none(), "family strategy lost: {loss:?}");
    }

    #[test]
    fn exhaustive_spoiler_finds_losses_of_bad_strategies() {
        // A Duplicator that always answers 0 loses quickly on paths.
        struct Zero;
        impl DuplicatorStrategy for Zero {
            fn respond(&mut self, _: &GamePosition, _: usize, _: Element) -> Option<Element> {
                Some(0)
            }
        }
        let a = directed_path(3);
        let b = directed_path(3);
        let loss = ExhaustiveSpoiler::refute(&a, &b, 2, HomKind::OneToOne, 3, || Zero);
        assert!(loss.is_some());
    }

    #[test]
    fn position_map_detects_conflicts() {
        let a = directed_path(3);
        let b = directed_path(3);
        let mut p = GamePosition::new(2);
        p.slots[0] = Some((0, 1));
        p.slots[1] = Some((0, 2)); // same A-element, different images
        assert!(p.to_map(&a, &b).is_none());
        p.slots[1] = Some((1, 1)); // injectivity violation
        let m = p.to_map(&a, &b).unwrap();
        assert!(!m.is_injective());
        assert!(!position_valid(&p, &a, &b, HomKind::OneToOne));
    }
}
