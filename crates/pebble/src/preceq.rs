//! The relation `≼^k` (Definition 4.1) and the Theorem 4.8 / 4.10 bridge.
//!
//! `A ≼^k B` iff every `L^k` sentence true in `A` is true in `B`, iff the
//! Duplicator wins the existential k-pebble game on `(A, B)` — which is how
//! [`preceq`] decides it. Tuple-expanded variants
//! `(A, a⃗) ≼^k (B, b⃗)` are expressed by adding constants to the
//! vocabulary (the distinguished-node convention of Section 6).

use crate::game::{ExistentialGame, Winner};
use kv_structures::{HomKind, Structure};

/// Decides `A ≼^k B` via the existential k-pebble game (Theorem 4.8).
///
/// ```
/// use kv_pebble::preceq;
/// use kv_structures::generators::directed_path;
///
/// // A short path embeds into a long one, so every existential-positive
/// // sentence transfers (Example 4.4)…
/// assert!(preceq(&directed_path(3), &directed_path(8), 2));
/// // …but not the other way: two pebbles walk off the short path's end.
/// assert!(!preceq(&directed_path(8), &directed_path(3), 2));
/// ```
pub fn preceq(a: &Structure, b: &Structure, k: usize) -> bool {
    ExistentialGame::solve(a, b, k, HomKind::OneToOne).winner() == Winner::Duplicator
}

/// The inequality-free variant (Remark 4.12(1)): preservation of
/// inequality-free `L^k` sentences, decided by the plain-homomorphism game.
pub fn preceq_datalog(a: &Structure, b: &Structure, k: usize) -> bool {
    ExistentialGame::solve(a, b, k, HomKind::Homomorphism).winner() == Winner::Duplicator
}

/// An inexpressibility witness in the sense of Theorem 4.10: a pair
/// `(A_k, B_k)` with `A_k ∈ Q`, `B_k ∉ Q`, and `A_k ≼^k B_k`. Producing
/// one for every `k` proves `Q ∉ L^ω` (and a fortiori `Q` is not
/// Datalog(≠)-expressible).
#[derive(Debug)]
pub struct Witness {
    /// The structure satisfying the query.
    pub yes: Structure,
    /// The structure violating the query.
    pub no: Structure,
    /// The pebble count for which `yes ≼^k no`.
    pub k: usize,
}

impl Witness {
    /// Verifies the game half of the witness: `yes ≼^k no`. (The query
    /// membership halves are domain-specific and checked by callers.)
    pub fn verify_game(&self) -> bool {
        preceq(&self.yes, &self.no, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{ExistentialGame, Winner};
    use kv_logic::builders::path_formula;
    use kv_logic::eval::eval_closed;
    use kv_logic::formula::{Formula, Var};
    use kv_structures::generators::{
        directed_cycle, directed_path, random_digraph, two_crossing_paths, two_disjoint_paths,
    };
    use kv_structures::RelId;

    const E: RelId = RelId(0);

    #[test]
    fn preceq_is_reflexive_and_transitive_on_samples() {
        let structures = [
            directed_path(3),
            directed_path(5),
            directed_cycle(4),
            two_disjoint_paths(1),
        ];
        for s in &structures {
            assert!(preceq(s, s, 2), "reflexivity");
        }
        // Transitivity spot check: path3 ≼² path5 ≼² path8 ⇒ path3 ≼² path8.
        let (p3, p5, p8) = (directed_path(3), directed_path(5), directed_path(8));
        assert!(preceq(&p3, &p5, 2));
        assert!(preceq(&p5, &p8, 2));
        assert!(preceq(&p3, &p8, 2));
    }

    #[test]
    fn preceq_is_not_symmetric() {
        let (p3, p5) = (directed_path(3), directed_path(5));
        assert!(preceq(&p3, &p5, 2));
        assert!(!preceq(&p5, &p3, 2));
    }

    /// The defining property, sampled: if A ≼^k B then every width-≤k
    /// existential-positive sentence true in A holds in B (here: closed
    /// path formulas ∃x∃y p_n(x, y), width 3).
    #[test]
    fn sentence_preservation_sampled_k3() {
        for seed in 0..6 {
            let a = random_digraph(5, 0.3, 200 + seed).to_structure();
            let b = random_digraph(5, 0.3, 300 + seed).to_structure();
            let rel = preceq(&a, &b, 3);
            let mut all_preserved = true;
            for n in 1..=6 {
                // ∃v0 ∃v1 p_n(v0, v1): "some walk of length n exists".
                let sentence = Formula::exists_many([Var(0), Var(1)], path_formula(E, n));
                assert!(sentence.width() <= 3);
                let in_a = eval_closed(&sentence, &a);
                let in_b = eval_closed(&sentence, &b);
                if in_a && !in_b {
                    all_preserved = false;
                }
            }
            if rel {
                assert!(
                    all_preserved,
                    "A ≼³ B but a width-3 sentence is not preserved (seed {seed})"
                );
            }
            // (The converse need not hold for this small sample of
            // sentences, so nothing is asserted when `rel` is false.)
        }
    }

    /// Proposition 5.4's easy direction: a one-to-one homomorphism from A
    /// into B hands the Duplicator a win for every k.
    #[test]
    fn embedding_implies_preceq_all_k() {
        let a = directed_path(3);
        let b = directed_path(9);
        for k in 1..=3 {
            assert!(preceq(&a, &b, k), "k = {k}");
        }
    }

    #[test]
    fn datalog_variant_is_coarser() {
        // C4 -> C2: plain-homomorphism preservation holds for every k,
        // one-to-one fails from 3 pebbles on.
        let c4 = directed_cycle(4);
        let c2 = directed_cycle(2);
        assert!(preceq_datalog(&c4, &c2, 3));
        assert!(!preceq(&c4, &c2, 3));
    }

    #[test]
    fn witness_object_checks_game_half() {
        let w = Witness {
            yes: two_disjoint_paths(1),
            no: two_crossing_paths(1),
            k: 1,
        };
        assert!(w.verify_game());
        let w3 = Witness {
            yes: two_disjoint_paths(1),
            no: two_crossing_paths(1),
            k: 3,
        };
        assert!(
            !w3.verify_game(),
            "Example 4.5: Spoiler wins with 3 pebbles"
        );
    }

    #[test]
    fn winner_consistency_between_apis() {
        let a = directed_path(4);
        let b = directed_path(6);
        let g = ExistentialGame::solve(&a, &b, 2, kv_structures::HomKind::OneToOne);
        assert_eq!(g.winner() == Winner::Duplicator, preceq(&a, &b, 2));
    }
}
