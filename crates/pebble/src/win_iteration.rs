//! Proposition 5.3, literally: the `Win_k(A, B, c, m)` value iteration.
//!
//! The paper's proof decides the game by computing, for increasing `m`,
//! whether Player I can win from configuration `c` within `m` rounds, up
//! to the configuration-count bound `(n + 1)^{2k}`. This module implements
//! that algorithm directly (as an *ablation* partner for the
//! deletion-fixpoint solver in [`crate::game`], which computes the same
//! winner by running the co-induction the other way). The two are
//! differential-tested against each other; the fixpoint solver is the one
//! with strategy extraction and is what everything else uses.
//!
//! Configurations are set-based partial maps (the constant pairs are
//! implicit): a Spoiler move either *removes* one pebbled pair or *places*
//! a pebble on an element `a` of `A`, whereupon the Duplicator must choose
//! an image `b`; if no choice yields a valid configuration the Duplicator
//! loses immediately.

use kv_structures::hom::{extension_ok, TupleIndex};
use kv_structures::{HomKind, PartialMap, Structure};
use std::collections::HashMap;

use crate::game::{ExistentialGame, Winner};

/// Decides the existential k-pebble game by the paper's bounded win
/// recursion. Returns the winner and the number of value-iteration rounds
/// until stabilization.
pub fn solve_by_win_iteration(
    a: &Structure,
    b: &Structure,
    k: usize,
    kind: HomKind,
) -> (Winner, usize) {
    let (winner, rounds, _) = solve_with_verdicts(a, b, k, kind);
    (winner, rounds)
}

/// Like [`solve_by_win_iteration`], additionally returning the per-position
/// verdict: `true` iff the **Spoiler** wins from that configuration. The
/// complement of the Spoiler-won set is exactly the maximal family of
/// Definition 4.7 — cross-checked against the deletion-fixpoint solver in
/// integration tests.
pub fn solve_with_verdicts(
    a: &Structure,
    b: &Structure,
    k: usize,
    kind: HomKind,
) -> (Winner, usize, HashMap<PartialMap, bool>) {
    assert!(k >= 1);
    assert_eq!(a.vocabulary(), b.vocabulary());
    let index_a = TupleIndex::build(a);

    // Root configuration from the constants.
    let mut root = PartialMap::new();
    for (&ca, &cb) in a.constant_values().iter().zip(b.constant_values()) {
        if root.get(ca) == Some(cb) {
            continue;
        }
        if !extension_ok(&root, ca, cb, &index_a, b, kind) {
            return (Winner::Spoiler, 0, HashMap::new());
        }
        root.insert(ca, cb);
    }
    let constant_count = root.len();

    // Enumerate all valid configurations level by level.
    let mut all: Vec<PartialMap> = vec![root.clone()];
    let mut ids: HashMap<PartialMap, usize> = HashMap::new();
    ids.insert(root.clone(), 0);
    let mut frontier = vec![0usize];
    for _ in 0..k {
        let mut next = Vec::new();
        for &fid in &frontier {
            let f = all[fid].clone();
            for ax in a.elements() {
                if f.contains_domain(ax) {
                    continue;
                }
                for bx in b.elements() {
                    if extension_ok(&f, ax, bx, &index_a, b, kind) {
                        let child = f.extended(ax, bx);
                        if !ids.contains_key(&child) {
                            ids.insert(child.clone(), all.len());
                            next.push(all.len());
                            all.push(child);
                        }
                    }
                }
            }
        }
        frontier = next;
    }

    // Value iteration: spoiler_wins[c] = Player I wins from c within the
    // current round bound. Iterate to stability (bounded by |configs|).
    let n_configs = all.len();
    let mut spoiler_wins = vec![false; n_configs];
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for id in 0..n_configs {
            if spoiler_wins[id] {
                continue;
            }
            let f = &all[id];
            let size = f.len() - constant_count;
            // Move 1: remove a pebble (only helpful if the smaller config
            // is Spoiler-won).
            let mut wins = false;
            for &(ax, _) in f.pairs() {
                // Skip constant pairs: they are never pebbles. A constant
                // pair's domain element may coincide with a pebbled one;
                // removing the pebble then leaves the pair in place, a
                // no-op we can ignore.
                if is_constant_pair(a, ax) {
                    continue;
                }
                let smaller = f.without(ax);
                if spoiler_wins[ids[&smaller]] {
                    wins = true;
                    break;
                }
            }
            // Move 2: place a pebble (if one is free): wins if EVERY valid
            // reply is Spoiler-won (no valid reply = immediate win).
            if !wins && size < k {
                'place: for ax in a.elements() {
                    if f.contains_domain(ax) {
                        continue;
                    }
                    let mut all_bad = true;
                    for bx in b.elements() {
                        if extension_ok(f, ax, bx, &index_a, b, kind) {
                            let child = f.extended(ax, bx);
                            if !spoiler_wins[ids[&child]] {
                                all_bad = false;
                                break;
                            }
                        }
                    }
                    if all_bad {
                        wins = true;
                        break 'place;
                    }
                }
            }
            if wins {
                spoiler_wins[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let winner = if spoiler_wins[ids[&root]] {
        Winner::Spoiler
    } else {
        Winner::Duplicator
    };
    let verdicts = ids
        .into_iter()
        .map(|(map, id)| (map, spoiler_wins[id]))
        .collect();
    (winner, rounds, verdicts)
}

fn is_constant_pair(a: &Structure, ax: kv_structures::Element) -> bool {
    a.constant_values().contains(&ax)
}

/// Decides the game by **predecessor-indexed worklist propagation** on the
/// shared [`crate::arena`] — the production path, exposed here with the
/// same verdict-map signature as [`solve_with_verdicts`] so the two can be
/// differential-tested configuration by configuration.
///
/// Why it computes the same fixpoint as the paper's bounded `Win_k`
/// recursion: value iteration repeatedly sweeps **all** configurations,
/// marking `c` Spoiler-won once some challenge at `c` has every reply
/// Spoiler-won (or once a sub-configuration is); the worklist instead
/// *starts* from the base failures (a challenge with zero valid replies)
/// and pushes each death along reverse edges, decrementing per-challenge
/// live-reply counters. A configuration dies under one regime iff it dies
/// under the other — both compute the least fixpoint of the same monotone
/// operator — but the worklist touches each arena edge O(1) times,
/// `O(edges)` total, instead of `O(rounds × configs × moves)`.
pub fn solve_by_worklist(
    a: &Structure,
    b: &Structure,
    k: usize,
    kind: HomKind,
) -> (Winner, HashMap<PartialMap, bool>) {
    let game = ExistentialGame::solve(a, b, k, kind);
    let winner = game.winner();
    if game.root_invalid() {
        return (winner, HashMap::new());
    }
    let verdicts = (0..game.arena_size())
        .map(|id| {
            (
                game.config_map(id).clone(),
                // `true` iff the Spoiler wins = the config died.
                !game.is_alive(id),
            )
        })
        .collect();
    (winner, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::ExistentialGame;
    use kv_structures::generators::{
        directed_path, random_digraph, two_crossing_paths, two_disjoint_paths,
    };

    #[test]
    fn agrees_with_fixpoint_solver_on_paths() {
        for (m, n, k) in [(3usize, 6usize, 2usize), (6, 3, 2), (4, 4, 2), (5, 7, 3)] {
            let a = directed_path(m);
            let b = directed_path(n);
            let (winner, _) = solve_by_win_iteration(&a, &b, k, HomKind::OneToOne);
            let fixpoint = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne).winner();
            assert_eq!(winner, fixpoint, "P{m} -> P{n}, k={k}");
        }
    }

    #[test]
    fn agrees_on_example_4_5() {
        let a = two_disjoint_paths(1);
        let b = two_crossing_paths(1);
        for k in 1..=3 {
            let (winner, _) = solve_by_win_iteration(&a, &b, k, HomKind::OneToOne);
            let fixpoint = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne).winner();
            assert_eq!(winner, fixpoint, "k={k}");
        }
    }

    #[test]
    fn agrees_on_random_pairs_both_kinds() {
        for seed in 0..12 {
            let a = random_digraph(5, 0.3, 5000 + seed).to_structure();
            let b = random_digraph(5, 0.3, 6000 + seed).to_structure();
            for kind in [HomKind::OneToOne, HomKind::Homomorphism] {
                let (winner, _) = solve_by_win_iteration(&a, &b, 2, kind);
                let fixpoint = ExistentialGame::solve(&a, &b, 2, kind).winner();
                assert_eq!(winner, fixpoint, "seed {seed}, kind {kind:?}");
            }
        }
    }

    #[test]
    fn agrees_with_constants() {
        for seed in 0..8 {
            let mut ga = random_digraph(5, 0.3, 7000 + seed);
            ga.set_distinguished(vec![0, 4]);
            let mut gb = random_digraph(5, 0.3, 7100 + seed);
            gb.set_distinguished(vec![1, 3]);
            let a = ga.to_structure();
            let b = gb.to_structure();
            let (winner, _) = solve_by_win_iteration(&a, &b, 2, HomKind::OneToOne);
            let fixpoint = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne).winner();
            assert_eq!(winner, fixpoint, "seed {seed}");
        }
    }

    /// The worklist solver and the naive value iteration agree — winner
    /// and per-configuration verdict — on random digraph pairs for
    /// k ∈ {1, 2, 3} and both homomorphism kinds.
    #[test]
    fn worklist_matches_value_iteration_per_config() {
        for k in 1..=3usize {
            for seed in 0..6 {
                let a = random_digraph(4, 0.35, 8000 + seed).to_structure();
                let b = random_digraph(4, 0.3, 8100 + seed).to_structure();
                for kind in [HomKind::OneToOne, HomKind::Homomorphism] {
                    let (w_naive, _, naive) = solve_with_verdicts(&a, &b, k, kind);
                    let (w_fast, fast) = solve_by_worklist(&a, &b, k, kind);
                    assert_eq!(w_naive, w_fast, "winner, seed {seed}, k={k}, {kind:?}");
                    assert_eq!(
                        naive.len(),
                        fast.len(),
                        "arena size, seed {seed}, k={k}, {kind:?}"
                    );
                    for (map, spoiler_wins) in &naive {
                        assert_eq!(
                            fast.get(map),
                            Some(spoiler_wins),
                            "verdict on {map:?}, seed {seed}, k={k}, {kind:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn round_count_is_small_in_practice() {
        let a = directed_path(8);
        let b = directed_path(4);
        let (winner, rounds) = solve_by_win_iteration(&a, &b, 2, HomKind::OneToOne);
        assert_eq!(winner, Winner::Spoiler);
        // The bound in the paper is (n+1)^{2k}; stabilization is far
        // faster (a handful of sweeps).
        assert!(rounds <= 16, "rounds = {rounds}");
    }
}
