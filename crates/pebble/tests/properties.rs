//! Randomized property tests for the pebble-game machinery, driven by the
//! in-tree [`SplitMix64`] generator.

use kv_pebble::cnf::{CnfFormula, Lit};
use kv_pebble::play::validate_by_play;
use kv_pebble::{preceq, CnfGame, ExistentialGame, Winner};
use kv_structures::hom::find_homomorphism;
use kv_structures::rng::SplitMix64;
use kv_structures::{Digraph, HomKind};

fn random_case_digraph(max_n: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(2usize..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..(n * n / 2).min(14) + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        g.add_edge(u, v);
    }
    g
}

fn random_cnf(rng: &mut SplitMix64) -> CnfFormula {
    let vars = rng.gen_range(1usize..4);
    let clause_count = rng.gen_range(1usize..5);
    let clauses = (0..clause_count)
        .map(|_| {
            let len = rng.gen_range(1usize..4);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(0usize..vars);
                    if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect()
        })
        .collect();
    CnfFormula::new(vars, clauses)
}

/// Solving is deterministic and consistent with its own strategies under
/// actual play.
#[test]
fn solver_verdict_survives_play() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let sa = random_case_digraph(5, &mut rng).to_structure();
        let sb = random_case_digraph(5, &mut rng).to_structure();
        assert!(
            validate_by_play(&sa, &sb, 2, HomKind::OneToOne, 80, 0..2),
            "seed {seed}"
        );
    }
}

/// A total one-to-one homomorphism implies the Duplicator wins for every k
/// (Proposition 5.4's easy half).
#[test]
fn embedding_implies_duplicator() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let sa = random_case_digraph(4, &mut rng).to_structure();
        let sb = random_case_digraph(5, &mut rng).to_structure();
        if find_homomorphism(&sa, &sb, HomKind::OneToOne, false).is_some() {
            for k in 1..=2 {
                assert!(
                    preceq(&sa, &sb, k),
                    "seed {seed}: embedding exists but Spoiler wins k={k}"
                );
            }
        }
    }
}

/// ≼^k is antitone in k: more pebbles only help the Spoiler.
#[test]
fn preceq_antitone_in_k() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(2000 + seed);
        let sa = random_case_digraph(4, &mut rng).to_structure();
        let sb = random_case_digraph(4, &mut rng).to_structure();
        let verdicts: Vec<bool> = (1..=3).map(|k| preceq(&sa, &sb, k)).collect();
        for w in verdicts.windows(2) {
            assert!(!w[1] || w[0], "seed {seed}: not antitone: {verdicts:?}");
        }
    }
}

/// The plain-homomorphism game is coarser than the one-to-one game.
#[test]
fn datalog_game_coarser() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(3000 + seed);
        let sa = random_case_digraph(4, &mut rng).to_structure();
        let sb = random_case_digraph(4, &mut rng).to_structure();
        for k in 1..=2 {
            let one = ExistentialGame::solve(&sa, &sb, k, HomKind::OneToOne).winner();
            let plain = ExistentialGame::solve(&sa, &sb, k, HomKind::Homomorphism).winner();
            if one == Winner::Duplicator {
                assert_eq!(plain, Winner::Duplicator, "seed {seed}, k={k}");
            }
        }
    }
}

/// The surviving family really has the forth property: every alive
/// configuration below size k answers every element.
#[test]
fn family_forth_property() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(4000 + seed);
        let sa = random_case_digraph(4, &mut rng).to_structure();
        let sb = random_case_digraph(4, &mut rng).to_structure();
        let game = ExistentialGame::solve(&sa, &sb, 2, HomKind::OneToOne);
        if game.winner() == Winner::Duplicator {
            let root = game.config_id(&kv_structures::PartialMap::new()).unwrap();
            assert!(game.is_alive(root));
            for x in sa.elements() {
                let (y, child) = game.duplicator_reply(root, x).expect("forth");
                assert!(game.is_alive(child), "seed {seed}");
                // And one level deeper from that child.
                for x2 in sa.elements() {
                    let reply = game.duplicator_reply(child, x2);
                    assert!(reply.is_some(), "seed {seed}: forth fails at size-1");
                    let _ = y;
                }
            }
        }
    }
}

/// CNF games: satisfiable formulas are Duplicator wins for every k, and
/// the k-game is antitone in k.
#[test]
fn cnf_game_laws() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(5000 + seed);
        let f = random_cnf(&mut rng);
        let sat = f.brute_force_sat().is_some();
        let verdicts: Vec<Winner> = (1..=3).map(|k| CnfGame::solve(&f, k).winner()).collect();
        if sat {
            for v in &verdicts {
                assert_eq!(*v, Winner::Duplicator, "seed {seed}");
            }
        }
        for w in verdicts.windows(2) {
            assert!(
                !(w[0] == Winner::Spoiler && w[1] == Winner::Duplicator),
                "seed {seed}: CNF game verdicts not antitone: {verdicts:?}"
            );
        }
        // Unsat with m variables: Spoiler wins with m+1 pebbles.
        if !sat {
            let km = f.var_count() + 1;
            assert_eq!(
                CnfGame::solve(&f, km).winner(),
                Winner::Spoiler,
                "seed {seed}"
            );
        }
    }
}
