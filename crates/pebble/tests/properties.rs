//! Property-based tests for the pebble-game machinery.

use kv_pebble::cnf::{CnfFormula, Lit};
use kv_pebble::play::validate_by_play;
use kv_pebble::{preceq, CnfGame, ExistentialGame, Winner};
use kv_structures::hom::find_homomorphism;
use kv_structures::{Digraph, HomKind};
use proptest::prelude::*;

fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * n / 2).min(14)).prop_map(
            move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    g.add_edge(u, v);
                }
                g
            },
        )
    })
}

fn cnf_strategy() -> impl Strategy<Value = CnfFormula> {
    (1usize..=3).prop_flat_map(|vars| {
        proptest::collection::vec(
            proptest::collection::vec((0..vars, proptest::bool::ANY), 1..=3),
            1..=4,
        )
        .prop_map(move |clauses| {
            let clauses = clauses
                .into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                        .collect()
                })
                .collect();
            CnfFormula::new(vars, clauses)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Solving is deterministic and consistent with its own strategies
    /// under actual play.
    #[test]
    fn solver_verdict_survives_play(a in digraph_strategy(5), b in digraph_strategy(5)) {
        let sa = a.to_structure();
        let sb = b.to_structure();
        prop_assert!(validate_by_play(&sa, &sb, 2, HomKind::OneToOne, 80, 0..2));
    }

    /// A total one-to-one homomorphism implies the Duplicator wins for
    /// every k (Proposition 5.4's easy half).
    #[test]
    fn embedding_implies_duplicator(a in digraph_strategy(4), b in digraph_strategy(5)) {
        let sa = a.to_structure();
        let sb = b.to_structure();
        if find_homomorphism(&sa, &sb, HomKind::OneToOne, false).is_some() {
            for k in 1..=2 {
                prop_assert!(preceq(&sa, &sb, k), "embedding exists but Spoiler wins k={k}");
            }
        }
    }

    /// ≼^k is antitone in k: more pebbles only help the Spoiler.
    #[test]
    fn preceq_antitone_in_k(a in digraph_strategy(4), b in digraph_strategy(4)) {
        let sa = a.to_structure();
        let sb = b.to_structure();
        let verdicts: Vec<bool> = (1..=3).map(|k| preceq(&sa, &sb, k)).collect();
        for w in verdicts.windows(2) {
            prop_assert!(!w[1] || w[0], "verdicts not antitone: {:?}", verdicts);
        }
    }

    /// The plain-homomorphism game is coarser than the one-to-one game.
    #[test]
    fn datalog_game_coarser(a in digraph_strategy(4), b in digraph_strategy(4)) {
        let sa = a.to_structure();
        let sb = b.to_structure();
        for k in 1..=2 {
            let one = ExistentialGame::solve(&sa, &sb, k, HomKind::OneToOne).winner();
            let plain = ExistentialGame::solve(&sa, &sb, k, HomKind::Homomorphism).winner();
            if one == Winner::Duplicator {
                prop_assert_eq!(plain, Winner::Duplicator);
            }
        }
    }

    /// The surviving family really has the forth property: every alive
    /// configuration below size k answers every element.
    #[test]
    fn family_forth_property(a in digraph_strategy(4), b in digraph_strategy(4)) {
        let sa = a.to_structure();
        let sb = b.to_structure();
        let game = ExistentialGame::solve(&sa, &sb, 2, HomKind::OneToOne);
        if game.winner() == Winner::Duplicator {
            let root = game.config_id(&kv_structures::PartialMap::new()).unwrap();
            prop_assert!(game.is_alive(root));
            for x in sa.elements() {
                let (y, child) = game.duplicator_reply(root, x).expect("forth");
                prop_assert!(game.is_alive(child));
                // And one level deeper from that child.
                for x2 in sa.elements() {
                    let reply = game.duplicator_reply(child, x2);
                    prop_assert!(reply.is_some(), "forth fails at size-1 config");
                    let _ = y;
                }
            }
        }
    }

    /// CNF games: satisfiable formulas are Duplicator wins for every k,
    /// and the k-game is antitone in k.
    #[test]
    fn cnf_game_laws(f in cnf_strategy()) {
        let sat = f.brute_force_sat().is_some();
        let verdicts: Vec<Winner> = (1..=3).map(|k| CnfGame::solve(&f, k).winner()).collect();
        if sat {
            for v in &verdicts {
                prop_assert_eq!(*v, Winner::Duplicator);
            }
        }
        for w in verdicts.windows(2) {
            prop_assert!(
                !(w[0] == Winner::Spoiler && w[1] == Winner::Duplicator),
                "CNF game verdicts not antitone: {:?}",
                verdicts
            );
        }
        // Unsat with m variables: Spoiler wins with m+1 pebbles.
        if !sat {
            let km = f.var_count() + 1;
            prop_assert_eq!(CnfGame::solve(&f, km).winner(), Winner::Spoiler);
        }
    }
}
