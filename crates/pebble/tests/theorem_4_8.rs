//! The maximal family of Definition 4.7, two independent ways.
//!
//! Theorem 4.8's winning families coincide with the set of positions from
//! which the Duplicator can survive forever: the survivable set is closed
//! under subfunctions (the Spoiler may lift pebbles) and has the forth
//! property (the Spoiler may place one), and conversely any such family is
//! a survival strategy. The deletion-fixpoint solver computes the family
//! top-down; the paper's `Win_k` value iteration computes the
//! Spoiler-winnable set bottom-up. They must be exact complements,
//! configuration by configuration.
//!
//! (Note the subtlety this test originally tripped over: `(A, a⃗) ≼^k
//! (B, b⃗)` of Definition 4.1 pins the tuple *within* the `k` variables —
//! it is **not** the same as `≼^k` of the tuple-expanded structures, whose
//! constants come for free on top of `k` fresh pebbles. A full-size
//! configuration like `{0↦0, 2↦3}` of `P3 → P4` is survivable with `k = 2`
//! — the Spoiler must lift a pebble before probing the midpoint — even
//! though the expanded structures violate a two-variable sentence with
//! both constants pinned.)

use kv_pebble::win_iteration::solve_with_verdicts;
use kv_pebble::ExistentialGame;
use kv_structures::{Digraph, HomKind};

fn families_complement(ga: Digraph, gb: Digraph, k: usize, kind: HomKind) {
    let a = ga.to_structure();
    let b = gb.to_structure();
    let fixpoint = ExistentialGame::solve(&a, &b, k, kind);
    let (winner, _, verdicts) = solve_with_verdicts(&a, &b, k, kind);
    assert_eq!(winner, fixpoint.winner());
    assert!(!verdicts.is_empty());
    for (map, spoiler_wins) in &verdicts {
        let id = fixpoint
            .config_id(map)
            .expect("both solvers enumerate the same configurations");
        assert_eq!(
            fixpoint.is_alive(id),
            !spoiler_wins,
            "solvers disagree on {map:?}"
        );
    }
    // Same arena in both directions.
    assert_eq!(verdicts.len(), fixpoint.arena_size());
}

#[test]
fn family_complement_on_paths() {
    let mut ga = Digraph::new(3);
    ga.add_edge(0, 1);
    ga.add_edge(1, 2);
    let mut gb = Digraph::new(4);
    gb.add_edge(0, 1);
    gb.add_edge(1, 2);
    gb.add_edge(2, 3);
    families_complement(ga, gb, 2, HomKind::OneToOne);
}

#[test]
fn family_complement_on_mixed_graphs() {
    let mut ga = Digraph::new(3);
    ga.add_edge(0, 1);
    ga.add_edge(1, 2);
    ga.add_edge(2, 0); // a 3-cycle
    let mut gb = Digraph::new(3);
    gb.add_edge(0, 1);
    gb.add_edge(1, 2); // a path
    families_complement(ga.clone(), gb.clone(), 2, HomKind::OneToOne);
    families_complement(gb, ga, 2, HomKind::OneToOne);
}

#[test]
fn family_complement_on_random_pairs_both_kinds() {
    for seed in 0..6 {
        let ga = kv_structures::generators::random_digraph(4, 0.4, 9000 + seed);
        let gb = kv_structures::generators::random_digraph(4, 0.35, 9100 + seed);
        for kind in [HomKind::OneToOne, HomKind::Homomorphism] {
            families_complement(ga.clone(), gb.clone(), 2, kind);
        }
    }
}

#[test]
fn family_complement_with_constants() {
    let mut ga = kv_structures::generators::random_digraph(4, 0.4, 9509);
    ga.set_distinguished(vec![0, 3]);
    let mut gb = kv_structures::generators::random_digraph(5, 0.35, 9510);
    gb.set_distinguished(vec![1, 4]);
    families_complement(ga, gb, 2, HomKind::OneToOne);
}

/// The concrete subtlety from the module docs, pinned: the full-size
/// configuration {0↦0, 2↦3} of P3 → P4 is *survivable* with two pebbles.
#[test]
fn full_size_configuration_survivable_despite_pinned_violation() {
    let mut ga = Digraph::new(3);
    ga.add_edge(0, 1);
    ga.add_edge(1, 2);
    let mut gb = Digraph::new(4);
    gb.add_edge(0, 1);
    gb.add_edge(1, 2);
    gb.add_edge(2, 3);
    let a = ga.to_structure();
    let b = gb.to_structure();
    let game = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
    let map = kv_structures::PartialMap::from_pairs([(0, 0), (2, 3)]);
    let id = game.config_id(&map).unwrap();
    assert!(game.is_alive(id));
    // Yet with the pair pinned as constants and two *fresh* pebbles, the
    // Spoiler wins (he probes the midpoint with a pebble to spare): the
    // two relations genuinely differ.
    let mut ea = ga.clone();
    ea.set_distinguished(vec![0, 2]);
    let mut eb = gb.clone();
    eb.set_distinguished(vec![0, 3]);
    let sea = ea.to_structure();
    let seb = eb.to_structure();
    let expanded = ExistentialGame::solve(&sea, &seb, 2, HomKind::OneToOne);
    assert_eq!(expanded.winner(), kv_pebble::Winner::Spoiler);
}
