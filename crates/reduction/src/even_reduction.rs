//! Corollary 6.8: the even simple path query is not expressible in `L^ω`.
//!
//! The proof reduces *two node-disjoint paths* to *even simple path*:
//! given `(G, s1, s2, s3, s4)`, the graph `G*` doubles every edge (each
//! `u → v` becomes `u → w → v` with a fresh midpoint `w`), adds the edge
//! `s2 → s3` and a fresh sink `t` with the edge `s4 → t`. Then `G` has
//! node-disjoint `s1→s2` / `s3→s4` paths iff `G*` has a simple path of
//! even length from `s1` to `t` — doubling makes every `G`-path
//! even-length in `G*`, and the two odd extras (`s2→s3`, `s4→t`) force a
//! genuine double crossing.

use kv_structures::Digraph;

/// The result of the `G ↦ G*` construction.
#[derive(Debug, Clone)]
pub struct EvenPathInstance {
    /// The doubled graph.
    pub graph: Digraph,
    /// The source `s1` (carried over).
    pub s1: u32,
    /// The fresh sink `t`.
    pub t: u32,
    /// Midpoint node introduced for each original edge.
    pub midpoints: Vec<(u32, u32, u32)>,
}

/// Builds `G*` from `(g, s1, s2, s3, s4)`.
pub fn even_path_instance(g: &Digraph, s: [u32; 4]) -> EvenPathInstance {
    let mut out = Digraph::new(g.node_count());
    let mut midpoints = Vec::with_capacity(g.edge_count());
    for (u, v) in g.edges() {
        let w = out.add_node();
        out.add_edge(u, w);
        out.add_edge(w, v);
        midpoints.push((u, v, w));
    }
    out.add_edge(s[1], s[2]);
    let t = out.add_node();
    out.add_edge(s[3], t);
    EvenPathInstance {
        graph: out,
        s1: s[0],
        t,
        midpoints,
    }
}

/// Transports a disjoint-paths witness of `G` into an even simple path of
/// `G*` (the constructive direction).
pub fn transport_witness(instance: &EvenPathInstance, p1: &[u32], p2: &[u32]) -> Vec<u32> {
    let double = |path: &[u32], out: &mut Vec<u32>| {
        for w in path.windows(2) {
            // Infallible for genuine witnesses: every consecutive pair is
            // an edge of the original graph, and G* carries its midpoint.
            #[allow(clippy::expect_used)]
            let mid = instance
                .midpoints
                .iter()
                .find(|&&(u, v, _)| u == w[0] && v == w[1])
                .map(|&(_, _, m)| m)
                .expect("edge exists in the original graph");
            out.push(mid);
            out.push(w[1]);
        }
    };
    let mut path = vec![p1[0]];
    double(p1, &mut path);
    path.push(p2[0]); // the s2 -> s3 edge
    double(p2, &mut path);
    path.push(instance.t); // the s4 -> t edge
    path
}

/// The structures of Corollary 6.8's game argument: `(A*, s1, t)` and
/// `(B*, s1, t)` built from a four-constant witness pair, with the
/// bookkeeping needed to transport a Duplicator strategy.
pub struct DoubledWitness {
    /// `A*` as a structure over `{E/2, s1, t}`.
    pub a: kv_structures::Structure,
    /// `B*` likewise.
    pub b: kv_structures::Structure,
    a_inst: EvenPathInstance,
    b_inst: EvenPathInstance,
    /// Number of original nodes in A (midpoints and t follow).
    a_old: usize,
    b_old: usize,
}

impl DoubledWitness {
    /// Applies the `G ↦ G*` construction to both sides of a witness pair
    /// whose structures carry four constants `(s1, s2, s3, s4)`.
    pub fn build(a: &kv_structures::Structure, b: &kv_structures::Structure) -> Self {
        assert_eq!(a.constant_values().len(), 4);
        assert_eq!(b.constant_values().len(), 4);
        let ga = Digraph::from_structure(a);
        let gb = Digraph::from_structure(b);
        // Infallible: lengths asserted to be 4 above.
        #[allow(clippy::unwrap_used)]
        let ca: [u32; 4] = a.constant_values().try_into().unwrap();
        #[allow(clippy::unwrap_used)]
        let cb: [u32; 4] = b.constant_values().try_into().unwrap();
        let a_inst = even_path_instance(&ga, ca);
        let b_inst = even_path_instance(&gb, cb);
        let vocab = std::sync::Arc::new(kv_structures::Vocabulary::graph_with_constants(2));
        let to_structure = |inst: &EvenPathInstance| {
            let mut g = inst.graph.clone();
            g.set_distinguished(vec![inst.s1, inst.t]);
            g.to_structure_with(std::sync::Arc::clone(&vocab))
        };
        Self {
            a: to_structure(&a_inst),
            b: to_structure(&b_inst),
            a_old: ga.node_count(),
            b_old: gb.node_count(),
            a_inst,
            b_inst,
        }
    }

    fn classify_a(&self, v: u32) -> DoubledNode {
        classify(&self.a_inst, self.a_old, v)
    }

    fn classify_b(&self, v: u32) -> DoubledNode {
        classify(&self.b_inst, self.b_old, v)
    }

    fn b_midpoint(&self, u: u32, v: u32) -> Option<u32> {
        self.b_inst
            .midpoints
            .iter()
            .find(|&&(x, y, _)| x == u && y == v)
            .map(|&(_, _, m)| m)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DoubledNode {
    /// A node of the original graph.
    Original(u32),
    /// The midpoint of original edge `(u, v)`.
    Midpoint(u32, u32),
    /// The fresh sink `t`.
    Sink,
}

fn classify(inst: &EvenPathInstance, old: usize, v: u32) -> DoubledNode {
    if v == inst.t {
        return DoubledNode::Sink;
    }
    if (v as usize) < old {
        return DoubledNode::Original(v);
    }
    let (u, w, _) = inst.midpoints[(v as usize) - old];
    DoubledNode::Midpoint(u, w)
}

/// Corollary 6.8's strategy transport: a Duplicator for the k-pebble game
/// on `(A*, B*)` that consults an inner Duplicator for the 2k-pebble game
/// on `(A, B)` — each `A*`-pebble on an original node costs one auxiliary
/// pebble, each midpoint pebble costs two (its edge's endpoints), and the
/// sink is mirrored directly.
pub struct DoublingDuplicator<'w, D> {
    /// The doubled structures.
    pub witness: &'w DoubledWitness,
    /// The inner strategy on the original pair (playing with `2k` slots).
    pub inner: D,
}

impl<D: kv_pebble::play::DuplicatorStrategy> kv_pebble::play::DuplicatorStrategy
    for DoublingDuplicator<'_, D>
{
    fn respond(
        &mut self,
        position: &kv_pebble::play::GamePosition,
        slot: usize,
        a: u32,
    ) -> Option<u32> {
        let w = self.witness;
        // Reconstruct the auxiliary 2k-position from the doubled pairs.
        let k = position.slots.len();
        let mut aux = kv_pebble::play::GamePosition::new(2 * k);
        for (i, s) in position.slots.iter().enumerate() {
            let Some((pa, pb)) = s else { continue };
            match (w.classify_a(*pa), w.classify_b(*pb)) {
                (DoubledNode::Original(x), DoubledNode::Original(y)) => {
                    aux.slots[2 * i] = Some((x, y));
                }
                (DoubledNode::Midpoint(x1, x2), DoubledNode::Midpoint(y1, y2)) => {
                    aux.slots[2 * i] = Some((x1, y1));
                    aux.slots[2 * i + 1] = Some((x2, y2));
                }
                (DoubledNode::Sink, DoubledNode::Sink) => {}
                _ => return None, // incoherent position; concede
            }
        }
        match w.classify_a(a) {
            DoubledNode::Sink => Some(w.b_inst.t),
            DoubledNode::Original(x) => {
                let y = self.inner.respond(&aux, 2 * slot, x)?;
                Some(y)
            }
            DoubledNode::Midpoint(x1, x2) => {
                let y1 = self.inner.respond(&aux, 2 * slot, x1)?;
                aux.slots[2 * slot] = Some((x1, y1));
                let y2 = self.inner.respond(&aux, 2 * slot + 1, x2)?;
                w.b_midpoint(y1, y2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_homeo::even_path::even_simple_path;
    use kv_homeo::{brute_force_homeomorphism, PatternSpec};
    use kv_structures::generators::random_digraph;

    fn two_disjoint(g: &Digraph, s: [u32; 4]) -> bool {
        brute_force_homeomorphism(&PatternSpec::two_disjoint_edges(), g, &s)
    }

    #[test]
    fn reduction_equivalence_on_random_graphs() {
        for seed in 0..25 {
            let g = random_digraph(7, 0.25, 3000 + seed);
            let s = [0u32, 1, 2, 3];
            let inst = even_path_instance(&g, s);
            let left = two_disjoint(&g, s);
            let right = even_simple_path(&inst.graph, inst.s1, inst.t);
            assert_eq!(left, right, "seed {}", 3000 + seed);
        }
    }

    #[test]
    fn reduction_equivalence_on_denser_graphs() {
        for seed in 0..10 {
            let g = random_digraph(6, 0.45, 3100 + seed);
            let s = [0u32, 1, 2, 3];
            let inst = even_path_instance(&g, s);
            assert_eq!(
                two_disjoint(&g, s),
                even_simple_path(&inst.graph, inst.s1, inst.t),
                "seed {}",
                3100 + seed
            );
        }
    }

    #[test]
    fn witness_transport_produces_even_simple_path() {
        // Hand instance with disjoint routes.
        let mut g = Digraph::new(6);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 5);
        g.add_edge(5, 3);
        let s = [0u32, 1, 2, 3];
        let inst = even_path_instance(&g, s);
        let path = transport_witness(&inst, &[0, 4, 1], &[2, 5, 3]);
        // Check: simple, even length, endpoints s1 -> t, edges exist.
        assert_eq!(path.first(), Some(&inst.s1));
        assert_eq!(path.last(), Some(&inst.t));
        assert_eq!((path.len() - 1) % 2, 0, "even length");
        for w in path.windows(2) {
            assert!(inst.graph.has_edge(w[0], w[1]), "{} -> {}", w[0], w[1]);
        }
        let mut sorted = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), path.len(), "simple");
    }

    #[test]
    fn doubled_witness_separates_even_path_query() {
        // From the Theorem 6.6 witness at k = 1: A* has an even simple
        // path s1 → t (transported witness), and the base B has no
        // disjoint paths so (by the reduction equivalence) B* has none.
        let w = crate::thm66::Thm66Witness::new(1);
        let d = DoubledWitness::build(&w.a, &w.b);
        // A*: transport the trivial disjoint-path witness.
        let ga = kv_structures::Digraph::from_structure(&w.a);
        let ca = w.a.constant_values();
        let top: Vec<u32> = (ca[0]..=ca[1]).collect();
        let bottom: Vec<u32> = (ca[2]..=ca[3]).collect();
        let inst = even_path_instance(&ga, [ca[0], ca[1], ca[2], ca[3]]);
        let path = transport_witness(&inst, &top, &bottom);
        assert_eq!((path.len() - 1) % 2, 0);
        for e in path.windows(2) {
            assert!(inst.graph.has_edge(e[0], e[1]));
        }
        let _ = d;
    }

    #[test]
    fn doubling_duplicator_survives_random_spoilers() {
        use kv_pebble::play::{play_game, RandomSpoiler};
        use kv_pebble::Winner;
        use kv_structures::HomKind;
        // Inner: the Theorem 6.6 simulation strategy with 2k auxiliary
        // pebbles; outer: the k-pebble game on (A*, B*).
        let w = crate::thm66::Thm66Witness::new(2);
        let d = DoubledWitness::build(&w.a, &w.b);
        for (k, seeds) in [(1usize, 10u64), (2, 6)] {
            for seed in 0..seeds {
                let mut sp = RandomSpoiler::new(d.a.universe_size(), 77 + seed);
                let mut dup = DoublingDuplicator {
                    witness: &d,
                    inner: w.duplicator(),
                };
                let outcome = play_game(&d.a, &d.b, k, HomKind::OneToOne, &mut sp, &mut dup, 250);
                assert_eq!(outcome, Winner::Duplicator, "k={k} seed {seed}");
            }
        }
    }

    #[test]
    fn doubled_solver_agreement_small() {
        // On the k=1 witness, the generic solver can decide the doubled
        // game directly: the Duplicator must win with one pebble.
        use kv_pebble::{ExistentialGame, Winner};
        use kv_structures::HomKind;
        let w = crate::thm66::Thm66Witness::new(1);
        let d = DoubledWitness::build(&w.a, &w.b);
        let g = ExistentialGame::solve(&d.a, &d.b, 1, HomKind::OneToOne);
        assert_eq!(g.winner(), Winner::Duplicator);
    }

    #[test]
    fn doubling_makes_original_edges_two_hops() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        let inst = even_path_instance(&g, [0, 1, 0, 1]);
        assert!(
            !inst.graph.has_edge(0, 1) || {
                // The only direct 0 -> 1 edge allowed is the s2 -> s3 extra,
                // which here is 1 -> 0; so 0 -> 1 must be two hops.
                false
            }
        );
        let (_, _, mid) = inst.midpoints[0];
        assert!(inst.graph.has_edge(0, mid));
        assert!(inst.graph.has_edge(mid, 1));
    }
}
