//! The reduction graph `G_φ` (Figures 2–6): SAT ⟶ two node-disjoint paths.
//!
//! For a CNF formula `φ`, `G_φ` contains one [`Switch`] per literal
//! *occurrence*, chained via `d_i → b_{i+1}` and `a_i → c_{i-1}`;
//! per-variable blocks whose two vertical columns thread the `q(g, h)`
//! paths of that literal's switches; a clause block `n_0 → … → n_L` whose
//! `j`-th segments are the `p(e, f)` paths of clause `j`'s switches; and
//! four distinguished nodes wired so that
//!
//! > `φ` is satisfiable ⟺ `G_φ` has node-disjoint simple paths
//! > `s1 → s2` and `s3 → s4`.
//!
//! The constructive direction is implemented exactly
//! ([`GPhi::witness_paths`] builds the two paths from a satisfying
//! assignment); the converse is checked by brute force on small formulas
//! (experiment E11).

use crate::switch::{Switch, SwitchPath};
use kv_pebble::cnf::{CnfFormula, Lit};
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::Digraph;

/// Metadata for one switch of the construction.
#[derive(Debug, Clone)]
pub struct SwitchInfo {
    /// The embedded gadget.
    pub switch: Switch,
    /// The literal whose occurrence this switch realizes.
    pub lit: Lit,
    /// The clause containing the occurrence.
    pub clause: usize,
}

/// The assembled reduction graph with full bookkeeping.
#[derive(Debug, Clone)]
pub struct GPhi {
    /// The source formula.
    pub formula: CnfFormula,
    /// The graph.
    pub graph: Digraph,
    /// Distinguished nodes (also set as the graph's distinguished list).
    pub s1: u32,
    /// See [`GPhi::s1`].
    pub s2: u32,
    /// See [`GPhi::s1`].
    pub s3: u32,
    /// See [`GPhi::s1`].
    pub s4: u32,
    /// Switches in chain order.
    pub switches: Vec<SwitchInfo>,
    /// Top node `T_v` of each variable block.
    pub var_tops: Vec<u32>,
    /// Bottom node `B_v` of each variable block.
    pub var_bottoms: Vec<u32>,
    /// Clause block nodes `n_0, …, n_L`.
    pub clause_nodes: Vec<u32>,
    /// Per literal (indexed by [`Lit::index`]): its column's switch ids,
    /// top to bottom.
    pub columns: Vec<Vec<usize>>,
    /// Per clause: the switch ids of its occurrences, in clause-literal
    /// order.
    pub clause_switches: Vec<Vec<usize>>,
}

impl GPhi {
    /// Builds `G_φ`.
    ///
    /// ```
    /// use kv_pebble::cnf::{clause, CnfFormula, Lit};
    /// use kv_reduction::GPhi;
    ///
    /// // x1 ∧ ¬x1 — unsatisfiable, so no disjoint path pair exists.
    /// let phi = CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])]);
    /// let g = GPhi::build(phi);
    /// assert_eq!(g.switch_count(), 2);
    /// assert!(!g.has_two_disjoint_paths_brute());
    /// ```
    pub fn build(formula: CnfFormula) -> Self {
        match Self::try_build(formula, &Governor::unlimited()) {
            Ok(gphi) => gphi,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`build`](Self::build): charges one position per graph
    /// node and one step per literal occurrence, variable block, and
    /// clause segment as the reduction graph is assembled. Construction
    /// is pure — on interrupt, call again with a fresh or relaxed
    /// governor.
    pub fn try_build(formula: CnfFormula, gov: &Governor) -> Result<Self, Interrupted> {
        gov.check()?;
        let vars = formula.var_count();
        let mut graph = Digraph::new(4);
        let (s1, s2, s3, s4) = (0u32, 1u32, 2u32, 3u32);

        // 1. One switch per occurrence, in (clause, position) order.
        let mut switches: Vec<SwitchInfo> = Vec::new();
        let mut clause_switches: Vec<Vec<usize>> = Vec::new();
        for (j, clause) in formula.clauses().iter().enumerate() {
            let mut ids = Vec::new();
            for &lit in clause {
                let before = graph.node_count();
                let switch = Switch::add_to(&mut graph);
                gov.step(1)
                    .and_then(|()| gov.charge_positions((graph.node_count() - before) as u64))?;
                ids.push(switches.len());
                switches.push(SwitchInfo {
                    switch,
                    lit,
                    clause: j,
                });
            }
            clause_switches.push(ids);
        }
        let n_switches = switches.len();

        // 2. The switch chain: d_i -> b_{i+1}, a_i -> c_{i-1}.
        for i in 0..n_switches.saturating_sub(1) {
            graph.add_edge(switches[i].switch.d(), switches[i + 1].switch.b());
            graph.add_edge(switches[i + 1].switch.a(), switches[i].switch.c());
        }

        // 3. Variable blocks with two columns each.
        let mut var_tops = Vec::with_capacity(vars);
        let mut var_bottoms = Vec::with_capacity(vars);
        let mut columns: Vec<Vec<usize>> = vec![Vec::new(); 2 * vars];
        for (id, info) in switches.iter().enumerate() {
            columns[info.lit.index()].push(id);
        }
        for v in 0..vars {
            gov.step(1).and_then(|()| gov.charge_positions(2))?;
            let top = graph.add_node();
            let bottom = graph.add_node();
            var_tops.push(top);
            var_bottoms.push(bottom);
            for lit in [Lit::pos(v), Lit::neg(v)] {
                let col = &columns[lit.index()];
                if col.is_empty() {
                    graph.add_edge(top, bottom);
                    continue;
                }
                graph.add_edge(top, switches[col[0]].switch.g());
                for w in col.windows(2) {
                    graph.add_edge(switches[w[0]].switch.h(), switches[w[1]].switch.g());
                }
                // Infallible: the empty-column case continued above.
                #[allow(clippy::unwrap_used)]
                graph.add_edge(switches[*col.last().unwrap()].switch.h(), bottom);
            }
            if v > 0 {
                graph.add_edge(var_bottoms[v - 1], top);
            }
        }

        // 4. Clause block.
        let n_clauses = formula.clause_count();
        gov.charge_positions(n_clauses as u64 + 1)?;
        let clause_nodes: Vec<u32> = (0..=n_clauses).map(|_| graph.add_node()).collect();
        for (j, ids) in clause_switches.iter().enumerate() {
            gov.step(1)?;
            for &id in ids {
                graph.add_edge(clause_nodes[j], switches[id].switch.e());
                graph.add_edge(switches[id].switch.f(), clause_nodes[j + 1]);
            }
        }

        // 5. Distinguished wiring.
        if n_switches > 0 {
            graph.add_edge(s1, switches[n_switches - 1].switch.c());
            graph.add_edge(switches[0].switch.a(), s2);
            graph.add_edge(s3, switches[0].switch.b());
            if vars > 0 {
                graph.add_edge(switches[n_switches - 1].switch.d(), var_tops[0]);
            }
        }
        if vars > 0 {
            graph.add_edge(var_bottoms[vars - 1], clause_nodes[0]);
        }
        graph.add_edge(clause_nodes[n_clauses], s4);
        graph.set_distinguished(vec![s1, s2, s3, s4]);

        Ok(Self {
            formula,
            graph,
            s1,
            s2,
            s3,
            s4,
            switches,
            var_tops,
            var_bottoms,
            clause_nodes,
            columns,
            clause_switches,
        })
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Constructs the node-disjoint witness paths from a satisfying
    /// assignment (the easy direction of the reduction). Returns
    /// `None` if the assignment does not satisfy the formula.
    ///
    /// Top path (`s1 → s2`): through `p(c,a)` of every switch whose
    /// literal is true under the assignment, `q(c,a)` otherwise.
    /// Bottom path (`s3 → s4`): `p(b,d)`/`q(b,d)` likewise, then for each
    /// variable the column of the **false** literal, then each clause
    /// segment via `p(e, f)` of a **true** occurrence.
    pub fn witness_paths(&self, assignment: &[bool]) -> Option<(Vec<u32>, Vec<u32>)> {
        if !self.formula.eval(assignment) {
            return None;
        }
        let lit_true = |l: Lit| assignment[l.var] == l.positive;
        let n = self.switch_count();
        // Top path.
        let mut top = vec![self.s1];
        for i in (0..n).rev() {
            let mode = if lit_true(self.switches[i].lit) {
                SwitchPath::PCA
            } else {
                SwitchPath::QCA
            };
            top.extend(self.switches[i].switch.path_nodes(mode));
        }
        top.push(self.s2);
        // Bottom path.
        let mut bottom = vec![self.s3];
        for info in &self.switches {
            let mode = if lit_true(info.lit) {
                SwitchPath::PBD
            } else {
                SwitchPath::QBD
            };
            bottom.extend(info.switch.path_nodes(mode));
        }
        #[allow(clippy::needless_range_loop)]
        for v in 0..self.formula.var_count() {
            bottom.push(self.var_tops[v]);
            // Column of the false literal.
            let false_lit = if assignment[v] {
                Lit::neg(v)
            } else {
                Lit::pos(v)
            };
            for &id in &self.columns[false_lit.index()] {
                bottom.extend(self.switches[id].switch.path_nodes(SwitchPath::QGH));
            }
            bottom.push(self.var_bottoms[v]);
        }
        for (j, clause) in self.formula.clauses().iter().enumerate() {
            bottom.push(self.clause_nodes[j]);
            let pos = clause.iter().position(|&l| lit_true(l))?;
            let id = self.clause_switches[j][pos];
            bottom.extend(self.switches[id].switch.path_nodes(SwitchPath::PEF));
        }
        // Infallible: clause_nodes always holds n_clauses + 1 ≥ 1 nodes.
        #[allow(clippy::unwrap_used)]
        bottom.push(*self.clause_nodes.last().unwrap());
        bottom.push(self.s4);
        Some((top, bottom))
    }

    /// Checks that `(p1, p2)` are node-disjoint simple paths `s1 → s2`
    /// and `s3 → s4` along edges of the graph.
    pub fn verify_witness(&self, p1: &[u32], p2: &[u32]) -> Result<(), String> {
        let check_path = |p: &[u32], from: u32, to: u32| -> Result<(), String> {
            if p.first() != Some(&from) || p.last() != Some(&to) {
                return Err(format!("endpoints of {p:?} wrong"));
            }
            for w in p.windows(2) {
                if !self.graph.has_edge(w[0], w[1]) {
                    return Err(format!("missing edge {} -> {}", w[0], w[1]));
                }
            }
            let mut sorted = p.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != p.len() {
                return Err("path not simple".into());
            }
            Ok(())
        };
        check_path(p1, self.s1, self.s2)?;
        check_path(p2, self.s3, self.s4)?;
        for x in p1 {
            if p2.contains(x) {
                return Err(format!("paths share node {x}"));
            }
        }
        Ok(())
    }

    /// Brute-force check for the hard direction: does the graph contain
    /// two node-disjoint simple paths `s1 → s2`, `s3 → s4`? Exponential —
    /// small formulas only.
    pub fn has_two_disjoint_paths_brute(&self) -> bool {
        kv_homeo::brute_force_homeomorphism(
            &kv_pebble::PatternSpec::two_disjoint_edges(),
            &self.graph,
            &[self.s1, self.s2, self.s3, self.s4],
        )
    }

    /// DOT rendering with human-readable switch/block labels (reproduces
    /// the figures).
    pub fn to_dot(&self, title: &str) -> String {
        let names = |v: u32| -> Option<String> {
            if v == self.s1 {
                return Some("s1".into());
            }
            if v == self.s2 {
                return Some("s2".into());
            }
            if v == self.s3 {
                return Some("s3".into());
            }
            if v == self.s4 {
                return Some("s4".into());
            }
            for (i, t) in self.var_tops.iter().enumerate() {
                if *t == v {
                    return Some(format!("T{}", i + 1));
                }
            }
            for (i, b) in self.var_bottoms.iter().enumerate() {
                if *b == v {
                    return Some(format!("B{}", i + 1));
                }
            }
            for (i, n) in self.clause_nodes.iter().enumerate() {
                if *n == v {
                    return Some(format!("n{i}"));
                }
            }
            for (i, info) in self.switches.iter().enumerate() {
                if info.switch.contains(v) {
                    return Some(format!("S{i}:{}", v));
                }
            }
            None
        };
        self.graph.to_dot(title, &names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_pebble::cnf::clause;

    fn formula_x1_or_x1() -> CnfFormula {
        // Figure 5's formula: a single clause (x1 ∨ x1)… our CnfFormula
        // deduplicates nothing, so list the literal twice.
        CnfFormula::new(1, vec![clause([Lit::pos(0), Lit::pos(0)])])
    }

    fn formula_x1_and_not_x1() -> CnfFormula {
        // Figure 6's formula: x1 ∧ x̄1 — unsatisfiable.
        CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])])
    }

    #[test]
    fn construction_sizes() {
        let g = GPhi::build(formula_x1_or_x1());
        assert_eq!(g.switch_count(), 2);
        // 4 distinguished + 2 switches + T/B + n0, n1.
        assert_eq!(g.graph.node_count(), 4 + 64 + 2 + 2);
        assert_eq!(g.columns[Lit::pos(0).index()].len(), 2);
        assert_eq!(g.columns[Lit::neg(0).index()].len(), 0);
    }

    #[test]
    fn witness_paths_verify_for_satisfiable() {
        let g = GPhi::build(formula_x1_or_x1());
        let (p1, p2) = g.witness_paths(&[true]).expect("x1=true satisfies");
        g.verify_witness(&p1, &p2).expect("witness paths valid");
        // x1 = false does not satisfy (both literals positive).
        assert!(g.witness_paths(&[false]).is_none());
    }

    #[test]
    fn reduction_forward_and_backward_tiny() {
        // Satisfiable: brute force finds the disjoint paths.
        let sat = GPhi::build(formula_x1_or_x1());
        assert!(sat.has_two_disjoint_paths_brute());
        // Unsatisfiable: no disjoint paths exist.
        let unsat = GPhi::build(formula_x1_and_not_x1());
        assert!(!unsat.has_two_disjoint_paths_brute());
    }

    #[test]
    fn reduction_matches_sat_on_small_formulas() {
        // A satisfiable and an unsatisfiable 2-variable formula.
        let f_sat = CnfFormula::new(
            2,
            vec![clause([Lit::pos(0), Lit::pos(1)]), clause([Lit::neg(0)])],
        );
        assert!(f_sat.brute_force_sat().is_some());
        let g = GPhi::build(f_sat);
        assert!(g.has_two_disjoint_paths_brute());

        let f_unsat = CnfFormula::new(
            2,
            vec![
                clause([Lit::pos(0)]),
                clause([Lit::neg(0), Lit::pos(1)]),
                clause([Lit::neg(1)]),
            ],
        );
        assert!(f_unsat.brute_force_sat().is_none());
        let g2 = GPhi::build(f_unsat);
        assert!(!g2.has_two_disjoint_paths_brute());
    }

    #[test]
    fn complete_formula_phi_1_unsat_no_paths() {
        let phi1 = CnfFormula::complete(1);
        assert!(phi1.brute_force_sat().is_none());
        let g = GPhi::build(phi1);
        assert_eq!(g.switch_count(), 2);
        assert!(!g.has_two_disjoint_paths_brute());
    }

    #[test]
    fn witness_paths_for_all_satisfying_assignments() {
        let f = CnfFormula::new(
            2,
            vec![clause([Lit::pos(0), Lit::neg(1)]), clause([Lit::pos(1)])],
        );
        let g = GPhi::build(f);
        let mut found = 0;
        for bits in 0..4u32 {
            let assignment = [bits & 1 != 0, bits & 2 != 0];
            if let Some((p1, p2)) = g.witness_paths(&assignment) {
                g.verify_witness(&p1, &p2).expect("valid witness");
                found += 1;
            }
        }
        // (x1 | ~x2) & x2 forces x2 = 1 and then x1 = 1: exactly one model.
        assert_eq!(found, 1);
    }

    #[test]
    fn governed_interrupt_then_rerun_rebuilds_identically() {
        use kv_structures::govern::{Budget, Governor, Interrupted};
        let formula = CnfFormula::complete(2);
        let plain = GPhi::build(formula.clone());
        // Position budget smaller than the graph must interrupt cleanly.
        let tight = Governor::with_budget(Budget::positions(10));
        match GPhi::try_build(formula.clone(), &tight) {
            Err(Interrupted::Limit(_)) => {}
            other => panic!(
                "expected a limit interrupt, got {:?}",
                other.map(|g| g.switch_count())
            ),
        }
        let rerun = GPhi::try_build(formula, &Governor::unlimited()).unwrap();
        assert_eq!(plain.graph.node_count(), rerun.graph.node_count());
        assert_eq!(plain.graph.edge_count(), rerun.graph.edge_count());
        assert_eq!(plain.switch_count(), rerun.switch_count());
        assert_eq!(plain.clause_nodes, rerun.clause_nodes);
    }

    #[test]
    fn dot_output_labels_blocks() {
        let g = GPhi::build(formula_x1_or_x1());
        let dot = g.to_dot("G_phi");
        assert!(dot.contains("s1"));
        assert!(dot.contains("T1"));
        assert!(dot.contains("n0"));
    }
}
