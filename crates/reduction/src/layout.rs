//! Standard paths through `G_φ` and their position arithmetic.
//!
//! A *standard path* from `s1` to `s2` threads `c → a` through every
//! switch (choosing `p(c,a)` or `q(c,a)` per switch); a standard path from
//! `s3` to `s4` threads `b → d` through every switch, then exactly one
//! vertical column per variable, then one `p(e,f)` segment per clause.
//! All standard top paths have one length, all standard bottom paths
//! another (for formulas where every literal has the same number of
//! occurrences, such as the complete formulas `φ_k`) — that is what makes
//! the "corresponding node" map of Theorem 6.6's strategy well defined.
//!
//! [`TopPos`] / [`BottomPos`] classify each offset of a standard path as a
//! *fixed* node (the same in every standard path) or a *choice* region
//! whose concrete node depends on a switch mode, a column choice, or a
//! clause-occurrence choice.

use crate::gphi::GPhi;
use crate::switch::SwitchPath;
use kv_pebble::cnf::Lit;

/// Classification of a position on the standard `s1 → s2` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopPos {
    /// The same node in every standard top path.
    Fixed(u32),
    /// Interior offset `1..=5` of the `c → a` passage of a switch; the
    /// node is `p(c,a)[offset]` or `q(c,a)[offset]` by the switch's mode.
    SwitchCA {
        /// Switch id.
        switch: usize,
        /// Offset within the 7-node passage (1..=5).
        offset: usize,
    },
}

/// Classification of a position on the standard `s3 → s4` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottomPos {
    /// The same node in every standard bottom path.
    Fixed(u32),
    /// Interior offset `1..=5` of the `b → d` passage of a switch.
    SwitchBD {
        /// Switch id.
        switch: usize,
        /// Offset within the passage (1..=5).
        offset: usize,
    },
    /// Inside the column region of a variable: the `occ`-th switch segment
    /// of whichever column is chosen, at `offset` (0..=6) within its
    /// `q(g,h)` passage.
    Column {
        /// Variable index.
        var: usize,
        /// Occurrence index within the column.
        occ: usize,
        /// Offset within the `g..h` passage (0..=6; boundary nodes `g`/`h`
        /// differ per column, so the whole passage is choice-dependent).
        offset: usize,
    },
    /// Inside clause `clause`'s segment, at `offset` (0..=6) within the
    /// chosen occurrence's `e..f` passage.
    Clause {
        /// Clause index.
        clause: usize,
        /// Offset within the `e..f` passage (0..=6).
        offset: usize,
    },
}

impl GPhi {
    /// Occurrences per column — defined only when uniform across all
    /// literals (true for `φ_k`; required by the standard-path machinery).
    pub fn uniform_column_len(&self) -> Option<usize> {
        let lens: Vec<usize> = self.columns.iter().map(Vec::len).collect();
        let first = *lens.first()?;
        lens.iter().all(|&l| l == first).then_some(first)
    }

    /// The offset classification of the standard top path.
    pub fn top_layout(&self) -> Vec<TopPos> {
        let mut out = vec![TopPos::Fixed(self.s1)];
        for i in (0..self.switch_count()).rev() {
            let sw = &self.switches[i].switch;
            out.push(TopPos::Fixed(sw.c()));
            for offset in 1..=5 {
                out.push(TopPos::SwitchCA { switch: i, offset });
            }
            out.push(TopPos::Fixed(sw.a()));
        }
        out.push(TopPos::Fixed(self.s2));
        out
    }

    /// The offset classification of the standard bottom path.
    ///
    /// # Panics
    /// Panics if the column lengths are not uniform;
    /// [`try_bottom_layout`](Self::try_bottom_layout) is the total form.
    pub fn bottom_layout(&self) -> Vec<BottomPos> {
        // Input contract documented above; try_bottom_layout is total.
        #[allow(clippy::expect_used)]
        let out = self
            .try_bottom_layout()
            .expect("standard bottom paths need uniform column lengths");
        out
    }

    /// Total form of [`bottom_layout`](Self::bottom_layout): `None` when
    /// the column lengths are not uniform (the standard-path machinery is
    /// undefined for such formulas).
    pub fn try_bottom_layout(&self) -> Option<Vec<BottomPos>> {
        let col_len = self.uniform_column_len()?;
        let mut out = vec![BottomPos::Fixed(self.s3)];
        for (i, info) in self.switches.iter().enumerate() {
            out.push(BottomPos::Fixed(info.switch.b()));
            for offset in 1..=5 {
                out.push(BottomPos::SwitchBD { switch: i, offset });
            }
            out.push(BottomPos::Fixed(info.switch.d()));
        }
        for v in 0..self.formula.var_count() {
            out.push(BottomPos::Fixed(self.var_tops[v]));
            for occ in 0..col_len {
                for offset in 0..=6 {
                    out.push(BottomPos::Column {
                        var: v,
                        occ,
                        offset,
                    });
                }
            }
            out.push(BottomPos::Fixed(self.var_bottoms[v]));
        }
        for j in 0..self.formula.clause_count() {
            out.push(BottomPos::Fixed(self.clause_nodes[j]));
            for offset in 0..=6 {
                out.push(BottomPos::Clause { clause: j, offset });
            }
        }
        // Infallible: clause_nodes always holds n_clauses + 1 ≥ 1 nodes.
        #[allow(clippy::unwrap_used)]
        out.push(BottomPos::Fixed(*self.clause_nodes.last().unwrap()));
        out.push(BottomPos::Fixed(self.s4));
        Some(out)
    }

    /// Resolves a [`TopPos`] choice: the concrete node when the switch is
    /// in `p`-mode (`true`) or `q`-mode (`false`).
    pub fn resolve_top(&self, pos: TopPos, p_mode: bool) -> u32 {
        match pos {
            TopPos::Fixed(n) => n,
            TopPos::SwitchCA { switch, offset } => {
                let path = if p_mode {
                    SwitchPath::PCA
                } else {
                    SwitchPath::QCA
                };
                self.switches[switch].switch.path_nodes(path)[offset]
            }
        }
    }

    /// Resolves a [`BottomPos::SwitchBD`] choice.
    pub fn resolve_bd(&self, switch: usize, offset: usize, p_mode: bool) -> u32 {
        let path = if p_mode {
            SwitchPath::PBD
        } else {
            SwitchPath::QBD
        };
        self.switches[switch].switch.path_nodes(path)[offset]
    }

    /// Resolves a [`BottomPos::Column`] choice: the node at `offset` in the
    /// `occ`-th segment of the column of `lit`.
    pub fn resolve_column(&self, lit: Lit, occ: usize, offset: usize) -> u32 {
        let id = self.columns[lit.index()][occ];
        self.switches[id].switch.path_nodes(SwitchPath::QGH)[offset]
    }

    /// Resolves a [`BottomPos::Clause`] choice: the node at `offset` in the
    /// `e..f` passage of occurrence `pos_in_clause` of the clause.
    pub fn resolve_clause(&self, clause: usize, pos_in_clause: usize, offset: usize) -> u32 {
        let id = self.clause_switches[clause][pos_in_clause];
        self.switches[id].switch.path_nodes(SwitchPath::PEF)[offset]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_pebble::cnf::CnfFormula;

    #[test]
    fn layouts_match_witness_paths_phi_sat() {
        // For a satisfiable uniform formula, the witness paths must have
        // exactly the standard lengths and agree with the resolution of
        // every position.
        // (x1 | x2) & (~x1 | ~x2): every literal occurs exactly once.
        let f = CnfFormula::new(
            2,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        );
        let g = GPhi::build(f);
        assert_eq!(g.uniform_column_len(), Some(1));
        let top = g.top_layout();
        let bottom = g.bottom_layout();
        let assignment = [true, false];
        let (p1, p2) = g.witness_paths(&assignment).expect("satisfying");
        assert_eq!(p1.len(), top.len(), "top length");
        assert_eq!(p2.len(), bottom.len(), "bottom length");
        let lit_true = |l: Lit| assignment[l.var] == l.positive;
        for (idx, pos) in top.iter().enumerate() {
            let node = match *pos {
                TopPos::Fixed(n) => n,
                TopPos::SwitchCA { switch, .. } => {
                    g.resolve_top(*pos, lit_true(g.switches[switch].lit))
                }
            };
            assert_eq!(p1[idx], node, "top offset {idx}");
        }
        // Bottom positions: check fixed and BD positions (column/clause
        // choices depend on the assignment's specifics, checked next).
        for (idx, pos) in bottom.iter().enumerate() {
            match *pos {
                BottomPos::Fixed(n) => assert_eq!(p2[idx], n, "bottom fixed {idx}"),
                BottomPos::SwitchBD { switch, offset } => {
                    let node = g.resolve_bd(switch, offset, lit_true(g.switches[switch].lit));
                    assert_eq!(p2[idx], node, "bottom bd {idx}");
                }
                BottomPos::Column { var, occ, offset } => {
                    let false_lit = if assignment[var] {
                        Lit::neg(var)
                    } else {
                        Lit::pos(var)
                    };
                    let node = g.resolve_column(false_lit, occ, offset);
                    assert_eq!(p2[idx], node, "bottom column {idx}");
                }
                BottomPos::Clause { clause, offset } => {
                    let pos_in_clause = g.formula.clauses()[clause]
                        .iter()
                        .position(|&l| lit_true(l))
                        .expect("clause satisfied");
                    let node = g.resolve_clause(clause, pos_in_clause, offset);
                    assert_eq!(p2[idx], node, "bottom clause {idx}");
                }
            }
        }
    }

    #[test]
    fn top_standard_paths_share_length_across_modes() {
        let g = GPhi::build(CnfFormula::complete(1));
        let layout = g.top_layout();
        // All-p and all-q resolutions give equal-length (same layout) but
        // different interior nodes.
        let all_p: Vec<u32> = layout.iter().map(|&p| g.resolve_top(p, true)).collect();
        let all_q: Vec<u32> = layout.iter().map(|&p| g.resolve_top(p, false)).collect();
        assert_eq!(all_p.len(), all_q.len());
        assert_ne!(all_p, all_q);
        // Fixed positions agree.
        for (i, pos) in layout.iter().enumerate() {
            if matches!(pos, TopPos::Fixed(_)) {
                assert_eq!(all_p[i], all_q[i]);
            }
        }
    }

    #[test]
    fn nonuniform_formula_has_no_bottom_layout() {
        let f = CnfFormula::new(1, vec![vec![Lit::pos(0)]]); // x̄1 never occurs
        let g = GPhi::build(f);
        assert_eq!(g.uniform_column_len(), None);
    }
}
