//! The FHW'80 NP-hardness machinery and the paper's negative results
//! (Section 6.2).
//!
//! - [`switch`]: the switch gadget of Figure 1, reconstructed from the six
//!   named paths, with an exhaustive Lemma 6.4 checker;
//! - [`gphi`]: the reduction graph `G_φ` (Figures 2–6): variable blocks,
//!   clause blocks, the switch chain, and the four distinguished nodes —
//!   `φ` is satisfiable iff `G_φ` has node-disjoint `s1→s2` and `s3→s4`
//!   paths;
//! - [`layout`]: *standard paths* through `G_φ` and the position
//!   arithmetic (offset → region) that Theorem 6.6's strategy needs;
//! - [`thm66`]: the witness pair `(A_k, B_k)` and Player II's **simulation
//!   strategy** (Cases 1–4), playable against arbitrary Spoilers;
//! - [`variants`]: the `H2`/`H3` modifications (Theorem 6.7) and the
//!   Lemma 6.3 pattern-lifting construction;
//! - [`even_reduction`]: the edge-doubling reduction `G ↦ G*` of
//!   Corollary 6.8 (two disjoint paths ⟶ even simple path).

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod even_reduction;
pub mod gphi;
pub mod layout;
pub mod switch;
pub mod thm66;
pub mod variants;

pub use gphi::GPhi;
pub use switch::{Switch, SwitchPath};
pub use thm66::{SimulationDuplicator, Thm66Witness};
