//! The switch gadget (Figure 1).
//!
//! The figure itself is a drawing, but Section 6.2 lists the six
//! distinguished passing paths verbatim, and Lemma 6.4 is the only
//! property of the switch the proofs use — so the gadget is reconstructed
//! as exactly the union of those six paths:
//!
//! ```text
//! p(c,a): c → 5 → 4 → 3 → 2 → 1 → a
//! p(b,d): b → 6' → 2' → 7 → 9 → 12 → d
//! p(e,f): e → 8' → 9' → 10' → 4' → 11' → f
//! q(c,a): c → 5' → 4' → 3' → 2' → 1' → a
//! q(b,d): b → 6 → 2 → 7' → 9' → 12' → d
//! q(g,h): g → 8 → 9 → 10 → 4 → 11 → h
//! ```
//!
//! The `p`-family and `q`-family are node-disjoint within themselves but
//! interlock across families (e.g. `p(c,a)` and `q(b,d)` share node 2), so
//! any two node-disjoint paths through `b` and `a` must commit the whole
//! switch to one family — that is Lemma 6.4, verified *exhaustively* by
//! [`Switch::verify_lemma_6_4`] (experiment E10).

use kv_structures::Digraph;

/// Number of nodes a switch adds to a graph.
pub const SWITCH_SIZE: usize = 32;

/// The six named passing paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchPath {
    /// `p(c, a)`.
    PCA,
    /// `p(b, d)`.
    PBD,
    /// `p(e, f)`.
    PEF,
    /// `q(c, a)`.
    QCA,
    /// `q(b, d)`.
    QBD,
    /// `q(g, h)`.
    QGH,
}

impl SwitchPath {
    /// All six paths.
    pub const ALL: [SwitchPath; 6] = [
        SwitchPath::PCA,
        SwitchPath::PBD,
        SwitchPath::PEF,
        SwitchPath::QCA,
        SwitchPath::QBD,
        SwitchPath::QGH,
    ];
}

/// A switch instance embedded in a graph: the global node ids of its 32
/// nodes.
///
/// Local layout: boundary nodes `a b c d e f g h` then internal `1..12`
/// then `1'..12'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Switch {
    base: u32,
}

impl Switch {
    /// Adds a fresh switch to `g` and wires its internal edges.
    pub fn add_to(g: &mut Digraph) -> Switch {
        let base = g.add_nodes(SWITCH_SIZE);
        let sw = Switch { base };
        for path in SwitchPath::ALL {
            let nodes = sw.path_nodes(path);
            for w in nodes.windows(2) {
                g.add_edge(w[0], w[1]);
            }
        }
        sw
    }

    /// A standalone switch graph (for gadget-level analysis).
    pub fn standalone() -> (Digraph, Switch) {
        let mut g = Digraph::new(0);
        let sw = Switch::add_to(&mut g);
        (g, sw)
    }

    fn boundary(&self, i: u32) -> u32 {
        self.base + i
    }

    /// Node `a` (sink of the `c→a` paths).
    pub fn a(&self) -> u32 {
        self.boundary(0)
    }
    /// Node `b` (source of the `b→d` paths).
    pub fn b(&self) -> u32 {
        self.boundary(1)
    }
    /// Node `c` (source of the `c→a` paths).
    pub fn c(&self) -> u32 {
        self.boundary(2)
    }
    /// Node `d` (sink of the `b→d` paths).
    pub fn d(&self) -> u32 {
        self.boundary(3)
    }
    /// Node `e` (source of `p(e,f)`).
    pub fn e(&self) -> u32 {
        self.boundary(4)
    }
    /// Node `f` (sink of `p(e,f)`).
    pub fn f(&self) -> u32 {
        self.boundary(5)
    }
    /// Node `g` (source of `q(g,h)`).
    pub fn g(&self) -> u32 {
        self.boundary(6)
    }
    /// Node `h` (sink of `q(g,h)`).
    pub fn h(&self) -> u32 {
        self.boundary(7)
    }

    /// Internal plain node `1..=12`.
    pub fn plain(&self, i: u32) -> u32 {
        debug_assert!((1..=12).contains(&i));
        self.base + 7 + i
    }

    /// Internal primed node `1'..=12'`.
    pub fn primed(&self, i: u32) -> u32 {
        debug_assert!((1..=12).contains(&i));
        self.base + 19 + i
    }

    /// The full node sequence of a named path (boundary to boundary, 7
    /// nodes).
    pub fn path_nodes(&self, path: SwitchPath) -> [u32; 7] {
        match path {
            SwitchPath::PCA => [
                self.c(),
                self.plain(5),
                self.plain(4),
                self.plain(3),
                self.plain(2),
                self.plain(1),
                self.a(),
            ],
            SwitchPath::PBD => [
                self.b(),
                self.primed(6),
                self.primed(2),
                self.plain(7),
                self.plain(9),
                self.plain(12),
                self.d(),
            ],
            SwitchPath::PEF => [
                self.e(),
                self.primed(8),
                self.primed(9),
                self.primed(10),
                self.primed(4),
                self.primed(11),
                self.f(),
            ],
            SwitchPath::QCA => [
                self.c(),
                self.primed(5),
                self.primed(4),
                self.primed(3),
                self.primed(2),
                self.primed(1),
                self.a(),
            ],
            SwitchPath::QBD => [
                self.b(),
                self.plain(6),
                self.plain(2),
                self.primed(7),
                self.primed(9),
                self.primed(12),
                self.d(),
            ],
            SwitchPath::QGH => [
                self.g(),
                self.plain(8),
                self.plain(9),
                self.plain(10),
                self.plain(4),
                self.plain(11),
                self.h(),
            ],
        }
    }

    /// Does this switch own global node `v`?
    pub fn contains(&self, v: u32) -> bool {
        (self.base..self.base + SWITCH_SIZE as u32).contains(&v)
    }

    /// Identifies the named path(s) through an *interior* node of this
    /// switch (boundary nodes belong to several paths and return `None`).
    /// Interior nodes shared by two paths of the *same family* return the
    /// first per [`SwitchPath::ALL`] order with a marker; the only shared
    /// interiors across families are the interlock nodes.
    pub fn interior_paths(&self, v: u32) -> Vec<SwitchPath> {
        let mut out = Vec::new();
        if !self.contains(v) || v < self.base + 8 {
            return out; // not ours, or a boundary node
        }
        for path in SwitchPath::ALL {
            let nodes = self.path_nodes(path);
            if nodes[1..6].contains(&v) {
                out.push(path);
            }
        }
        out
    }

    /// Exhaustive verification of **Lemma 6.4** on the standalone switch:
    ///
    /// 1. for every pair of node-disjoint passing paths `(P, Q)` where `P`
    ///    ends at `a` and `Q` starts at `b`: `P` starts at `c`, `Q` ends at
    ///    `d`, and `(P, Q)` is exactly `(p(c,a), p(b,d))` or
    ///    `(q(c,a), q(b,d))`;
    /// 2. in the first case `p(e,f)` is the *only* passing path
    ///    node-disjoint from both, in the second `q(g,h)` is.
    ///
    /// Returns an error message describing the first violation.
    pub fn verify_lemma_6_4() -> Result<(), String> {
        let (g, sw) = Switch::standalone();
        // Passing paths: start at in-degree-0, end at out-degree-0 nodes.
        let sources: Vec<u32> = g.nodes().filter(|&v| g.in_degree(v) == 0).collect();
        let sinks: Vec<u32> = g.nodes().filter(|&v| g.out_degree(v) == 0).collect();
        {
            let mut expect_sources = vec![sw.b(), sw.c(), sw.e(), sw.g()];
            expect_sources.sort_unstable();
            let mut got = sources.clone();
            got.sort_unstable();
            if got != expect_sources {
                return Err(format!("unexpected sources {got:?}"));
            }
            let mut expect_sinks = vec![sw.a(), sw.d(), sw.f(), sw.h()];
            expect_sinks.sort_unstable();
            let mut got = sinks.clone();
            got.sort_unstable();
            if got != expect_sinks {
                return Err(format!("unexpected sinks {got:?}"));
            }
        }
        let mut passing: Vec<Vec<u32>> = Vec::new();
        for &s in &sources {
            for &t in &sinks {
                passing.extend(kv_graphalg::simple_paths::all_simple_paths(&g, s, t));
            }
        }
        let disjoint = |p: &[u32], q: &[u32]| p.iter().all(|x| !q.contains(x));
        let pca: Vec<u32> = sw.path_nodes(SwitchPath::PCA).to_vec();
        let pbd: Vec<u32> = sw.path_nodes(SwitchPath::PBD).to_vec();
        let pef: Vec<u32> = sw.path_nodes(SwitchPath::PEF).to_vec();
        let qca: Vec<u32> = sw.path_nodes(SwitchPath::QCA).to_vec();
        let qbd: Vec<u32> = sw.path_nodes(SwitchPath::QBD).to_vec();
        let qgh: Vec<u32> = sw.path_nodes(SwitchPath::QGH).to_vec();
        let mut p_case_seen = false;
        let mut q_case_seen = false;
        // Infallible unwraps below: all_simple_paths yields nonempty paths.
        #[allow(clippy::unwrap_used)]
        for p in &passing {
            if *p.last().unwrap() != sw.a() {
                continue;
            }
            for q in &passing {
                if q[0] != sw.b() || !disjoint(p, q) {
                    continue;
                }
                // Claim 1: committed pair.
                if p[0] != sw.c() {
                    return Err(format!("a-path {p:?} does not start at c"));
                }
                if *q.last().unwrap() != sw.d() {
                    return Err(format!("b-path {q:?} does not end at d"));
                }
                let is_p_case = *p == pca && *q == pbd;
                let is_q_case = *p == qca && *q == qbd;
                if !is_p_case && !is_q_case {
                    return Err(format!("unexpected disjoint pair {p:?} / {q:?}"));
                }
                // Claim 2: the unique third path.
                let third: Vec<&Vec<u32>> = passing
                    .iter()
                    .filter(|r| disjoint(r, p) && disjoint(r, q))
                    .collect();
                let expected = if is_p_case { &pef } else { &qgh };
                if third.len() != 1 || third[0] != expected {
                    return Err(format!(
                        "third-path claim fails for {:?} case: {third:?}",
                        if is_p_case { "p" } else { "q" }
                    ));
                }
                if is_p_case {
                    p_case_seen = true;
                } else {
                    q_case_seen = true;
                }
            }
        }
        if !p_case_seen || !q_case_seen {
            return Err("did not observe both switch modes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_has_32_nodes_and_36_edges() {
        let (g, _) = Switch::standalone();
        assert_eq!(g.node_count(), 32);
        // Six paths of 6 edges each; shared interlock nodes do not merge
        // any edges.
        assert_eq!(g.edge_count(), 36);
    }

    #[test]
    fn lemma_6_4_holds_exhaustively() {
        Switch::verify_lemma_6_4().expect("Lemma 6.4");
    }

    #[test]
    fn interlock_nodes_are_shared_across_families() {
        let (_, sw) = Switch::standalone();
        // Node 2 is on p(c,a) and q(b,d); node 4 on p(c,a)… no: on q(g,h)
        // and p(c,a); 9 on p(b,d) and q(g,h); 2', 4', 9' mirror them.
        let shared_pairs = [
            (sw.plain(2), [SwitchPath::PCA, SwitchPath::QBD]),
            (sw.plain(4), [SwitchPath::PCA, SwitchPath::QGH]),
            (sw.plain(9), [SwitchPath::PBD, SwitchPath::QGH]),
            (sw.primed(2), [SwitchPath::PBD, SwitchPath::QCA]),
            (sw.primed(4), [SwitchPath::PEF, SwitchPath::QCA]),
            (sw.primed(9), [SwitchPath::PEF, SwitchPath::QBD]),
        ];
        for (node, expected) in shared_pairs {
            let mut got = sw.interior_paths(node);
            got.sort_by_key(|p| SwitchPath::ALL.iter().position(|q| q == p));
            let mut want = expected.to_vec();
            want.sort_by_key(|p| SwitchPath::ALL.iter().position(|q| q == p));
            assert_eq!(got, want, "sharing at node {node}");
        }
    }

    #[test]
    fn each_family_is_internally_disjoint() {
        let (_, sw) = Switch::standalone();
        let fam = |paths: [SwitchPath; 3]| -> Vec<Vec<u32>> {
            paths.iter().map(|&p| sw.path_nodes(p).to_vec()).collect()
        };
        for family in [
            fam([SwitchPath::PCA, SwitchPath::PBD, SwitchPath::PEF]),
            fam([SwitchPath::QCA, SwitchPath::QBD, SwitchPath::QGH]),
        ] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    for x in &family[i] {
                        assert!(!family[j].contains(x), "family overlap at {x}");
                    }
                }
            }
        }
    }

    #[test]
    fn multiple_switches_do_not_collide() {
        let mut g = Digraph::new(3);
        let s1 = Switch::add_to(&mut g);
        let s2 = Switch::add_to(&mut g);
        assert_eq!(g.node_count(), 3 + 64);
        assert!(!s1.contains(s2.a()));
        assert!(s2.contains(s2.primed(12)));
        assert!(!s2.contains(s1.plain(1)));
    }
}
