//! Theorem 6.6: the witness structures `(A_k, B_k)` and Player II's
//! simulation strategy.
//!
//! `B_k = G_{φ_k}` for the complete (unsatisfiable) formula `φ_k`, so `B_k`
//! has **no** pair of node-disjoint `s1→s2` / `s3→s4` paths; `A_k` is the
//! "idealized" version — two genuinely disjoint paths whose lengths equal
//! the standard-path lengths of `B_k` — so `A_k` **satisfies** the query.
//! The Duplicator nevertheless survives the existential k-pebble game on
//! `(A_k, B_k)` by answering every pebble on `A_k` with the *corresponding
//! node* on a standard path of `B_k`, consulting an implicit k-pebble game
//! on the formula `φ_k` to decide which variant (`p`/`q` switch passage,
//! which column, which clause occurrence) to use — the paper's Cases 1–4.
//!
//! [`SimulationDuplicator`] implements the strategy *statelessly*: the
//! current truth commitments are re-derived from the pebbled pairs on
//! every move (a pebbled node inside a switch region reveals the switch's
//! mode and hence its literal's value; a pebbled column node reveals the
//! variable's value; a pebbled clause node reveals the chosen occurrence).
//! This matches the paper's bookkeeping — "a truth value is removed from a
//! literal as soon as no pebbled node forces it to have a truth value" —
//! by construction.

use crate::gphi::GPhi;
use crate::layout::{BottomPos, TopPos};
use crate::switch::SwitchPath;
use kv_pebble::cnf::{CnfFormula, Lit};
use kv_pebble::play::{DuplicatorStrategy, GamePosition};
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::{Element, Structure, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// The witness pair of Theorem 6.6 (for `H1`, the two-disjoint-edges
/// pattern).
#[derive(Debug)]
pub struct Thm66Witness {
    /// The pebble budget the witness is built for (`φ_k`).
    pub k: usize,
    /// The reduction graph underlying `B_k`.
    pub gphi: GPhi,
    /// `A_k`: two disjoint paths, constants `w1, w2, w3, w4`.
    pub a: Structure,
    /// `B_k = (G_{φ_k}, s1, s2, s3, s4)`.
    pub b: Structure,
    top_layout: Vec<TopPos>,
    bottom_layout: Vec<BottomPos>,
}

/// Where an element of `A_k` sits.
#[derive(Debug, Clone, Copy)]
enum Region {
    Top(TopPos),
    Bottom(BottomPos),
}

impl Thm66Witness {
    /// Builds the witness for `φ_k`.
    pub fn new(k: usize) -> Self {
        Self::from_formula(k, CnfFormula::complete(k))
    }

    /// Governed [`new`](Self::new); same restart-resume contract as
    /// [`GPhi::try_build`].
    pub fn try_new(k: usize, gov: &Governor) -> Result<Self, Interrupted> {
        Self::try_from_formula(k, CnfFormula::complete(k), gov)
    }

    /// Builds the witness machinery for an arbitrary formula with uniform
    /// literal-occurrence counts (`k` is the pebble budget the strategy
    /// will be asked to survive; the guarantees of Theorem 6.6 hold when
    /// the Duplicator wins the k-pebble game on the formula).
    pub fn from_formula(k: usize, formula: CnfFormula) -> Self {
        match Self::try_from_formula(k, formula, &Governor::unlimited()) {
            Ok(witness) => witness,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`from_formula`](Self::from_formula): builds `G_φ` under
    /// the governor, then charges one step per layout position of `A_k`.
    /// Construction is pure — on interrupt, call again with a fresh or
    /// relaxed governor.
    pub fn try_from_formula(
        k: usize,
        formula: CnfFormula,
        gov: &Governor,
    ) -> Result<Self, Interrupted> {
        let gphi = GPhi::try_build(formula, gov)?;
        let top_layout = gphi.top_layout();
        let bottom_layout = gphi.bottom_layout();
        gov.step((top_layout.len() + bottom_layout.len()) as u64)?;
        let vocab = Arc::new(Vocabulary::graph_with_constants(4));
        // A_k: node ids 0..top_len are the first path in order, then the
        // second path.
        let top_len = top_layout.len();
        let bottom_len = bottom_layout.len();
        let mut a_graph = kv_structures::Digraph::new(top_len + bottom_len);
        for i in 1..top_len {
            a_graph.add_edge((i - 1) as u32, i as u32);
        }
        for i in 1..bottom_len {
            a_graph.add_edge((top_len + i - 1) as u32, (top_len + i) as u32);
        }
        a_graph.set_distinguished(vec![
            0,
            (top_len - 1) as u32,
            top_len as u32,
            (top_len + bottom_len - 1) as u32,
        ]);
        let a = a_graph.to_structure_with(Arc::clone(&vocab));
        let b = {
            let mut g = gphi.graph.clone();
            g.set_distinguished(vec![gphi.s1, gphi.s2, gphi.s3, gphi.s4]);
            g.to_structure_with(Arc::clone(&vocab))
        };
        Ok(Self {
            k,
            gphi,
            a,
            b,
            top_layout,
            bottom_layout,
        })
    }

    /// Length of `A_k`'s first path (the `w1 → w2` one).
    pub fn top_len(&self) -> usize {
        self.top_layout.len()
    }

    /// Length of `A_k`'s second path.
    pub fn bottom_len(&self) -> usize {
        self.bottom_layout.len()
    }

    fn region_of(&self, a_elem: Element) -> Region {
        let i = a_elem as usize;
        if i < self.top_layout.len() {
            Region::Top(self.top_layout[i])
        } else {
            Region::Bottom(self.bottom_layout[i - self.top_layout.len()])
        }
    }

    /// The strategy object.
    pub fn duplicator(&self) -> SimulationDuplicator<'_> {
        SimulationDuplicator { witness: self }
    }
}

/// Truth commitments derived from the current pebbles.
#[derive(Debug, Default)]
struct Commitments {
    /// Variable values forced by some pebble.
    values: HashMap<usize, bool>,
    /// Clause-segment occurrence choices forced by some pebble.
    clause_choice: HashMap<usize, usize>,
    /// Derivation was contradictory (should never happen; concede).
    broken: bool,
}

impl Commitments {
    fn set_value(&mut self, var: usize, value: bool) {
        match self.values.get(&var) {
            Some(&v) if v != value => self.broken = true,
            _ => {
                self.values.insert(var, value);
            }
        }
    }

    fn set_lit_true(&mut self, lit: Lit) {
        self.set_value(lit.var, lit.positive);
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.values.get(&lit.var).map(|&v| v == lit.positive)
    }
}

/// Player II's simulation strategy (Cases 1–4 of Theorem 6.6).
pub struct SimulationDuplicator<'w> {
    witness: &'w Thm66Witness,
}

impl<'w> SimulationDuplicator<'w> {
    fn derive_commitments(&self, position: &GamePosition) -> Commitments {
        let w = self.witness;
        let g = &w.gphi;
        let mut c = Commitments::default();
        for &(a, b) in position.slots.iter().flatten() {
            match w.region_of(a) {
                Region::Top(TopPos::Fixed(_)) | Region::Bottom(BottomPos::Fixed(_)) => {}
                Region::Top(TopPos::SwitchCA { switch, offset }) => {
                    let info = &g.switches[switch];
                    if b == info.switch.path_nodes(SwitchPath::PCA)[offset] {
                        c.set_lit_true(info.lit);
                    } else if b == info.switch.path_nodes(SwitchPath::QCA)[offset] {
                        c.set_lit_true(info.lit.complement());
                    } else {
                        c.broken = true;
                    }
                }
                Region::Bottom(BottomPos::SwitchBD { switch, offset }) => {
                    let info = &g.switches[switch];
                    if b == info.switch.path_nodes(SwitchPath::PBD)[offset] {
                        c.set_lit_true(info.lit);
                    } else if b == info.switch.path_nodes(SwitchPath::QBD)[offset] {
                        c.set_lit_true(info.lit.complement());
                    } else {
                        c.broken = true;
                    }
                }
                Region::Bottom(BottomPos::Column { var, occ, offset }) => {
                    // Which column is the node in? Using the column of a
                    // literal z means z is false.
                    if b == g.resolve_column(Lit::pos(var), occ, offset) {
                        c.set_value(var, false);
                    } else if b == g.resolve_column(Lit::neg(var), occ, offset) {
                        c.set_value(var, true);
                    } else {
                        c.broken = true;
                    }
                }
                Region::Bottom(BottomPos::Clause { clause, offset }) => {
                    let arity = g.formula.clauses()[clause].len();
                    let mut matched = false;
                    for p in 0..arity {
                        if b == g.resolve_clause(clause, p, offset) {
                            c.clause_choice.insert(clause, p);
                            c.set_lit_true(g.formula.clauses()[clause][p]);
                            matched = true;
                            break;
                        }
                    }
                    if !matched {
                        c.broken = true;
                    }
                }
            }
        }
        c
    }
}

impl DuplicatorStrategy for SimulationDuplicator<'_> {
    fn respond(&mut self, position: &GamePosition, _slot: usize, a: Element) -> Option<Element> {
        // Functionality: a re-pebbled element gets its existing image.
        for &(pa, pb) in position.slots.iter().flatten() {
            if pa == a {
                return Some(pb);
            }
        }
        let w = self.witness;
        let g = &w.gphi;
        let c = self.derive_commitments(position);
        if c.broken {
            return None;
        }
        Some(match w.region_of(a) {
            Region::Top(TopPos::Fixed(n)) | Region::Bottom(BottomPos::Fixed(n)) => n,
            Region::Top(pos @ TopPos::SwitchCA { switch, .. }) => {
                // Case 1: assign the switch's literal (default true).
                let lit = g.switches[switch].lit;
                let value = c.lit_value(lit).unwrap_or(true);
                g.resolve_top(pos, value)
            }
            Region::Bottom(BottomPos::SwitchBD { switch, offset }) => {
                // Case 2.
                let lit = g.switches[switch].lit;
                let value = c.lit_value(lit).unwrap_or(true);
                g.resolve_bd(switch, offset, value)
            }
            Region::Bottom(BottomPos::Column { var, occ, offset }) => {
                // Case 3: use the column of the false literal; default the
                // variable to true.
                let value = *c.values.get(&var).unwrap_or(&true);
                let false_lit = if value { Lit::neg(var) } else { Lit::pos(var) };
                g.resolve_column(false_lit, occ, offset)
            }
            Region::Bottom(BottomPos::Clause { clause, offset }) => {
                // Case 4: reuse the segment's occurrence if one is pinned;
                // otherwise pick a literal that is true or unassigned
                // (never one committed false — its switch's e..f passage
                // interlocks with the q(b,d) passage already in use).
                let p = match c.clause_choice.get(&clause) {
                    Some(&p) => p,
                    None => {
                        let lits = &g.formula.clauses()[clause];
                        let mut choice = None;
                        for (p, &l) in lits.iter().enumerate() {
                            match c.lit_value(l) {
                                Some(true) => {
                                    choice = Some(p);
                                    break;
                                }
                                None if choice.is_none() => choice = Some(p),
                                _ => {}
                            }
                        }
                        choice?
                    }
                };
                g.resolve_clause(clause, p, offset)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_pebble::play::{play_game, ExhaustiveSpoiler, RandomSpoiler};
    use kv_pebble::{CnfGame, Winner};
    use kv_structures::HomKind;

    #[test]
    fn witness_structures_well_formed() {
        let w = Thm66Witness::new(1);
        assert!(w.a.validate().is_ok());
        assert!(w.b.validate().is_ok());
        assert_eq!(w.a.universe_size(), w.top_len() + w.bottom_len());
        // Constants in order w1, w2, w3, w4.
        assert_eq!(w.a.constant_values().len(), 4);
    }

    #[test]
    fn a_k_satisfies_the_query_b_k_does_not() {
        let w = Thm66Witness::new(1);
        let a_graph = kv_structures::Digraph::from_structure(&w.a);
        let d = w.a.constant_values().to_vec();
        assert!(kv_homeo::brute_force_homeomorphism(
            &kv_pebble::PatternSpec::two_disjoint_edges(),
            &a_graph,
            &d,
        ));
        assert!(!w.gphi.has_two_disjoint_paths_brute());
    }

    #[test]
    fn duplicator_wins_cnf_game_on_phi_k() {
        // The bookkeeping device: II wins the k-pebble game on φ_k.
        for k in 1..=2usize {
            let f = CnfFormula::complete(k);
            assert_eq!(CnfGame::solve(&f, k).winner(), Winner::Duplicator);
        }
    }

    #[test]
    fn simulation_strategy_survives_random_spoilers_k1() {
        let w = Thm66Witness::new(1);
        for seed in 0..30 {
            let mut spoiler = RandomSpoiler::new(w.a.universe_size(), seed);
            let mut dup = w.duplicator();
            let winner = play_game(
                &w.a,
                &w.b,
                1,
                HomKind::OneToOne,
                &mut spoiler,
                &mut dup,
                300,
            );
            assert_eq!(winner, Winner::Duplicator, "seed {seed}");
        }
    }

    #[test]
    fn simulation_strategy_survives_random_spoilers_k2() {
        let w = Thm66Witness::new(2);
        for seed in 0..20 {
            let mut spoiler = RandomSpoiler::new(w.a.universe_size(), seed);
            let mut dup = w.duplicator();
            let winner = play_game(
                &w.a,
                &w.b,
                2,
                HomKind::OneToOne,
                &mut spoiler,
                &mut dup,
                400,
            );
            assert_eq!(winner, Winner::Duplicator, "seed {seed}");
        }
    }

    #[test]
    fn simulation_strategy_survives_random_spoilers_k3() {
        // k = 3: B = G_{φ_3} has 24 switches; the generic solver could
        // never handle this size, the strategy plays it effortlessly.
        let w = Thm66Witness::new(3);
        assert!(w.b.universe_size() > 700);
        for seed in 0..10 {
            let mut spoiler = RandomSpoiler::new(w.a.universe_size(), seed);
            let mut dup = w.duplicator();
            let winner = play_game(
                &w.a,
                &w.b,
                3,
                HomKind::OneToOne,
                &mut spoiler,
                &mut dup,
                300,
            );
            assert_eq!(winner, Winner::Duplicator, "seed {seed}");
        }
    }

    #[test]
    fn simulation_strategy_survives_exhaustive_spoiler_k1() {
        let w = Thm66Witness::new(1);
        let loss =
            ExhaustiveSpoiler::refute(&w.a, &w.b, 1, HomKind::OneToOne, 4, || w.duplicator());
        assert!(loss.is_none(), "strategy lost: {loss:?}");
    }

    #[test]
    fn simulation_strategy_survives_exhaustive_spoiler_k2_shallow() {
        let w = Thm66Witness::new(2);
        let loss =
            ExhaustiveSpoiler::refute(&w.a, &w.b, 2, HomKind::OneToOne, 2, || w.duplicator());
        assert!(loss.is_none(), "strategy lost: {loss:?}");
    }
}
