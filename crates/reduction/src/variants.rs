//! Theorem 6.7: from `H1` to every pattern in `C̄`.
//!
//! The `H2` and `H3` witnesses arise from the `H1` witness `(A_k, B_k)` by
//! identifying distinguished nodes (`s2 ~ s3` for `H2`; additionally
//! `s1 ~ s4` for `H3`); Lemma 6.3 lifts a witness for a sub-pattern `F1`
//! to any super-pattern `F2 ⊇ F1` by soldering the extra edges of `F2`
//! directly onto fresh (or existing) distinguished nodes of both
//! structures. In all cases Player II's strategy is the `H1` simulation
//! strategy composed with the identification/embedding — implemented here
//! as strategy *wrappers* so the lifted strategies can be played and
//! attacked like any other.

use crate::thm66::{SimulationDuplicator, Thm66Witness};
use kv_pebble::play::{DuplicatorStrategy, GamePosition};
use kv_pebble::PatternSpec;
use kv_structures::{quotient, Element, Structure, Vocabulary};
use std::sync::Arc;

/// A quotient-based variant witness: the structures with some
/// distinguished nodes identified, plus the maps back to the `H1` witness.
pub struct VariantWitness<'w> {
    /// The base `H1` witness.
    pub base: &'w Thm66Witness,
    /// The quotient of `A_k`.
    pub a: Structure,
    /// The quotient of `B_k`.
    pub b: Structure,
    /// Class map for `A` (old element -> new element).
    pub class_a: Vec<Element>,
    /// Class map for `B`.
    pub class_b: Vec<Element>,
    /// Canonical preimages (new element -> an old element).
    pre_a: Vec<Element>,
    pre_b: Vec<Element>,
    /// The pattern this witness separates.
    pub pattern: PatternSpec,
}

/// Builds a class map that merges the given groups of elements (each group
/// collapses to one class) and renumbers contiguously.
fn merge_classes(n: usize, groups: &[&[Element]]) -> Vec<Element> {
    let mut representative: Vec<Element> = (0..n as Element).collect();
    for group in groups {
        let rep = group[0];
        for &x in &group[1..] {
            representative[x as usize] = rep;
        }
    }
    // Renumber: classes in order of first occurrence.
    let mut class_of = vec![0 as Element; n];
    let mut next = 0 as Element;
    let mut assigned: Vec<Option<Element>> = vec![None; n];
    for x in 0..n {
        let rep = representative[x] as usize;
        let class = match assigned[rep] {
            Some(c) => c,
            None => {
                let c = next;
                next += 1;
                assigned[rep] = Some(c);
                c
            }
        };
        class_of[x] = class;
    }
    class_of
}

fn preimages(class_of: &[Element]) -> Vec<Element> {
    let classes = class_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut pre = vec![0 as Element; classes];
    let mut seen = vec![false; classes];
    for (x, &c) in class_of.iter().enumerate() {
        if !seen[c as usize] {
            seen[c as usize] = true;
            pre[c as usize] = x as Element;
        }
    }
    pre
}

/// Applies a quotient while *re-declaring* the constants: the quotient
/// structure gets a fresh vocabulary with `names.len()` constants, set to
/// the images of `old_constants`.
fn quotient_with_constants(
    s: &Structure,
    class_of: &[Element],
    names: &[&str],
    old_constants: &[Element],
) -> Structure {
    // Quotient over the bare graph vocabulary, then re-attach constants.
    let bare = {
        let mut g = kv_structures::Digraph::from_structure(s);
        g.set_distinguished(Vec::new());
        g.to_structure_with(Arc::new(Vocabulary::graph()))
    };
    let q = quotient(&bare, class_of);
    let mut vocab = Vocabulary::graph();
    for name in names {
        vocab.add_constant(*name);
    }
    let mut g = kv_structures::Digraph::from_structure(&q);
    g.set_distinguished(
        old_constants
            .iter()
            .map(|&c| class_of[c as usize])
            .collect(),
    );
    g.to_structure_with(Arc::new(vocab))
}

impl<'w> VariantWitness<'w> {
    /// The `H2` (path of length two) variant: identify `w2 ~ w3` in `A_k`
    /// and `s2 ~ s3` in `B_k`; distinguished nodes become
    /// `(start, middle, end)`.
    pub fn h2(base: &'w Thm66Witness) -> Self {
        let ca = base.a.constant_values().to_vec();
        let cb = base.b.constant_values().to_vec();
        let class_a = merge_classes(base.a.universe_size(), &[&[ca[1], ca[2]]]);
        let class_b = merge_classes(base.b.universe_size(), &[&[cb[1], cb[2]]]);
        let names = ["s1", "s2", "s3"];
        let a = quotient_with_constants(&base.a, &class_a, &names, &[ca[0], ca[1], ca[3]]);
        let b = quotient_with_constants(&base.b, &class_b, &names, &[cb[0], cb[1], cb[3]]);
        let pre_a = preimages(&class_a);
        let pre_b = preimages(&class_b);
        Self {
            base,
            a,
            b,
            class_a,
            class_b,
            pre_a,
            pre_b,
            pattern: PatternSpec::path_length_two(),
        }
    }

    /// The `H3` (2-cycle) variant: identify `w2 ~ w3` and `w4 ~ w1` in
    /// `A_k`; `s2 ~ s3` and `s4 ~ s1` in `B_k`; distinguished nodes become
    /// the two cycle endpoints.
    pub fn h3(base: &'w Thm66Witness) -> Self {
        let ca = base.a.constant_values().to_vec();
        let cb = base.b.constant_values().to_vec();
        let class_a = merge_classes(base.a.universe_size(), &[&[ca[1], ca[2]], &[ca[3], ca[0]]]);
        let class_b = merge_classes(base.b.universe_size(), &[&[cb[1], cb[2]], &[cb[3], cb[0]]]);
        let names = ["s1", "s2"];
        let a = quotient_with_constants(&base.a, &class_a, &names, &[ca[0], ca[1]]);
        let b = quotient_with_constants(&base.b, &class_b, &names, &[cb[0], cb[1]]);
        let pre_a = preimages(&class_a);
        let pre_b = preimages(&class_b);
        Self {
            base,
            a,
            b,
            class_a,
            class_b,
            pre_a,
            pre_b,
            pattern: PatternSpec::two_cycle(),
        }
    }

    /// The composed Duplicator: play the base simulation strategy through
    /// the identification maps.
    pub fn duplicator(&self) -> VariantDuplicator<'_> {
        VariantDuplicator {
            witness: self,
            inner: self.base.duplicator(),
        }
    }
}

/// Strategy wrapper for [`VariantWitness`].
pub struct VariantDuplicator<'v> {
    witness: &'v VariantWitness<'v>,
    inner: SimulationDuplicator<'v>,
}

impl DuplicatorStrategy for VariantDuplicator<'_> {
    fn respond(&mut self, position: &GamePosition, slot: usize, a: Element) -> Option<Element> {
        let w = self.witness;
        // Lift the position to the base structures.
        let mut lifted = GamePosition::new(position.slots.len());
        for (i, s) in position.slots.iter().enumerate() {
            if let Some((qa, qb)) = s {
                lifted.slots[i] = Some((w.pre_a[*qa as usize], w.pre_b[*qb as usize]));
            }
        }
        let base_a = w.pre_a[a as usize];
        let base_b = self.inner.respond(&lifted, slot, base_a)?;
        Some(w.class_b[base_b as usize])
    }
}

/// Lemma 6.3: lift an inexpressibility witness from a sub-pattern `F1` to
/// a super-pattern `F2 ⊇ F1` (same first `l` nodes; extra nodes and
/// edges). The extra edges are realized as *direct edges* between
/// distinguished nodes in both structures.
pub struct LiftedWitness {
    /// The enlarged `A` structure.
    pub a: Structure,
    /// The enlarged `B` structure.
    pub b: Structure,
    /// The super-pattern.
    pub pattern: PatternSpec,
    /// Number of original elements of `A` (new distinguished nodes follow).
    pub a_old: usize,
    /// Number of original elements of `B`.
    pub b_old: usize,
}

/// Builds the Lemma 6.3 lift. `f2` must contain the base pattern's edges
/// among its first `base_nodes` nodes; only the *extra* edges are
/// soldered on.
pub fn lift_witness(
    a: &Structure,
    b: &Structure,
    base_edges: &[(usize, usize)],
    f2: &PatternSpec,
) -> LiftedWitness {
    let l = a.constant_values().len();
    assert_eq!(l, b.constant_values().len());
    let extra_nodes = f2.node_count - l;
    let grow = |s: &Structure| -> (kv_structures::Digraph, Vec<u32>) {
        let mut g = kv_structures::Digraph::from_structure(s);
        let mut consts: Vec<u32> = s.constant_values().to_vec();
        for _ in 0..extra_nodes {
            consts.push(g.add_node());
        }
        for &(i, j) in &f2.edges {
            if base_edges.contains(&(i, j)) {
                continue;
            }
            g.add_edge(consts[i], consts[j]);
        }
        g.set_distinguished(consts.clone());
        (g, consts)
    };
    let vocab = Arc::new(Vocabulary::graph_with_constants(f2.node_count));
    let (ga, _) = grow(a);
    let (gb, _) = grow(b);
    LiftedWitness {
        a: ga.to_structure_with(Arc::clone(&vocab)),
        b: gb.to_structure_with(vocab),
        pattern: f2.clone(),
        a_old: a.universe_size(),
        b_old: b.universe_size(),
    }
}

/// Strategy wrapper for a lifted witness: inner strategy on old elements,
/// identity on the fresh distinguished nodes.
pub struct LiftedDuplicator<'v, D> {
    /// The lift.
    pub lift: &'v LiftedWitness,
    /// The base strategy.
    pub inner: D,
}

impl<D: DuplicatorStrategy> DuplicatorStrategy for LiftedDuplicator<'_, D> {
    fn respond(&mut self, position: &GamePosition, slot: usize, a: Element) -> Option<Element> {
        let lw = self.lift;
        if (a as usize) >= lw.a_old {
            // A fresh distinguished node: mirror it.
            let idx = a as usize - lw.a_old;
            return Some((lw.b_old + idx) as Element);
        }
        // Project the position onto the old elements.
        let mut projected = GamePosition::new(position.slots.len());
        for (i, s) in position.slots.iter().enumerate() {
            if let Some((pa, pb)) = s {
                if (*pa as usize) < lw.a_old && (*pb as usize) < lw.b_old {
                    projected.slots[i] = Some((*pa, *pb));
                }
            }
        }
        self.inner.respond(&projected, slot, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_homeo::brute_force_homeomorphism;
    use kv_pebble::play::{play_game, RandomSpoiler};
    use kv_pebble::Winner;
    use kv_structures::{Digraph, HomKind};

    #[test]
    fn h2_witness_query_separation() {
        let base = Thm66Witness::new(1);
        let v = VariantWitness::h2(&base);
        let ga = Digraph::from_structure(&v.a);
        let da = v.a.constant_values().to_vec();
        assert!(brute_force_homeomorphism(&v.pattern, &ga, &da));
        let gb = Digraph::from_structure(&v.b);
        let db = v.b.constant_values().to_vec();
        assert!(!brute_force_homeomorphism(&v.pattern, &gb, &db));
    }

    #[test]
    fn h3_witness_query_separation() {
        let base = Thm66Witness::new(1);
        let v = VariantWitness::h3(&base);
        let ga = Digraph::from_structure(&v.a);
        let da = v.a.constant_values().to_vec();
        assert!(brute_force_homeomorphism(&v.pattern, &ga, &da));
        let gb = Digraph::from_structure(&v.b);
        let db = v.b.constant_values().to_vec();
        assert!(!brute_force_homeomorphism(&v.pattern, &gb, &db));
    }

    #[test]
    fn h2_strategy_survives_random_spoilers() {
        let base = Thm66Witness::new(2);
        let v = VariantWitness::h2(&base);
        for seed in 0..10 {
            let mut sp = RandomSpoiler::new(v.a.universe_size(), seed);
            let mut dup = v.duplicator();
            let w = play_game(&v.a, &v.b, 2, HomKind::OneToOne, &mut sp, &mut dup, 300);
            assert_eq!(w, Winner::Duplicator, "seed {seed}");
        }
    }

    #[test]
    fn h3_strategy_survives_random_spoilers() {
        let base = Thm66Witness::new(2);
        let v = VariantWitness::h3(&base);
        for seed in 0..10 {
            let mut sp = RandomSpoiler::new(v.a.universe_size(), seed);
            let mut dup = v.duplicator();
            let w = play_game(&v.a, &v.b, 2, HomKind::OneToOne, &mut sp, &mut dup, 300);
            assert_eq!(w, Winner::Duplicator, "seed {seed}");
        }
    }

    #[test]
    fn lemma_6_3_lift_preserves_everything() {
        // F2 = H1 plus an edge 1 -> 2 (i.e. w2 -> w3).
        let f2 = PatternSpec {
            node_count: 4,
            edges: vec![(0, 1), (2, 3), (1, 2)],
        };
        let base = Thm66Witness::new(1);
        let lift = lift_witness(&base.a, &base.b, &[(0, 1), (2, 3)], &f2);
        // Query separation.
        let ga = Digraph::from_structure(&lift.a);
        let da = lift.a.constant_values().to_vec();
        assert!(brute_force_homeomorphism(&f2, &ga, &da));
        let gb = Digraph::from_structure(&lift.b);
        let db = lift.b.constant_values().to_vec();
        assert!(!brute_force_homeomorphism(&f2, &gb, &db));
        // Game half under play.
        for seed in 0..10 {
            let mut sp = RandomSpoiler::new(lift.a.universe_size(), seed);
            let mut dup = LiftedDuplicator {
                lift: &lift,
                inner: base.duplicator(),
            };
            let w = play_game(
                &lift.a,
                &lift.b,
                1,
                HomKind::OneToOne,
                &mut sp,
                &mut dup,
                200,
            );
            assert_eq!(w, Winner::Duplicator, "seed {seed}");
        }
    }

    #[test]
    fn lift_with_fresh_pattern_node() {
        // F2 = H1 plus a fifth node receiving an edge from node 3.
        let f2 = PatternSpec {
            node_count: 5,
            edges: vec![(0, 1), (2, 3), (3, 4)],
        };
        let base = Thm66Witness::new(1);
        let lift = lift_witness(&base.a, &base.b, &[(0, 1), (2, 3)], &f2);
        assert_eq!(lift.a.constant_values().len(), 5);
        let ga = Digraph::from_structure(&lift.a);
        let da = lift.a.constant_values().to_vec();
        assert!(brute_force_homeomorphism(&f2, &ga, &da));
        let gb = Digraph::from_structure(&lift.b);
        let db = lift.b.constant_values().to_vec();
        assert!(!brute_force_homeomorphism(&f2, &gb, &db));
    }
}
