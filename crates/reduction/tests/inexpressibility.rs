//! The negative results made concrete: instances where the game-based
//! evaluation procedure of Proposition 5.4 *must* err — because the
//! queries are not `L^k`-expressible — assembled from the Theorem 6.6
//! machinery.

use kv_homeo::even_path::even_path_patterns;
use kv_homeo::{brute_force_homeomorphism, PatternSpec};
use kv_pebble::{preceq, ExistentialGame, Winner};
use kv_reduction::even_reduction::DoubledWitness;
use kv_reduction::thm66::Thm66Witness;
use kv_structures::{Digraph, HomKind};

/// Theorem 6.6 at k = 1, end to end with the generic solver: `A ≼¹ B`
/// while the two-disjoint-paths query separates them — so the query is not
/// `L¹`-expressible. (For higher k the same is certified by the simulation
/// strategy; see `thm66.rs` tests.)
#[test]
fn two_disjoint_paths_not_l1_expressible_concrete() {
    let w = Thm66Witness::new(1);
    // Query separation.
    let a_graph = Digraph::from_structure(&w.a);
    assert!(brute_force_homeomorphism(
        &PatternSpec::two_disjoint_edges(),
        &a_graph,
        w.a.constant_values(),
    ));
    assert!(!w.gphi.has_two_disjoint_paths_brute());
    // Game half by the generic solver.
    assert!(preceq(&w.a, &w.b, 1));
}

/// Corollary 6.8 made concrete: on the doubled witness `(A*, B*)`, the
/// Proposition 5.4 procedure for the even simple path query — "some odd
/// pattern path `≼^k (B*, s1, t)`" — answers **true** at k = 1, even
/// though `B*` has no even simple path from `s1` to `t` (its preimage has
/// no disjoint path pair, and the reduction is exact). A polynomial
/// "algorithm" that would be correct were the query `L^1`-expressible is
/// thus caught over-approximating: the query is not `L^1`-expressible.
#[test]
fn even_path_game_procedure_overapproximates_on_doubled_witness() {
    let w = Thm66Witness::new(1);
    let d = DoubledWitness::build(&w.a, &w.b);
    // A* genuinely has an even simple path (transported witness — see
    // even_reduction tests), and some pattern embeds, so the pattern
    // generator is non-trivial here.
    // B* has none: its preimage B = G_{φ_1} has no disjoint-path pair.
    assert!(!w.gphi.has_two_disjoint_paths_brute());
    // Yet some odd-path pattern wins the 1-pebble game into B*.
    let accepted = even_path_patterns(d.b.universe_size()).iter().any(|p| {
        ExistentialGame::solve(p, &d.b, 1, HomKind::OneToOne).winner() == Winner::Duplicator
    });
    assert!(
        accepted,
        "the k=1 game procedure should accept B* — that is the point"
    );
}

/// The same procedure is *sound* in the other direction on A*: the
/// pattern matching the transported even path wins the game for every k
/// it is asked (Proposition 5.4's easy half, on the big structure).
#[test]
fn even_path_game_procedure_accepts_a_star() {
    let w = Thm66Witness::new(1);
    let d = DoubledWitness::build(&w.a, &w.b);
    let accepted = even_path_patterns(d.a.universe_size()).iter().any(|p| {
        ExistentialGame::solve(p, &d.a, 1, HomKind::OneToOne).winner() == Winner::Duplicator
    });
    assert!(accepted);
}

/// Tightness of Theorem 6.6: with k+1 pebbles the Spoiler beats the
/// simulation strategy by pinning all k variables through switch interiors
/// on the top path and then probing a clause segment whose literals are
/// all false — Case 4 then has no safe occurrence and the strategy
/// concedes (exactly the paper's φ_k-game analysis).
#[test]
fn simulation_strategy_boundary_at_k_plus_1() {
    use kv_pebble::play::{play_game, GamePosition, SpoilerMove, SpoilerStrategy};
    let k = 1usize;
    let w = Thm66Witness::new(k);

    // Scripted Spoiler: first pebble an interior of the c-a passage of the
    // switch for the positive literal's occurrence (commits x1); then
    // pebble the clause segment of whichever clause the commitment
    // falsifies. Offsets are computed from the layouts via the witness's
    // region arithmetic: positions 0 is s1, then switches descend.
    struct Scripted {
        moves: Vec<SpoilerMove>,
        next: usize,
    }
    impl SpoilerStrategy for Scripted {
        fn choose(&mut self, _position: &GamePosition) -> SpoilerMove {
            let mv = self.moves[self.next % self.moves.len()];
            self.next += 1;
            mv
        }
    }

    // Top path: offset 1 + 7*s + o for switch index (descending). Pick the
    // LAST switch in chain order (the first block after s1): offsets 1..=5
    // are its c-a interior. Its literal is the second clause's literal.
    let top_interior = 2u32; // inside the first traversed switch
                             // Bottom path: the clause segments sit at the very end. The bottom
                             // layout is: s3, 2 switches * 7, T, column (7), B, then per clause:
                             // n_j + 7 nodes; total bottom_len. The first clause segment's interior
                             // starts right after n_0.
    let bottom_len = w.bottom_len();
    // Positions (from the end): s4 is last, n_L second-to-last, the last
    // clause's 7-node segment before that. Probe both clause segments; one
    // of them must be falsified by the pinned variable.
    let clause2_interior = (w.top_len() + bottom_len - 3) as u32; // inside last clause segment
    let clause1_interior = (w.top_len() + bottom_len - 3 - 8) as u32; // inside first clause segment

    let mut spoiler = Scripted {
        moves: vec![
            SpoilerMove::Place {
                slot: 0,
                on: 1 + top_interior,
            },
            SpoilerMove::Place {
                slot: 1,
                on: clause1_interior,
            },
            SpoilerMove::Remove { slot: 1 },
            SpoilerMove::Place {
                slot: 1,
                on: clause2_interior,
            },
        ],
        next: 0,
    };
    let mut dup = w.duplicator();
    let outcome = play_game(
        &w.a,
        &w.b,
        k + 1,
        kv_structures::HomKind::OneToOne,
        &mut spoiler,
        &mut dup,
        4,
    );
    assert_eq!(
        outcome,
        kv_pebble::Winner::Spoiler,
        "k+1 pebbles must defeat the k-pebble simulation strategy"
    );
    // (The generic solver confirms the same verdict, but the (A_1, B_1)
    // arena at k = 2 has tens of millions of configurations — too slow for
    // the test suite; the scripted attack above is the verdict's witness.)
}
