//! Property-based tests for the reduction machinery.

use kv_pebble::cnf::{CnfFormula, Lit};
use kv_pebble::play::{play_game, RandomSpoiler};
use kv_pebble::Winner;
use kv_reduction::thm66::Thm66Witness;
use kv_reduction::GPhi;
use kv_structures::HomKind;
use proptest::prelude::*;

fn cnf_strategy() -> impl Strategy<Value = CnfFormula> {
    (1usize..=2).prop_flat_map(|vars| {
        proptest::collection::vec(
            proptest::collection::vec((0..vars, proptest::bool::ANY), 1..=2),
            1..=3,
        )
        .prop_map(move |clauses| {
            let clauses = clauses
                .into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                        .collect()
                })
                .collect();
            CnfFormula::new(vars, clauses)
        })
    })
}

/// A uniform-occurrence formula: a random subset of the complete formula's
/// clauses padded so that every literal occurs equally often is hard to
/// generate; instead use the complete formula on k vars with k in 1..=2.
fn uniform_formula_strategy() -> impl Strategy<Value = CnfFormula> {
    (1usize..=2).prop_map(CnfFormula::complete)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every satisfying assignment, the constructed witness paths are
    /// valid and node-disjoint; for non-satisfying assignments no witness
    /// is produced.
    #[test]
    fn witness_paths_iff_satisfying(f in cnf_strategy()) {
        let vars = f.var_count();
        let g = GPhi::build(f);
        for bits in 0u32..(1 << vars) {
            let assignment: Vec<bool> = (0..vars).map(|i| bits & (1 << i) != 0).collect();
            match g.witness_paths(&assignment) {
                Some((p1, p2)) => {
                    prop_assert!(g.formula.eval(&assignment));
                    prop_assert!(g.verify_witness(&p1, &p2).is_ok());
                }
                None => prop_assert!(!g.formula.eval(&assignment)),
            }
        }
    }

    /// SAT ⟺ two disjoint paths, brute-forced (small formulas only).
    #[test]
    fn reduction_equivalence(f in cnf_strategy()) {
        if f.clause_count() * f.clauses().iter().map(Vec::len).max().unwrap_or(0) <= 4 {
            let sat = f.brute_force_sat().is_some();
            let g = GPhi::build(f);
            prop_assert_eq!(g.has_two_disjoint_paths_brute(), sat);
        }
    }

    /// The simulation strategy survives random Spoilers on φ_k witnesses
    /// across seeds (k = formula vars, the paper's regime).
    #[test]
    fn simulation_strategy_robust(f in uniform_formula_strategy(), seed in 0u64..1000) {
        let k = f.var_count();
        let w = Thm66Witness::from_formula(k, f);
        let mut sp = RandomSpoiler::new(w.a.universe_size(), seed);
        let mut dup = w.duplicator();
        let outcome = play_game(&w.a, &w.b, k, HomKind::OneToOne, &mut sp, &mut dup, 200);
        prop_assert_eq!(outcome, Winner::Duplicator);
    }

    /// Construction size is exactly linear in the number of occurrences.
    #[test]
    fn gphi_size_formula(f in cnf_strategy()) {
        let occurrences: usize = f.clauses().iter().map(Vec::len).sum();
        let vars = f.var_count();
        let clauses = f.clause_count();
        let g = GPhi::build(f);
        prop_assert_eq!(
            g.graph.node_count(),
            4 + 32 * occurrences + 2 * vars + clauses + 1
        );
    }
}
