//! Randomized tests for the reduction machinery, seed-deterministic via
//! the in-tree [`SplitMix64`] generator.

use kv_pebble::cnf::{CnfFormula, Lit};
use kv_pebble::play::{play_game, RandomSpoiler};
use kv_pebble::Winner;
use kv_reduction::thm66::Thm66Witness;
use kv_reduction::GPhi;
use kv_structures::rng::SplitMix64;
use kv_structures::HomKind;

fn random_cnf(rng: &mut SplitMix64) -> CnfFormula {
    let vars = rng.gen_range(1usize..3);
    let clause_count = rng.gen_range(1usize..4);
    let clauses = (0..clause_count)
        .map(|_| {
            let len = rng.gen_range(1usize..3);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(0usize..vars);
                    if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect()
        })
        .collect();
    CnfFormula::new(vars, clauses)
}

/// For every satisfying assignment, the constructed witness paths are
/// valid and node-disjoint; for non-satisfying assignments no witness
/// is produced.
#[test]
fn witness_paths_iff_satisfying() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let f = random_cnf(&mut rng);
        let vars = f.var_count();
        let g = GPhi::build(f);
        for bits in 0u32..(1 << vars) {
            let assignment: Vec<bool> = (0..vars).map(|i| bits & (1 << i) != 0).collect();
            match g.witness_paths(&assignment) {
                Some((p1, p2)) => {
                    assert!(g.formula.eval(&assignment), "seed {seed}");
                    assert!(g.verify_witness(&p1, &p2).is_ok(), "seed {seed}");
                }
                None => assert!(!g.formula.eval(&assignment), "seed {seed}"),
            }
        }
    }
}

/// SAT ⟺ two disjoint paths, brute-forced (small formulas only).
#[test]
fn reduction_equivalence() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let f = random_cnf(&mut rng);
        if f.clause_count() * f.clauses().iter().map(Vec::len).max().unwrap_or(0) <= 4 {
            let sat = f.brute_force_sat().is_some();
            let g = GPhi::build(f);
            assert_eq!(g.has_two_disjoint_paths_brute(), sat, "seed {seed}");
        }
    }
}

/// The simulation strategy survives random Spoilers on φ_k witnesses
/// across seeds (k = formula vars, the paper's regime).
#[test]
fn simulation_strategy_robust() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(2000 + seed);
        let k = rng.gen_range(1usize..3);
        let f = CnfFormula::complete(k);
        let spoiler_seed = rng.gen_range(0u64..1000);
        let w = Thm66Witness::from_formula(k, f);
        let mut sp = RandomSpoiler::new(w.a.universe_size(), spoiler_seed);
        let mut dup = w.duplicator();
        let outcome = play_game(&w.a, &w.b, k, HomKind::OneToOne, &mut sp, &mut dup, 200);
        assert_eq!(outcome, Winner::Duplicator, "seed {seed}");
    }
}

/// Construction size is exactly linear in the number of occurrences.
#[test]
fn gphi_size_formula() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(3000 + seed);
        let f = random_cnf(&mut rng);
        let occurrences: usize = f.clauses().iter().map(Vec::len).sum();
        let vars = f.var_count();
        let clauses = f.clause_count();
        let g = GPhi::build(f);
        assert_eq!(
            g.graph.node_count(),
            4 + 32 * occurrences + 2 * vars + clauses + 1,
            "seed {seed}"
        );
    }
}
