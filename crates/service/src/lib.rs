//! Multi-tenant query serving over Datalog(≠) programs.
//!
//! This crate turns the workspace's query stack — [`ProgramQuery`]'s
//! compiled demand evaluation, the [`ClockCache`] eviction-governed memo
//! cache, and the [`Governor`] resource-governance layer — into a small
//! serving system: many concurrent reader threads answer boolean queries
//! for independent *tenants* while a single writer applies insert/retract
//! batches to the shared EDB.
//!
//! The three pillars, each mapped to a module:
//!
//! - **Snapshot isolation** ([`snapshot`]): the writer publishes an
//!   immutable [`Snapshot`] — the committed epoch, per-relation
//!   store-length marks, and a materialized [`Structure`] — at every batch
//!   commit. Readers clone an `Arc` to the current snapshot and evaluate
//!   against it lock-free, so reads never block writes, writes never block
//!   reads, and no reader can observe a half-applied batch: every answer
//!   is the fixpoint of exactly one committed epoch.
//! - **Shared result cache** ([`QueryService`]): one capacity-bounded
//!   [`ClockCache`] keyed by `(query, tuple)` and stamped with the
//!   snapshot epoch serves all tenants. Inserts are validated against the
//!   epoch the reader evaluated under ([`ClockCache::insert_if_epoch`]),
//!   so a batch committing mid-evaluation can only cost a memo, never
//!   poison one. Hits and misses are accounted per tenant.
//! - **QoS admission control** ([`qos`]): each tenant carries a policy —
//!   per-request step budget, per-request deadline, and an admission
//!   credit balance. Every admitted request runs under its own
//!   [`Governor`], so a pathological query costs its tenant an
//!   [`Interrupted::Deadline`] (or budget trip) instead of stalling the
//!   process, and a tenant that exhausts its credits is rejected
//!   deterministically at admission.
//!
//! A std-only line-protocol TCP driver ([`tcp`]) exposes the service to
//! external load generators; the bench harness's `--service` mode uses the
//! in-process API directly.
//!
//! [`ProgramQuery`]: kv_core::ProgramQuery
//! [`Governor`]: kv_structures::Governor
//! [`ClockCache`]: kv_structures::ClockCache
//! [`ClockCache::insert_if_epoch`]: kv_structures::ClockCache::insert_if_epoch
//! [`Interrupted::Deadline`]: kv_structures::Interrupted::Deadline
//! [`Structure`]: kv_structures::Structure

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod qos;
pub mod service;
pub mod snapshot;
pub mod tcp;

pub use qos::{RejectReason, TenantId, TenantPolicy};
pub use service::{
    QueryId, QueryService, Request, Response, ServiceBuilder, ServiceMetrics, TenantMetrics,
};
pub use snapshot::{Snapshot, SnapshotMark};
pub use tcp::{ServerHandle, TcpServer};
