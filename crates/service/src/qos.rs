//! Per-tenant quality-of-service policies and admission control.
//!
//! Every request names a [`TenantId`]; the tenant's [`TenantPolicy`] fixes
//! three independent guards:
//!
//! - a **per-request step budget**, enforced by the request's
//!   [`Governor`](kv_structures::Governor) — a runaway query trips
//!   [`Interrupted::Limit`](kv_structures::Interrupted::Limit) and only
//!   that request fails;
//! - a **per-request deadline** — a slow query gets
//!   [`Interrupted::Deadline`](kv_structures::Interrupted::Deadline), not
//!   a stalled process;
//! - an **admission credit balance**, debited by each request's measured
//!   governor steps (minimum one credit per admitted request, so even
//!   all-cache-hit traffic drains it). A tenant at zero credits is
//!   rejected *before* any evaluation — deterministic back-pressure that
//!   costs the service nothing.
//!
//! Credits are a coarse fairness mechanism, not a scheduler: the point is
//! that one tenant's burst cannot starve the cache or the CPU for everyone
//! else, and that the cutoff is reproducible (same request sequence, same
//! rejection point).

use std::time::Duration;

/// Identifies a registered tenant (dense index into the service's tenant
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Why a request was refused at admission, before any evaluation work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request named a tenant id the service does not know.
    UnknownTenant,
    /// The request named a query id the service does not know.
    UnknownQuery,
    /// The request tuple's arity does not match the query's goal arity.
    ArityMismatch,
    /// The tenant's admission credit balance is exhausted.
    OutOfCredits,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::UnknownQuery => "unknown-query",
            RejectReason::ArityMismatch => "arity-mismatch",
            RejectReason::OutOfCredits => "out-of-credits",
        };
        f.write_str(s)
    }
}

/// A tenant's resource envelope.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Display name (shows up in metrics and reports).
    pub name: String,
    /// Governor step budget per request; `u64::MAX` = unlimited.
    pub step_budget: u64,
    /// Wall-clock deadline per request; `None` = none.
    pub deadline: Option<Duration>,
    /// Admission credit balance, in governor steps. `u64::MAX` =
    /// effectively never rejected.
    pub credits: u64,
}

impl TenantPolicy {
    /// A policy with no limits at all — useful for trusted in-process
    /// callers and as a builder seed.
    pub fn unlimited(name: impl Into<String>) -> Self {
        TenantPolicy {
            name: name.into(),
            step_budget: u64::MAX,
            deadline: None,
            credits: u64::MAX,
        }
    }

    /// Caps each request's governor steps.
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = steps;
        self
    }

    /// Caps each request's wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the admission credit balance.
    pub fn with_credits(mut self, credits: u64) -> Self {
        self.credits = credits;
        self
    }
}

/// Mutable admission-time state for one tenant (guarded by the service's
/// admission lock).
#[derive(Debug, Clone)]
pub(crate) struct TenantAccount {
    /// Remaining admission credits.
    pub credits: u64,
}

impl TenantAccount {
    pub(crate) fn new(policy: &TenantPolicy) -> Self {
        TenantAccount {
            credits: policy.credits,
        }
    }

    /// True iff the tenant may be admitted (at least one credit left).
    pub(crate) fn admissible(&self) -> bool {
        self.credits > 0
    }

    /// Debits the measured cost of a completed request: `max(1, steps)`
    /// credits, saturating at zero.
    pub(crate) fn charge(&mut self, steps: u64) {
        if self.credits != u64::MAX {
            self.credits = self.credits.saturating_sub(steps.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_saturates_and_floors_at_one() {
        let policy = TenantPolicy::unlimited("t").with_credits(3);
        let mut acct = TenantAccount::new(&policy);
        assert!(acct.admissible());
        acct.charge(0); // cache hit still costs one credit
        assert_eq!(acct.credits, 2);
        acct.charge(10);
        assert_eq!(acct.credits, 0);
        assert!(!acct.admissible());
    }

    #[test]
    fn unlimited_credits_never_drain() {
        let mut acct = TenantAccount::new(&TenantPolicy::unlimited("t"));
        acct.charge(u64::MAX);
        assert!(acct.admissible());
    }
}
