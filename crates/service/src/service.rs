//! The in-process multi-tenant query service.
//!
//! One [`QueryService`] owns the EDB (per-relation [`MutableStore`]s
//! behind a writer lock), a set of registered [`ProgramQuery`]s, a tenant
//! table, a shared epoch-keyed result cache, and the currently published
//! [`Snapshot`]. The concurrency contract:
//!
//! - **Readers never block writers, writers never block readers.** A
//!   reader's only contact with shared mutable state is three short
//!   critical sections: cloning the published snapshot `Arc`, one cache
//!   lookup, and the admission debit. Evaluation itself runs against the
//!   immutable snapshot with no lock held.
//! - **No torn reads.** Every answer is computed against (or cached from)
//!   the fixpoint of exactly one committed epoch; the epoch is returned
//!   with the answer. A reader holding an old snapshot keeps it alive
//!   through the `Arc` for as long as its evaluation takes.
//! - **The cache can only memoize the current epoch.** Lookups require
//!   `cache epoch == snapshot epoch`; inserts revalidate the same equality
//!   under the cache lock ([`ClockCache::insert_if_epoch`]), so a batch
//!   committing mid-evaluation costs at most a lost memo.

use crate::qos::{RejectReason, TenantAccount, TenantId, TenantPolicy};
use crate::snapshot::Snapshot;
use kv_core::ProgramQuery;
use kv_datalog::Fact;
use kv_structures::{
    Budget, CacheStats, CancelToken, ClockCache, Deadline, Element, Governor, Interrupted,
    MutableStore, RelId, RetractOutcome, Structure, Vocabulary,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifies a registered query (dense index into the service's query
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

/// One tenant request: evaluate registered query `query` at `tuple`.
#[derive(Debug, Clone)]
pub struct Request {
    /// The requesting tenant.
    pub tenant: TenantId,
    /// The registered query to evaluate.
    pub query: QueryId,
    /// The goal tuple to test for membership.
    pub tuple: Vec<Element>,
}

/// The service's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The query was evaluated (or served from cache) against the
    /// fixpoint of epoch `epoch`.
    Answer {
        /// Whether the goal tuple holds.
        holds: bool,
        /// The committed epoch the answer reflects.
        epoch: u64,
        /// Whether the shared cache served the answer.
        cached: bool,
    },
    /// Refused at admission, before any evaluation.
    Rejected(RejectReason),
    /// Admitted but stopped by the request's own governor; the tenant's
    /// budget or deadline tripped, nobody else was affected.
    Interrupted(Interrupted),
}

/// What a committed batch did, as seen by the writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The epoch this batch committed as.
    pub epoch: u64,
    /// Inserts that changed the live tuple set (not multiplicity bumps).
    pub inserted: usize,
    /// Retracts that killed a live tuple (support reached zero).
    pub retracted: usize,
    /// Retracts of tuples that were not live (ignored, counted).
    pub retract_misses: usize,
}

/// A point-in-time copy of one tenant's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMetrics {
    /// The tenant's display name.
    pub name: String,
    /// Requests received (including rejected ones).
    pub requests: u64,
    /// Requests served from the shared cache.
    pub cache_hits: u64,
    /// Requests that evaluated (cache miss or epoch mismatch).
    pub cache_misses: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests stopped by the per-request governor.
    pub interrupted: u64,
    /// Admission credits debited so far.
    pub credits_spent: u64,
    /// Admission credits remaining (`u64::MAX` = unlimited).
    pub credits_left: u64,
}

/// A point-in-time copy of the service-wide counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Requests received.
    pub requests: u64,
    /// Requests answered (cached or evaluated).
    pub answered: u64,
    /// Answers served from the shared cache.
    pub cache_hits: u64,
    /// Answers that required evaluation.
    pub cache_misses: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests stopped by their governor.
    pub interrupted: u64,
    /// Batches committed by the writer.
    pub batches: u64,
    /// The currently published epoch.
    pub epoch: u64,
    /// Shared-cache counters (hits/misses/entries/evictions).
    pub cache: CacheStats,
    /// Per-tenant counters, indexed by [`TenantId`].
    pub tenants: Vec<TenantMetrics>,
}

/// Atomic per-tenant counters (lock-free on the read path).
#[derive(Debug, Default)]
struct TenantCounters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    interrupted: AtomicU64,
    credits_spent: AtomicU64,
}

#[derive(Debug, Default)]
struct ServiceCounters {
    requests: AtomicU64,
    answered: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    interrupted: AtomicU64,
    batches: AtomicU64,
}

/// A registered query: its display name, goal arity, and the compiled
/// [`ProgramQuery`] (shared immutably by all reader threads).
struct RegisteredQuery {
    name: String,
    arity: usize,
    query: Arc<ProgramQuery>,
}

/// The writer's exclusive state.
struct WriterState {
    stores: Vec<MutableStore>,
    epoch: u64,
}

type CacheKey = (u32, Box<[Element]>);

/// Builds a [`QueryService`]: the initial EDB, the query table, the
/// tenant table, and the cache capacity are fixed at build time (the EDB
/// keeps mutating through [`QueryService::apply_batch`]).
pub struct ServiceBuilder {
    initial: Structure,
    queries: Vec<RegisteredQuery>,
    by_name: HashMap<String, QueryId>,
    tenants: Vec<TenantPolicy>,
    cache_capacity: Option<usize>,
}

impl ServiceBuilder {
    /// Starts a service over a copy of `initial` as the epoch-0 EDB.
    pub fn new(initial: &Structure) -> Self {
        ServiceBuilder {
            initial: initial.clone(),
            queries: Vec::new(),
            by_name: HashMap::new(),
            tenants: Vec::new(),
            cache_capacity: None,
        }
    }

    /// Registers a query under `name`. The query's vocabulary must match
    /// the service EDB's.
    ///
    /// # Panics
    /// Panics on a duplicate name or a vocabulary mismatch.
    pub fn register_query(&mut self, name: impl Into<String>, query: ProgramQuery) -> QueryId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate query name {name:?}"
        );
        assert_eq!(
            query.program().vocabulary().as_ref(),
            self.initial.vocabulary().as_ref(),
            "query vocabulary must match the service EDB"
        );
        let arity = query.program().idb_arity(query.program().goal());
        let id = QueryId(self.queries.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.queries.push(RegisteredQuery {
            name,
            arity,
            query: Arc::new(query),
        });
        id
    }

    /// Registers a tenant with the given policy.
    pub fn register_tenant(&mut self, policy: TenantPolicy) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(policy);
        id
    }

    /// Bounds the shared result cache at `capacity` entries (clock
    /// eviction when full). Unbounded by default.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Builds the service and publishes the epoch-0 snapshot.
    pub fn build(self) -> QueryService {
        let vocabulary = Arc::clone(self.initial.vocabulary());
        let universe = self.initial.universe_size();
        let constants = self.initial.constant_values().to_vec();
        let mut stores: Vec<MutableStore> = vocabulary
            .relations()
            .map(|rel| MutableStore::new(vocabulary.arity(rel)))
            .collect();
        for rel in vocabulary.relations() {
            for tuple in self.initial.relation(rel).iter() {
                stores[rel.0].insert(tuple);
            }
            stores[rel.0].commit_epoch();
        }
        let snapshot = Snapshot::capture(&vocabulary, universe, &constants, &stores, 0);
        let cache = match self.cache_capacity {
            Some(cap) => ClockCache::with_capacity(cap),
            None => ClockCache::new(),
        };
        let accounts = self.tenants.iter().map(TenantAccount::new).collect();
        let tenant_counters = (0..self.tenants.len())
            .map(|_| TenantCounters::default())
            .collect();
        QueryService {
            vocabulary,
            universe,
            constants,
            queries: self.queries,
            by_name: self.by_name,
            tenants: self.tenants,
            tenant_counters,
            writer: Mutex::new(WriterState { stores, epoch: 0 }),
            published: Mutex::new(Arc::new(snapshot)),
            cache: Mutex::new(cache),
            accounts: Mutex::new(accounts),
            counters: ServiceCounters::default(),
        }
    }
}

/// A multi-tenant, snapshot-isolated query service (see the
/// [module docs](self)).
pub struct QueryService {
    vocabulary: Arc<Vocabulary>,
    universe: usize,
    constants: Vec<Element>,
    queries: Vec<RegisteredQuery>,
    by_name: HashMap<String, QueryId>,
    tenants: Vec<TenantPolicy>,
    tenant_counters: Vec<TenantCounters>,
    writer: Mutex<WriterState>,
    published: Mutex<Arc<Snapshot>>,
    cache: Mutex<ClockCache<CacheKey>>,
    accounts: Mutex<Vec<TenantAccount>>,
    counters: ServiceCounters,
}

impl QueryService {
    fn lock_published(&self) -> MutexGuard<'_, Arc<Snapshot>> {
        self.published
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_cache(&self) -> MutexGuard<'_, ClockCache<CacheKey>> {
        self.cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_accounts(&self) -> MutexGuard<'_, Vec<TenantAccount>> {
        self.accounts
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resolves a registered query by name.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.by_name.get(name).copied()
    }

    /// Registered query names, indexed by [`QueryId`].
    pub fn query_names(&self) -> Vec<&str> {
        self.queries.iter().map(|q| q.name.as_str()).collect()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The currently published snapshot. Cheap (`Arc` clone); the
    /// returned snapshot stays valid forever, it just stops being
    /// current.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.lock_published())
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.lock_published().epoch()
    }

    /// Resets a tenant's admission credit balance (operator action; the
    /// policy's configured balance is unchanged).
    pub fn set_credits(&self, tenant: TenantId, credits: u64) {
        if let Some(acct) = self.lock_accounts().get_mut(tenant.0 as usize) {
            acct.credits = credits;
        }
    }

    /// Serves one request end to end: admission → snapshot → cache →
    /// governed evaluation → epoch-validated memoization → debit.
    pub fn serve(&self, request: &Request) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let Some(tenant) = self.tenants.get(request.tenant.0 as usize) else {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Response::Rejected(RejectReason::UnknownTenant);
        };
        let tc = &self.tenant_counters[request.tenant.0 as usize];
        tc.requests.fetch_add(1, Ordering::Relaxed);
        let Some(registered) = self.queries.get(request.query.0 as usize) else {
            return self.reject(tc, RejectReason::UnknownQuery);
        };
        if request.tuple.len() != registered.arity {
            return self.reject(tc, RejectReason::ArityMismatch);
        }
        // Admission: a tenant at zero credits is turned away before the
        // service spends anything on it.
        if !self.lock_accounts()[request.tenant.0 as usize].admissible() {
            return self.reject(tc, RejectReason::OutOfCredits);
        }

        let snapshot = self.snapshot();
        let key: CacheKey = (request.query.0, request.tuple.clone().into_boxed_slice());

        // Cache lookup: only meaningful while the cache epoch equals the
        // snapshot epoch — a hit at a newer cache epoch would leak a
        // post-snapshot answer into this reader's view.
        let cached = {
            let mut cache = self.lock_cache();
            if cache.epoch() == snapshot.epoch() {
                cache.get(&key)
            } else {
                None
            }
        };
        if let Some(holds) = cached {
            self.charge(request.tenant, 0);
            tc.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.counters.answered.fetch_add(1, Ordering::Relaxed);
            return Response::Answer {
                holds,
                epoch: snapshot.epoch(),
                cached: true,
            };
        }
        tc.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Governed evaluation against the immutable snapshot — no lock
        // held, concurrent with every other reader and the writer.
        let gov = governor_for(tenant);
        let outcome = registered
            .query
            .try_eval_at_uncached(snapshot.edb(), &request.tuple, &gov);
        self.charge(request.tenant, gov.usage().steps);
        match outcome {
            Ok(holds) => {
                self.lock_cache()
                    .insert_if_epoch(key, holds, snapshot.epoch());
                self.counters.answered.fetch_add(1, Ordering::Relaxed);
                Response::Answer {
                    holds,
                    epoch: snapshot.epoch(),
                    cached: false,
                }
            }
            Err(reason) => {
                tc.interrupted.fetch_add(1, Ordering::Relaxed);
                self.counters.interrupted.fetch_add(1, Ordering::Relaxed);
                Response::Interrupted(reason)
            }
        }
    }

    fn reject(&self, tc: &TenantCounters, reason: RejectReason) -> Response {
        tc.rejected.fetch_add(1, Ordering::Relaxed);
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        Response::Rejected(reason)
    }

    /// Debits `steps` (minimum one credit) from the tenant's account.
    fn charge(&self, tenant: TenantId, steps: u64) {
        self.lock_accounts()[tenant.0 as usize].charge(steps);
        self.tenant_counters[tenant.0 as usize]
            .credits_spent
            .fetch_add(steps.max(1), Ordering::Relaxed);
    }

    /// Applies one batch — retracts first, then inserts, the canonical
    /// order — commits it as the next epoch, and publishes the new
    /// snapshot. Concurrent readers keep serving the previous snapshot
    /// until the publish instant and are never blocked.
    ///
    /// # Panics
    /// Panics on a fact whose arity or elements do not fit the EDB.
    pub fn apply_batch(&self, inserts: &[Fact], retracts: &[Fact]) -> BatchOutcome {
        let mut writer = self.lock_writer();
        let mut retracted = 0usize;
        let mut retract_misses = 0usize;
        for (rel, tuple) in retracts {
            self.validate(*rel, tuple);
            match writer.stores[rel.0].retract(tuple) {
                RetractOutcome::Died(_) => retracted += 1,
                RetractOutcome::Decremented(_) => {}
                RetractOutcome::Absent => retract_misses += 1,
            }
        }
        let mut inserted = 0usize;
        for (rel, tuple) in inserts {
            self.validate(*rel, tuple);
            if writer.stores[rel.0].insert(tuple).is_new() {
                inserted += 1;
            }
        }
        for store in &mut writer.stores {
            store.commit_epoch();
        }
        writer.epoch += 1;
        let epoch = writer.epoch;
        let snapshot = Arc::new(Snapshot::capture(
            &self.vocabulary,
            self.universe,
            &self.constants,
            &writer.stores,
            epoch,
        ));
        {
            // Publish snapshot and bump the cache epoch together, so the
            // pair (published snapshot, cache epoch) only ever advances in
            // lock-step. A reader that grabbed the old snapshot just
            // before the publish sees a cache-epoch mismatch and simply
            // evaluates uncached; its insert is rejected by the epoch
            // check.
            let mut published = self.lock_published();
            let mut cache = self.lock_cache();
            *published = snapshot;
            cache.bump_epoch();
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        BatchOutcome {
            epoch,
            inserted,
            retracted,
            retract_misses,
        }
    }

    fn validate(&self, rel: RelId, tuple: &[Element]) {
        assert_eq!(
            tuple.len(),
            self.vocabulary.arity(rel),
            "fact arity must match the relation"
        );
        assert!(
            tuple.iter().all(|&e| (e as usize) < self.universe),
            "fact elements must lie in the universe"
        );
    }

    /// A point-in-time copy of every counter.
    pub fn metrics(&self) -> ServiceMetrics {
        let accounts = self.lock_accounts().clone();
        let tenants = self
            .tenants
            .iter()
            .zip(&self.tenant_counters)
            .zip(&accounts)
            .map(|((policy, tc), acct)| TenantMetrics {
                name: policy.name.clone(),
                requests: tc.requests.load(Ordering::Relaxed),
                cache_hits: tc.cache_hits.load(Ordering::Relaxed),
                cache_misses: tc.cache_misses.load(Ordering::Relaxed),
                rejected: tc.rejected.load(Ordering::Relaxed),
                interrupted: tc.interrupted.load(Ordering::Relaxed),
                credits_spent: tc.credits_spent.load(Ordering::Relaxed),
                credits_left: acct.credits,
            })
            .collect();
        ServiceMetrics {
            requests: self.counters.requests.load(Ordering::Relaxed),
            answered: self.counters.answered.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            interrupted: self.counters.interrupted.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            epoch: self.epoch(),
            cache: self.lock_cache().stats(),
            tenants,
        }
    }
}

/// Builds the per-request governor from a tenant's policy.
fn governor_for(policy: &TenantPolicy) -> Governor {
    let budget = if policy.step_budget == u64::MAX {
        Budget::UNLIMITED
    } else {
        Budget::steps(policy.step_budget)
    };
    let deadline = match policy.deadline {
        Some(d) => Deadline::within(d),
        None => Deadline::NONE,
    };
    Governor::new(budget, deadline, CancelToken::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_core::ProgramQuery;
    use kv_datalog::programs::transitive_closure;
    use kv_structures::generators::directed_path;

    fn tc_service(tenants: Vec<TenantPolicy>) -> (QueryService, QueryId, Vec<TenantId>) {
        let mut builder = ServiceBuilder::new(&directed_path(4));
        let q = builder.register_query(
            "tc",
            ProgramQuery::at_tuple("tc", transitive_closure(), vec![0, 3]),
        );
        let ids = tenants
            .into_iter()
            .map(|t| builder.register_tenant(t))
            .collect();
        (builder.build(), q, ids)
    }

    fn req(tenant: TenantId, query: QueryId, tuple: Vec<Element>) -> Request {
        Request {
            tenant,
            query,
            tuple,
        }
    }

    #[test]
    fn serves_any_goal_tuple_and_memoizes_repeats() {
        let (svc, q, ids) = tc_service(vec![TenantPolicy::unlimited("t0")]);
        let first = svc.serve(&req(ids[0], q, vec![0, 3]));
        assert_eq!(
            first,
            Response::Answer {
                holds: true,
                epoch: 0,
                cached: false
            }
        );
        let second = svc.serve(&req(ids[0], q, vec![0, 3]));
        assert_eq!(
            second,
            Response::Answer {
                holds: true,
                epoch: 0,
                cached: true
            }
        );
        // A different goal tuple through the same compiled query.
        let reverse = svc.serve(&req(ids[0], q, vec![3, 0]));
        assert_eq!(
            reverse,
            Response::Answer {
                holds: false,
                epoch: 0,
                cached: false
            }
        );
        let m = svc.metrics();
        assert_eq!((m.requests, m.answered), (3, 3));
        assert_eq!((m.cache_hits, m.cache_misses), (1, 2));
    }

    #[test]
    fn batches_advance_the_epoch_and_stale_out_the_cache() {
        let (svc, q, ids) = tc_service(vec![TenantPolicy::unlimited("t0")]);
        assert_eq!(
            svc.serve(&req(ids[0], q, vec![3, 0])),
            Response::Answer {
                holds: false,
                epoch: 0,
                cached: false
            }
        );
        let e = RelId(0);
        let outcome = svc.apply_batch(&[(e, vec![3, 0])], &[]);
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.inserted, 1);
        // The pre-batch cached answer must not leak past the commit.
        assert_eq!(
            svc.serve(&req(ids[0], q, vec![3, 0])),
            Response::Answer {
                holds: true,
                epoch: 1,
                cached: false
            }
        );
        let outcome = svc.apply_batch(&[], &[(e, vec![3, 0])]);
        assert_eq!((outcome.epoch, outcome.retracted), (2, 1));
        assert_eq!(
            svc.serve(&req(ids[0], q, vec![3, 0])),
            Response::Answer {
                holds: false,
                epoch: 2,
                cached: false
            }
        );
    }

    #[test]
    fn out_of_credits_rejects_deterministically() {
        let (svc, q, ids) = tc_service(vec![
            TenantPolicy::unlimited("bounded").with_credits(1),
            TenantPolicy::unlimited("free"),
        ]);
        assert!(matches!(
            svc.serve(&req(ids[0], q, vec![0, 3])),
            Response::Answer { .. }
        ));
        // The single credit is spent: every further request is refused at
        // admission, and other tenants are untouched.
        for _ in 0..3 {
            assert_eq!(
                svc.serve(&req(ids[0], q, vec![0, 3])),
                Response::Rejected(RejectReason::OutOfCredits)
            );
        }
        assert!(matches!(
            svc.serve(&req(ids[1], q, vec![0, 3])),
            Response::Answer { .. }
        ));
        let m = svc.metrics();
        assert_eq!(m.rejected, 3);
        assert_eq!(m.tenants[0].rejected, 3);
        assert_eq!(m.tenants[0].credits_left, 0);
        assert_eq!(m.tenants[1].rejected, 0);
        // Refilling re-admits.
        svc.set_credits(ids[0], 10);
        assert!(matches!(
            svc.serve(&req(ids[0], q, vec![0, 3])),
            Response::Answer { .. }
        ));
    }

    #[test]
    fn a_tripped_budget_hurts_only_its_own_request() {
        let (svc, q, ids) = tc_service(vec![
            TenantPolicy::unlimited("tiny").with_step_budget(1),
            TenantPolicy::unlimited("free"),
        ]);
        assert!(matches!(
            svc.serve(&req(ids[0], q, vec![0, 3])),
            Response::Interrupted(Interrupted::Limit(_))
        ));
        assert!(matches!(
            svc.serve(&req(ids[1], q, vec![0, 3])),
            Response::Answer { holds: true, .. }
        ));
        let m = svc.metrics();
        assert_eq!(m.interrupted, 1);
        assert_eq!(m.tenants[0].interrupted, 1);
        assert_eq!(m.tenants[1].interrupted, 0);
    }

    #[test]
    fn malformed_requests_are_rejected_not_panics() {
        let (svc, q, ids) = tc_service(vec![TenantPolicy::unlimited("t0")]);
        assert_eq!(
            svc.serve(&req(TenantId(9), q, vec![0, 3])),
            Response::Rejected(RejectReason::UnknownTenant)
        );
        assert_eq!(
            svc.serve(&req(ids[0], QueryId(9), vec![0, 3])),
            Response::Rejected(RejectReason::UnknownQuery)
        );
        assert_eq!(
            svc.serve(&req(ids[0], q, vec![0])),
            Response::Rejected(RejectReason::ArityMismatch)
        );
        assert_eq!(svc.metrics().rejected, 3);
    }

    #[test]
    fn bounded_cache_evicts_but_keeps_answering() {
        let mut builder = ServiceBuilder::new(&directed_path(6)).cache_capacity(2);
        let q = builder.register_query(
            "tc",
            ProgramQuery::at_tuple("tc", transitive_closure(), vec![0, 5]),
        );
        let t = builder.register_tenant(TenantPolicy::unlimited("t0"));
        let svc = builder.build();
        for u in 0..6u32 {
            for v in 0..6u32 {
                let expect = u < v;
                match svc.serve(&req(t, q, vec![u, v])) {
                    Response::Answer { holds, .. } => assert_eq!(holds, expect, "{u}->{v}"),
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        let m = svc.metrics();
        assert!(m.cache.entries <= 2);
        assert!(m.cache.evictions > 0);
    }
}
