//! Immutable point-in-time views of the served EDB.
//!
//! The writer applies batches to per-relation [`MutableStore`]s (support
//! counts, tombstones) and, at each commit, *publishes* a [`Snapshot`]:
//! the committed epoch, one [`SnapshotMark`] per relation recording the
//! append-only arena length and live-tuple count at that instant — the
//! "store-length mark" that identifies a semi-naive stage — and a
//! materialized [`Structure`] holding exactly the live tuples. Readers
//! hold the snapshot through an `Arc`, so a snapshot outlives its epoch
//! for as long as any in-flight request still evaluates against it.
//!
//! [`MutableStore`]: kv_structures::MutableStore

use kv_structures::{Element, MutableStore, Structure, Vocabulary};
use std::sync::Arc;

/// Per-relation store-length mark captured at a commit point.
///
/// Because the underlying [`TupleStore`](kv_structures::TupleStore) arena
/// is append-only, `arena_len` alone pins the set of tuple ids that
/// existed at the commit; `live` additionally records how many of them
/// carried positive support (retractions tombstone, they never shift ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMark {
    /// Length of the relation's append-only tuple arena at the commit.
    pub arena_len: u32,
    /// Number of live (positive-support) tuples at the commit.
    pub live: u32,
}

/// An immutable view of the EDB at one committed epoch.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    marks: Vec<SnapshotMark>,
    edb: Structure,
}

impl Snapshot {
    /// Captures the current state of the writer's stores as a snapshot at
    /// `epoch`. Materializes a fresh [`Structure`] from the live tuples;
    /// `O(live EDB)`, paid once per committed batch by the writer, never
    /// by readers.
    pub fn capture(
        vocabulary: &Arc<Vocabulary>,
        universe: usize,
        constants: &[Element],
        stores: &[MutableStore],
        epoch: u64,
    ) -> Self {
        let mut edb = Structure::new(Arc::clone(vocabulary), universe);
        for (c, &value) in vocabulary.constants().zip(constants) {
            edb.set_constant(c, value);
        }
        let mut marks = Vec::with_capacity(stores.len());
        for rel in vocabulary.relations() {
            let store = &stores[rel.0];
            for tuple in store.live_iter() {
                edb.insert(rel, tuple);
            }
            marks.push(SnapshotMark {
                arena_len: store.len() as u32,
                live: store.live_len() as u32,
            });
        }
        Snapshot { epoch, marks, edb }
    }

    /// The committed epoch this snapshot reflects (0 = initial load).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-relation store-length marks, indexed by `RelId`.
    pub fn marks(&self) -> &[SnapshotMark] {
        &self.marks
    }

    /// The materialized EDB at this epoch. Readers evaluate queries
    /// against this structure; it never changes after capture.
    pub fn edb(&self) -> &Structure {
        &self.edb
    }

    /// Total live tuples across all relations at this epoch.
    pub fn live_tuples(&self) -> usize {
        self.marks.iter().map(|m| m.live as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Arc<Vocabulary> {
        let mut v = Vocabulary::new();
        v.add_relation("e", 2);
        Arc::new(v)
    }

    #[test]
    fn capture_sees_only_live_tuples_and_records_marks() {
        let v = vocab();
        let mut store = MutableStore::new(2);
        store.insert(&[0, 1]);
        store.insert(&[1, 2]);
        store.retract(&[1, 2]);
        let snap = Snapshot::capture(&v, 4, &[], &[store], 3);
        assert_eq!(snap.epoch(), 3);
        assert_eq!(
            snap.marks(),
            &[SnapshotMark {
                arena_len: 2,
                live: 1
            }]
        );
        assert_eq!(snap.live_tuples(), 1);
        let rel = v.relations().next().unwrap();
        assert!(snap.edb().relation(rel).contains(&[0, 1]));
        assert!(!snap.edb().relation(rel).contains(&[1, 2]));
    }
}
