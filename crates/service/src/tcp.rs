//! A std-only TCP front end for [`QueryService`].
//!
//! One thread accepts connections; each connection gets its own handler
//! thread (requests on one connection are served in order, connections
//! are served concurrently — the service itself is the concurrency
//! boundary, not the transport). The protocol is line-oriented ASCII, one
//! request per line:
//!
//! ```text
//! Q <tenant-id> <query-name> <elem> <elem> ...   evaluate a query
//! STATS                                          one-line counter dump
//! QUIT                                           close the connection
//! ```
//!
//! and one response line per request:
//!
//! ```text
//! ANSWER <true|false> epoch=<e> cached=<0|1>
//! REJECTED <reason>
//! INTERRUPTED <limit|deadline|cancelled>
//! ERR <message>
//! ```

use crate::qos::TenantId;
use crate::service::{QueryService, Request, Response};
use kv_structures::Interrupted;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(10);

/// The TCP front end; see the [module docs](self) for the protocol.
pub struct TcpServer;

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` until [`ServerHandle::shutdown`].
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || accept_loop(listener, service, accept_stop));
        Ok(ServerHandle {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }
}

/// Handle to a running [`TcpServer`]; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the connection handlers, and joins every
    /// server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, service: Arc<QueryService>, stop: Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &stop);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one connection until EOF, `QUIT`, or server shutdown.
fn handle_connection(
    stream: TcpStream,
    service: &QueryService,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        // `read_line` appends, so a request split across read timeouts
        // accumulates in `line` until its newline arrives; the buffer is
        // cleared only after a complete line is processed.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.ends_with('\n') => {}
            Ok(_) => break, // EOF mid-line: drop the fragment
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) => return Err(e),
        }
        let request = line.trim().to_string();
        line.clear();
        let request = request.as_str();
        if request.is_empty() {
            continue;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            break;
        }
        let reply = dispatch(service, request);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Parses and serves one request line, rendering the response line.
fn dispatch(service: &QueryService, request: &str) -> String {
    if request.eq_ignore_ascii_case("STATS") {
        let m = service.metrics();
        return format!(
            "STATS requests={} answered={} hits={} misses={} rejected={} interrupted={} epoch={}",
            m.requests,
            m.answered,
            m.cache_hits,
            m.cache_misses,
            m.rejected,
            m.interrupted,
            m.epoch
        );
    }
    let mut parts = request.split_ascii_whitespace();
    if !parts
        .next()
        .is_some_and(|verb| verb.eq_ignore_ascii_case("Q"))
    {
        return "ERR unknown verb (expected Q, STATS, or QUIT)".into();
    }
    let Some(tenant) = parts.next().and_then(|t| t.parse::<u32>().ok()) else {
        return "ERR bad tenant id".into();
    };
    let Some(name) = parts.next() else {
        return "ERR missing query name".into();
    };
    let Some(query) = service.query_id(name) else {
        return format!("ERR unknown query {name:?}");
    };
    let mut tuple = Vec::new();
    for p in parts {
        match p.parse::<u32>() {
            Ok(e) => tuple.push(e),
            Err(_) => return format!("ERR bad tuple element {p:?}"),
        }
    }
    match service.serve(&Request {
        tenant: TenantId(tenant),
        query,
        tuple,
    }) {
        Response::Answer {
            holds,
            epoch,
            cached,
        } => format!("ANSWER {holds} epoch={epoch} cached={}", u8::from(cached)),
        Response::Rejected(reason) => format!("REJECTED {reason}"),
        Response::Interrupted(Interrupted::Limit(_)) => "INTERRUPTED limit".into(),
        Response::Interrupted(Interrupted::Deadline) => "INTERRUPTED deadline".into(),
        Response::Interrupted(Interrupted::Cancelled) => "INTERRUPTED cancelled".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::TenantPolicy;
    use crate::service::ServiceBuilder;
    use kv_core::ProgramQuery;
    use kv_datalog::programs::transitive_closure;
    use kv_structures::generators::directed_path;

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn tcp_roundtrip_serves_queries_and_stats() {
        let mut builder = ServiceBuilder::new(&directed_path(4));
        builder.register_query(
            "tc",
            ProgramQuery::at_tuple("tc", transitive_closure(), vec![0, 3]),
        );
        builder.register_tenant(TenantPolicy::unlimited("t0"));
        builder.register_tenant(TenantPolicy::unlimited("broke").with_credits(0));
        let handle = TcpServer::bind(Arc::new(builder.build()), "127.0.0.1:0").unwrap();

        let mut client = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(
            roundtrip(&mut client, "Q 0 tc 0 3"),
            "ANSWER true epoch=0 cached=0"
        );
        assert_eq!(
            roundtrip(&mut client, "Q 0 tc 0 3"),
            "ANSWER true epoch=0 cached=1"
        );
        assert_eq!(
            roundtrip(&mut client, "Q 1 tc 0 3"),
            "REJECTED out-of-credits"
        );
        assert_eq!(
            roundtrip(&mut client, "Q 0 nope 0 3"),
            "ERR unknown query \"nope\""
        );
        let stats = roundtrip(&mut client, "STATS");
        assert!(stats.starts_with("STATS requests=3"), "{stats}");

        // A second concurrent connection is served independently.
        let mut other = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(
            roundtrip(&mut other, "Q 0 tc 3 0"),
            "ANSWER false epoch=0 cached=0"
        );

        roundtrip(&mut client, "QUIT"); // no reply expected; next read hits EOF
        handle.shutdown();
    }
}
