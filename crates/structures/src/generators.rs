//! Deterministic generators for the structure families used in the paper's
//! examples and in the benchmark workloads.
//!
//! Everything randomized takes an explicit seed so that tests, experiments
//! and benchmarks are reproducible.

use crate::graph::Digraph;
use crate::rng::SplitMix64;
use crate::structure::Structure;
use crate::vocabulary::Vocabulary;
use std::sync::Arc;

/// A directed path with `n` nodes `0 -> 1 -> … -> n-1` as a structure over
/// `{E/2}` (Example 4.4's building block).
pub fn directed_path(n: usize) -> Structure {
    directed_path_graph(n).to_structure()
}

/// A directed path with `n` nodes as a [`Digraph`].
pub fn directed_path_graph(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for i in 1..n {
        g.add_edge((i - 1) as u32, i as u32);
    }
    g
}

/// A directed cycle with `n` nodes `0 -> 1 -> … -> n-1 -> 0`.
pub fn directed_cycle(n: usize) -> Structure {
    directed_cycle_graph(n).to_structure()
}

/// A directed cycle with `n` nodes as a [`Digraph`].
pub fn directed_cycle_graph(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for i in 0..n {
        g.add_edge(i as u32, ((i + 1) % n) as u32);
    }
    g
}

/// The structure of Example 4.5's side `A`: two *disjoint* directed paths,
/// each with `2n + 1` vertices.
pub fn two_disjoint_paths(n: usize) -> Structure {
    let len = 2 * n + 1;
    let mut g = Digraph::new(2 * len);
    for i in 1..len {
        g.add_edge((i - 1) as u32, i as u32);
        g.add_edge((len + i - 1) as u32, (len + i) as u32);
    }
    g.to_structure()
}

/// The structure of Example 4.5's side `B`: two directed paths, each with
/// `2n + 1` vertices, intersecting only at their `(n+1)`-st vertex.
pub fn two_crossing_paths(n: usize) -> Structure {
    let len = 2 * n + 1;
    // Nodes 0..len is the first path; the second path reuses node `n`
    // (the (n+1)-st vertex, 0-indexed position n) and has fresh nodes
    // elsewhere.
    let mut g = Digraph::new(len);
    for i in 1..len {
        g.add_edge((i - 1) as u32, i as u32);
    }
    let mut second: Vec<u32> = Vec::with_capacity(len);
    for i in 0..len {
        if i == n {
            second.push(n as u32);
        } else {
            second.push(g.add_node());
        }
    }
    for i in 1..len {
        g.add_edge(second[i - 1], second[i]);
    }
    g.to_structure()
}

/// A strict total order `<` on `n` elements, over the vocabulary `{< / 2}`
/// (Example 3.3).
pub fn total_order(n: usize) -> Structure {
    let mut v = Vocabulary::new();
    let lt = v.add_relation("<", 2);
    let mut s = Structure::new(Arc::new(v), n.max(1));
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            s.insert(lt, &[i, j]);
        }
    }
    s
}

/// A random digraph on `n` nodes where each ordered pair `(u, v)`, `u != v`,
/// is an edge independently with probability `p` (G(n, p) for digraphs).
pub fn random_digraph(n: usize, p: f64, seed: u64) -> Digraph {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut g = Digraph::new(n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random DAG on `n` nodes: edges only from lower to higher ids, each
/// present with probability `p`. Used by the Theorem 6.2 (acyclic input)
/// experiments.
pub fn random_dag(n: usize, p: f64, seed: u64) -> Digraph {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut g = Digraph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A "layered" random DAG: `layers` layers of `width` nodes; edges go from
/// each layer to the next with probability `p`. Produces graphs where
/// disjoint-path questions are non-trivial but structured.
pub fn layered_dag(layers: usize, width: usize, p: f64, seed: u64) -> Digraph {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut g = Digraph::new(layers * width);
    for l in 1..layers {
        for a in 0..width {
            for b in 0..width {
                if rng.gen_bool(p) {
                    g.add_edge(((l - 1) * width + a) as u32, (l * width + b) as u32);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::RelId;

    #[test]
    fn path_shape() {
        let p = directed_path(5);
        assert_eq!(p.universe_size(), 5);
        assert_eq!(p.tuple_count(), 4);
        assert!(p.contains(RelId(0), &[0, 1]));
        assert!(!p.contains(RelId(0), &[1, 0]));
    }

    #[test]
    fn cycle_shape() {
        let c = directed_cycle(4);
        assert_eq!(c.tuple_count(), 4);
        assert!(c.contains(RelId(0), &[3, 0]));
    }

    #[test]
    fn disjoint_vs_crossing_paths_counts() {
        // n = 2: paths of 5 vertices each.
        let a = two_disjoint_paths(2);
        let b = two_crossing_paths(2);
        assert_eq!(a.universe_size(), 10);
        assert_eq!(b.universe_size(), 9); // one shared vertex
        assert_eq!(a.tuple_count(), 8);
        assert_eq!(b.tuple_count(), 8);
    }

    #[test]
    fn crossing_paths_share_middle() {
        let b = two_crossing_paths(1); // paths of 3 vertices sharing vertex 1
        let g = Digraph::from_structure(&b);
        // Shared node must have in-degree 2 and out-degree 2.
        let shared: Vec<u32> = g
            .nodes()
            .filter(|&v| g.in_degree(v) == 2 && g.out_degree(v) == 2)
            .collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn total_order_is_transitive_and_irreflexive() {
        let s = total_order(5);
        let lt = RelId(0);
        assert_eq!(s.tuple_count(), 10);
        for i in 0..5u32 {
            assert!(!s.contains(lt, &[i, i]));
            for j in 0..5u32 {
                for k in 0..5u32 {
                    if s.contains(lt, &[i, j]) && s.contains(lt, &[j, k]) {
                        assert!(s.contains(lt, &[i, k]));
                    }
                }
            }
        }
    }

    #[test]
    fn random_digraph_is_seed_deterministic() {
        let a = random_digraph(10, 0.3, 42);
        let b = random_digraph(10, 0.3, 42);
        let c = random_digraph(10, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_dag_is_acyclic_by_construction() {
        let g = random_dag(20, 0.4, 7);
        for (u, v) in g.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn layered_dag_edges_respect_layers() {
        let g = layered_dag(3, 4, 0.8, 1);
        assert_eq!(g.node_count(), 12);
        for (u, v) in g.edges() {
            assert_eq!(v / 4, u / 4 + 1);
        }
    }
}
