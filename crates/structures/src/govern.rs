//! Engine-wide resource governance: budgets, deadlines, and cooperative
//! cancellation for every long-running kernel in the workspace.
//!
//! PR 2 gave the Datalog evaluator tuple/stage [`Limits`]; this module
//! generalizes that into one governance surface shared by *all* solvers —
//! the semi-naive Datalog engine, the `L^k` fixpoint materializer, the
//! existential pebble-game arenas, the max-flow homeomorphism solver, and
//! the Theorem 6.6 reduction builders:
//!
//! - a [`Budget`] bounds countable work (tuples interned, game positions
//!   generated, fixpoint stages, abstract solver steps, bytes of arena
//!   growth);
//! - a [`Deadline`] bounds wall-clock time, checked amortized (one
//!   monotonic-clock read per [`CHECK_STRIDE`] steps) so hot loops stay
//!   fast;
//! - a [`CancelToken`] is an atomic, cloneable flag polled cooperatively
//!   by every worklist and fixpoint loop, including the parallel workers
//!   driven by [`crate::par`].
//!
//! All three interrupt sources are unified under one error,
//! [`Interrupted`], and one shared handle, the [`Governor`]. A `Governor`
//! is `Sync`: parallel workers share it by reference and charge work
//! through worker-local [`Meter`]s that flush in batches, so the hot-path
//! cost is one local increment and branch per unit of work.
//!
//! **Resumability contract.** Every governed solver entry point
//! (`try_*`) returns, on interrupt, a checkpoint capturing the last
//! *committed* boundary of its computation (a completed Datalog stage, a
//! completed fixpoint iteration, a consistent arena worklist state).
//! Resuming a checkpoint — with a fresh or relaxed governor — continues
//! the run and produces a result identical to an uninterrupted run,
//! tuple-id by tuple-id. Budget counters live in the `Governor` instance,
//! so resuming with the *same* exhausted governor re-trips immediately;
//! pass a new one to make progress. The [`chaos`] submodule provides the
//! deterministic fault-injection schedules the test suite uses to verify
//! this contract across all solvers.

use crate::store::LimitExceeded;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many steps pass between amortized deadline/cancellation checks
/// inside [`Governor::step`].
pub const CHECK_STRIDE: u64 = 1024;

/// A governed computation was interrupted before completion.
///
/// Interruption is *graceful*: governed solvers never panic on
/// interruption and return a resumable checkpoint alongside this reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupted {
    /// A [`Budget`] counter was exhausted.
    Limit(LimitExceeded),
    /// The [`Deadline`] passed.
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupted::Limit(l) => write!(f, "interrupted: {l}"),
            Interrupted::Deadline => write!(f, "interrupted: deadline expired"),
            Interrupted::Cancelled => write!(f, "interrupted: cancelled"),
        }
    }
}

impl std::error::Error for Interrupted {}

impl From<LimitExceeded> for Interrupted {
    fn from(l: LimitExceeded) -> Self {
        Interrupted::Limit(l)
    }
}

/// Budgets for countable work. `None` means unlimited.
///
/// The counters are deliberately engine-agnostic: the Datalog evaluator
/// charges tuples and stages, the game arenas charge positions and bytes,
/// and everything charges abstract `steps` (join probes, worklist pops,
/// search-tree nodes), so a single step budget bounds any solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum tuples interned into result stores.
    pub max_tuples: Option<u64>,
    /// Maximum fixpoint stages / iterations.
    pub max_stages: Option<u64>,
    /// Maximum game positions (configurations) generated.
    pub max_positions: Option<u64>,
    /// Maximum abstract solver steps (probes, pops, expansions).
    pub max_steps: Option<u64>,
    /// Maximum bytes of solver-owned storage growth (approximate).
    pub max_bytes: Option<u64>,
}

impl Budget {
    /// No budget at all.
    pub const UNLIMITED: Budget = Budget {
        max_tuples: None,
        max_stages: None,
        max_positions: None,
        max_steps: None,
        max_bytes: None,
    };

    /// A budget bounding only abstract steps.
    pub fn steps(max_steps: u64) -> Self {
        Budget {
            max_steps: Some(max_steps),
            ..Budget::UNLIMITED
        }
    }

    /// A budget bounding only generated game positions.
    pub fn positions(max_positions: u64) -> Self {
        Budget {
            max_positions: Some(max_positions),
            ..Budget::UNLIMITED
        }
    }
}

impl From<crate::store::Limits> for Budget {
    fn from(l: crate::store::Limits) -> Self {
        Budget {
            max_tuples: l.max_tuples,
            max_stages: l.max_stages,
            ..Budget::UNLIMITED
        }
    }
}

/// An optional monotonic wall-clock deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline `d` from now.
    pub fn within(d: Duration) -> Self {
        Deadline(Some(Instant::now() + d))
    }

    /// A deadline at the given instant.
    pub fn at(t: Instant) -> Self {
        Deadline(Some(t))
    }

    /// Whether a deadline is set at all.
    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the deadline has passed. Reads the monotonic clock, so
    /// callers amortize this behind a step stride.
    pub fn expired(&self) -> bool {
        match self.0 {
            None => false,
            Some(t) => Instant::now() >= t,
        }
    }
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Poll count at which the token self-cancels (`u64::MAX` = never).
    /// This is the deterministic fault-injection hook used by [`chaos`].
    trip_after: AtomicU64,
    polls: AtomicU64,
}

/// A cloneable, thread-safe cancellation flag.
///
/// Cancellation is *cooperative*: solvers poll the token at their loop
/// heads (amortized through [`Governor::step`]) and return a resumable
/// checkpoint when it trips. Cloning shares the underlying flag.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<CancelInner>);

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        let inner = CancelInner {
            cancelled: AtomicBool::new(false),
            trip_after: AtomicU64::new(u64::MAX),
            polls: AtomicU64::new(0),
        };
        CancelToken(Arc::new(inner))
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (a plain atomic load —
    /// does not count as a poll).
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::Acquire)
    }

    /// Fault-injection hook: make the token cancel itself once it has
    /// been polled `n` more times. Deterministic for single-threaded
    /// solvers, which is what the chaos suite runs.
    pub fn cancel_after_polls(&self, n: u64) {
        let base = self.0.polls.load(Ordering::Relaxed);
        self.0
            .trip_after
            .store(base.saturating_add(n), Ordering::Relaxed);
    }

    /// Cooperative poll: counts the poll, trips a pending
    /// [`cancel_after_polls`](Self::cancel_after_polls) schedule, and
    /// reports whether the token is cancelled.
    pub fn poll(&self) -> bool {
        let polls = self.0.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if polls >= self.0.trip_after.load(Ordering::Relaxed) {
            self.cancel();
        }
        self.is_cancelled()
    }
}

/// The shared governance handle every governed solver takes by reference.
///
/// A `Governor` owns the budget counters (atomics, so it is `Sync` and one
/// instance can be shared across parallel workers), the deadline, and the
/// cancellation token. Work is charged through [`step`](Self::step) /
/// [`charge_tuples`](Self::charge_tuples) / … ; each charge returns
/// `Err(Interrupted)` as soon as any governed bound is hit.
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    deadline: Deadline,
    cancel: CancelToken,
    steps: AtomicU64,
    tuples: AtomicU64,
    positions: AtomicU64,
    stages: AtomicU64,
    bytes: AtomicU64,
}

impl Default for Governor {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A point-in-time snapshot of a governor's charged-work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorUsage {
    /// Abstract steps charged.
    pub steps: u64,
    /// Tuples charged.
    pub tuples: u64,
    /// Game positions charged.
    pub positions: u64,
    /// Stages charged.
    pub stages: u64,
    /// Bytes charged.
    pub bytes: u64,
}

impl Governor {
    /// A governor with no budget, no deadline, and a fresh token — the
    /// plain entry points run under this, so governed and ungoverned
    /// paths share one code path.
    pub fn unlimited() -> Self {
        Self::new(Budget::UNLIMITED, Deadline::NONE, CancelToken::new())
    }

    /// A governor enforcing the given budget (no deadline, fresh token).
    pub fn with_budget(budget: Budget) -> Self {
        Self::new(budget, Deadline::NONE, CancelToken::new())
    }

    /// A governor from all three interrupt sources.
    pub fn new(budget: Budget, deadline: Deadline, cancel: CancelToken) -> Self {
        Governor {
            budget,
            deadline,
            cancel,
            steps: AtomicU64::new(0),
            tuples: AtomicU64::new(0),
            positions: AtomicU64::new(0),
            stages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The cancellation token (clone it to hand to another thread).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Whether this governor can never interrupt (no budget, no deadline,
    /// token not cancelled). Lets hot paths skip bookkeeping entirely.
    pub fn is_unlimited(&self) -> bool {
        self.budget == Budget::UNLIMITED && !self.deadline.is_some() && !self.cancel.is_cancelled()
    }

    /// Snapshot of charged work so far.
    pub fn usage(&self) -> GovernorUsage {
        GovernorUsage {
            steps: self.steps.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
            positions: self.positions.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Full check: polls the cancellation token, reads the clock, and
    /// re-validates every budget counter. Solvers call this at coarse
    /// boundaries (stage starts, phase transitions); the amortized
    /// [`step`](Self::step) covers the inner loops.
    pub fn check(&self) -> Result<(), Interrupted> {
        if self.cancel.poll() {
            return Err(Interrupted::Cancelled);
        }
        if self.deadline.expired() {
            return Err(Interrupted::Deadline);
        }
        if let Some(max) = self.budget.max_steps {
            let used = self.steps.load(Ordering::Relaxed);
            if used > max {
                return Err(LimitExceeded::Steps { limit: max }.into());
            }
        }
        if let Some(max) = self.budget.max_tuples {
            let used = self.tuples.load(Ordering::Relaxed);
            if used > max {
                return Err(LimitExceeded::Tuples {
                    limit: max,
                    reached: used,
                }
                .into());
            }
        }
        if let Some(max) = self.budget.max_positions {
            let used = self.positions.load(Ordering::Relaxed);
            if used > max {
                return Err(LimitExceeded::Positions {
                    limit: max,
                    reached: used,
                }
                .into());
            }
        }
        if let Some(max) = self.budget.max_bytes {
            let used = self.bytes.load(Ordering::Relaxed);
            if used > max {
                return Err(LimitExceeded::Bytes {
                    limit: max,
                    reached: used,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Charges `n` abstract steps. Checks the step budget on every call;
    /// polls cancellation and the deadline only when the cumulative step
    /// count crosses a [`CHECK_STRIDE`] boundary, so per-unit cost stays
    /// at one atomic add.
    pub fn step(&self, n: u64) -> Result<(), Interrupted> {
        let before = self.steps.fetch_add(n, Ordering::Relaxed);
        let after = before + n;
        if let Some(max) = self.budget.max_steps {
            if after > max {
                return Err(LimitExceeded::Steps { limit: max }.into());
            }
        }
        if before / CHECK_STRIDE != after / CHECK_STRIDE {
            if self.cancel.poll() {
                return Err(Interrupted::Cancelled);
            }
            if self.deadline.expired() {
                return Err(Interrupted::Deadline);
            }
        }
        Ok(())
    }

    /// Charges `n` interned tuples against the tuple budget.
    pub fn charge_tuples(&self, n: u64) -> Result<(), Interrupted> {
        let after = self.tuples.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.budget.max_tuples {
            if after > max {
                return Err(LimitExceeded::Tuples {
                    limit: max,
                    reached: after,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Charges `n` generated game positions against the position budget.
    pub fn charge_positions(&self, n: u64) -> Result<(), Interrupted> {
        let after = self.positions.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.budget.max_positions {
            if after > max {
                return Err(LimitExceeded::Positions {
                    limit: max,
                    reached: after,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Charges one stage / fixpoint iteration. Errs when the stage count
    /// would exceed the budget, i.e. *before* the over-budget stage runs.
    pub fn charge_stage(&self) -> Result<(), Interrupted> {
        let after = self.stages.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.budget.max_stages {
            if after > max {
                return Err(LimitExceeded::Stages { limit: max }.into());
            }
        }
        Ok(())
    }

    /// Charges `n` bytes of storage growth against the byte budget.
    pub fn charge_bytes(&self, n: u64) -> Result<(), Interrupted> {
        let after = self.bytes.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.budget.max_bytes {
            if after > max {
                return Err(LimitExceeded::Bytes {
                    limit: max,
                    reached: after,
                }
                .into());
            }
        }
        Ok(())
    }

    /// A worker-local batching meter over this governor. Parallel workers
    /// each own one so the shared atomics are touched once per
    /// [`Meter::STRIDE`] units instead of once per unit.
    pub fn meter(&self) -> Meter<'_> {
        Meter {
            gov: self,
            local: 0,
        }
    }
}

/// A worker-local step counter that flushes to its [`Governor`] in
/// batches. The hot-path cost of [`tick`](Self::tick) is one local
/// increment and one predictable branch.
#[derive(Debug)]
pub struct Meter<'g> {
    gov: &'g Governor,
    local: u64,
}

impl Meter<'_> {
    /// Steps per flush.
    pub const STRIDE: u64 = 64;

    /// Charges one step, flushing to the governor every
    /// [`STRIDE`](Self::STRIDE) ticks.
    #[inline]
    pub fn tick(&mut self) -> Result<(), Interrupted> {
        self.local += 1;
        if self.local >= Self::STRIDE {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes any locally accumulated steps to the governor. Call at
    /// batch boundaries so trailing ticks are not lost.
    pub fn flush(&mut self) -> Result<(), Interrupted> {
        if self.local > 0 {
            let n = self.local;
            self.local = 0;
            self.gov.step(n)?;
        }
        Ok(())
    }
}

pub mod chaos {
    //! Deterministic fault-injection schedules for the chaos test suite.
    //!
    //! The harness derives, from one [`SplitMix64`] seed, a reproducible
    //! set of *injection points* — step budgets, cancel-after-N-polls
    //! schedules, and already-expired deadlines — and the test suite runs
    //! every governed solver under each, asserting the three chaos
    //! invariants: no panic, `resume(interrupt(x)) ≡ run(x)` (tuple-id by
    //! tuple-id / verdict by verdict), and monotone [`crate::EvalStats`]
    //! counters across checkpoints.

    use super::{Budget, CancelToken, Deadline, Governor};
    use crate::rng::SplitMix64;
    use std::time::Duration;

    /// `count` pseudo-random trip points in `[1, span]`, derived from
    /// `seed`. Deterministic across runs and platforms.
    pub fn trip_schedule(seed: u64, count: usize, span: u64) -> Vec<u64> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..count)
            .map(|_| 1 + rng.next_u64() % span.max(1))
            .collect()
    }

    /// A governor that trips its step budget after `max_steps` steps.
    pub fn step_tripper(max_steps: u64) -> Governor {
        Governor::with_budget(Budget::steps(max_steps))
    }

    /// A governor whose token self-cancels after `polls` cooperative
    /// polls.
    pub fn cancel_tripper(polls: u64) -> Governor {
        let token = CancelToken::new();
        token.cancel_after_polls(polls);
        Governor::new(Budget::UNLIMITED, Deadline::NONE, token)
    }

    /// A governor whose deadline has already expired: the first amortized
    /// deadline check interrupts.
    pub fn expired_deadline() -> Governor {
        Governor::new(
            Budget::UNLIMITED,
            Deadline::within(Duration::ZERO),
            CancelToken::new(),
        )
    }

    /// One seeded injection point: a label (for test diagnostics) plus a
    /// governor arming exactly one interrupt source.
    pub fn injection(seed: u64, index: usize, span: u64) -> (String, Governor) {
        let mut rng = SplitMix64::seed_from_u64(seed.wrapping_add(index as u64));
        let point = 1 + rng.next_u64() % span.max(1);
        match rng.next_u64() % 3 {
            0 => (format!("steps<={point}"), step_tripper(point)),
            1 => (format!("cancel@{point}"), cancel_tripper(point)),
            _ => ("deadline-expired".to_string(), expired_deadline()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let g = Governor::unlimited();
        assert!(g.is_unlimited());
        for _ in 0..10_000 {
            g.step(1).unwrap();
        }
        g.charge_tuples(1 << 40).unwrap();
        g.charge_stage().unwrap();
        g.check().unwrap();
    }

    #[test]
    fn step_budget_trips_at_boundary() {
        let g = Governor::with_budget(Budget::steps(10));
        for _ in 0..10 {
            g.step(1).unwrap();
        }
        let err = g.step(1).unwrap_err();
        assert_eq!(err, Interrupted::Limit(LimitExceeded::Steps { limit: 10 }));
    }

    #[test]
    fn tuple_budget_reports_reached() {
        let g = Governor::with_budget(Budget {
            max_tuples: Some(5),
            ..Budget::UNLIMITED
        });
        g.charge_tuples(5).unwrap();
        match g.charge_tuples(3).unwrap_err() {
            Interrupted::Limit(LimitExceeded::Tuples { limit, reached }) => {
                assert_eq!((limit, reached), (5, 8));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stage_budget_allows_exactly_max() {
        let g = Governor::with_budget(Budget {
            max_stages: Some(3),
            ..Budget::UNLIMITED
        });
        for _ in 0..3 {
            g.charge_stage().unwrap();
        }
        assert!(g.charge_stage().is_err());
    }

    #[test]
    fn cancellation_is_cooperative_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        let g = Governor::new(Budget::UNLIMITED, Deadline::NONE, token);
        g.check().unwrap();
        clone.cancel();
        assert_eq!(g.check().unwrap_err(), Interrupted::Cancelled);
        // Amortized: a stride-crossing step sees it too.
        let err = g.step(CHECK_STRIDE + 1).unwrap_err();
        assert_eq!(err, Interrupted::Cancelled);
    }

    #[test]
    fn cancel_after_polls_trips_deterministically() {
        let g = chaos::cancel_tripper(3);
        g.check().unwrap(); // poll 1
        g.check().unwrap(); // poll 2
        assert_eq!(g.check().unwrap_err(), Interrupted::Cancelled); // poll 3
    }

    #[test]
    fn expired_deadline_interrupts_first_check() {
        let g = chaos::expired_deadline();
        assert_eq!(g.check().unwrap_err(), Interrupted::Deadline);
    }

    #[test]
    fn meter_batches_and_flushes() {
        let g = Governor::with_budget(Budget::steps(Meter::STRIDE));
        let mut m = g.meter();
        for _ in 0..Meter::STRIDE {
            m.tick().unwrap();
        }
        assert_eq!(g.usage().steps, Meter::STRIDE);
        let mut m2 = g.meter();
        m2.tick().unwrap(); // local only
        assert_eq!(g.usage().steps, Meter::STRIDE);
        assert!(m2.flush().is_err(), "flush crosses the budget");
    }

    #[test]
    fn trip_schedule_is_deterministic() {
        let a = chaos::trip_schedule(42, 8, 100);
        let b = chaos::trip_schedule(42, 8, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| (1..=100).contains(&p)));
        let c = chaos::trip_schedule(43, 8, 100);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn injection_mixes_interrupt_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for i in 0..32 {
            let (label, _) = chaos::injection(7, i, 50);
            kinds.insert(
                label
                    .split(&['<', '@', '-'][..])
                    .next()
                    .unwrap()
                    .to_string(),
            );
        }
        assert!(kinds.len() >= 2, "expected a mix of kinds: {kinds:?}");
    }

    #[test]
    fn usage_snapshots_counters() {
        let g = Governor::unlimited();
        g.step(5).unwrap();
        g.charge_tuples(2).unwrap();
        g.charge_positions(3).unwrap();
        g.charge_bytes(7).unwrap();
        g.charge_stage().unwrap();
        let u = g.usage();
        assert_eq!(u.steps, 5);
        assert_eq!(u.tuples, 2);
        assert_eq!(u.positions, 3);
        assert_eq!(u.bytes, 7);
        assert_eq!(u.stages, 1);
    }

    #[test]
    fn interrupted_displays() {
        assert!(Interrupted::Deadline.to_string().contains("deadline"));
        assert!(Interrupted::Cancelled.to_string().contains("cancel"));
        let l = Interrupted::Limit(LimitExceeded::Steps { limit: 9 });
        assert!(l.to_string().contains("step"));
    }
}
