//! A thin directed-graph type bridging to [`Structure`].
//!
//! The case study of Section 6 is entirely about directed graphs with
//! distinguished nodes. [`Digraph`] stores adjacency lists (fast iteration
//! for the graph algorithms in `kv-graphalg`) and converts losslessly to a
//! [`Structure`] over the vocabulary `{E/2, s1, …, sk}` for the logic and
//! game machinery.

use crate::structure::{Element, Structure};
use crate::vocabulary::{ConstId, RelId, Vocabulary};
use std::collections::HashSet;
use std::sync::Arc;

/// A finite directed graph with nodes `0, …, n-1`, no parallel edges, and an
/// ordered list of distinguished nodes.
///
/// Self-loops are allowed (the paper's class `C` explicitly discusses roots
/// with self-loops).
///
/// ```
/// use kv_structures::Digraph;
///
/// let mut g = Digraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.set_distinguished(vec![0, 2]);
/// let s = g.to_structure(); // {E/2, s1, s2} structure
/// assert_eq!(s.constant_values(), &[0, 2]);
/// assert_eq!(Digraph::from_structure(&s), g);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Digraph {
    out_edges: Vec<Vec<u32>>,
    in_edges: Vec<Vec<u32>>,
    edge_set: HashSet<(u32, u32)>,
    distinguished: Vec<u32>,
}

/// Equality is semantic: same node count, same edge *set* (adjacency-list
/// order is an implementation detail), same distinguished list.
impl PartialEq for Digraph {
    fn eq(&self, other: &Self) -> bool {
        self.out_edges.len() == other.out_edges.len()
            && self.edge_set == other.edge_set
            && self.distinguished == other.distinguished
    }
}

impl Eq for Digraph {}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            out_edges: vec![Vec::new(); n],
            in_edges: vec![Vec::new(); n],
            edge_set: HashSet::new(),
            distinguished: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Iterates over nodes.
    pub fn nodes(&self) -> impl Iterator<Item = u32> {
        0..self.out_edges.len() as u32
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> u32 {
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        (self.out_edges.len() - 1) as u32
    }

    /// Adds `count` fresh nodes and returns the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> u32 {
        let first = self.out_edges.len() as u32;
        for _ in 0..count {
            self.add_node();
        }
        first
    }

    /// Adds the edge `u -> v`; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if `u` or `v` is not a node.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        let n = self.node_count() as u32;
        assert!(u < n && v < n, "edge ({u},{v}) outside node range 0..{n}");
        if self.edge_set.insert((u, v)) {
            self.out_edges[u as usize].push(v);
            self.in_edges[v as usize].push(u);
            true
        } else {
            false
        }
    }

    /// Tests for the edge `u -> v`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edge_set.contains(&(u, v))
    }

    /// Out-neighbours of `u`.
    pub fn successors(&self, u: u32) -> &[u32] {
        &self.out_edges[u as usize]
    }

    /// In-neighbours of `u`.
    pub fn predecessors(&self, u: u32) -> &[u32] {
        &self.in_edges[u as usize]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: u32) -> usize {
        self.out_edges[u as usize].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: u32) -> usize {
        self.in_edges[u as usize].len()
    }

    /// Iterates over all edges in an unspecified but deterministic order
    /// (sorted by source, then insertion order).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as u32, v)))
    }

    /// The ordered list of distinguished nodes.
    pub fn distinguished(&self) -> &[u32] {
        &self.distinguished
    }

    /// Replaces the distinguished-node list.
    ///
    /// # Panics
    /// Panics if any listed node does not exist.
    pub fn set_distinguished(&mut self, nodes: Vec<u32>) {
        let n = self.node_count() as u32;
        assert!(nodes.iter().all(|&v| v < n), "distinguished node missing");
        self.distinguished = nodes;
    }

    /// Converts to a [`Structure`] over `{E/2}` plus one constant per
    /// distinguished node.
    pub fn to_structure(&self) -> Structure {
        let vocab = Arc::new(Vocabulary::graph_with_constants(self.distinguished.len()));
        self.to_structure_with(vocab)
    }

    /// Converts to a [`Structure`] over the supplied vocabulary, which must
    /// be `{E/2}` plus exactly one constant per distinguished node. Sharing
    /// one vocabulary across many graphs keeps game configurations
    /// comparable.
    pub fn to_structure_with(&self, vocab: Arc<Vocabulary>) -> Structure {
        assert_eq!(vocab.relation_count(), 1, "expected a single relation E");
        assert_eq!(vocab.arity(RelId(0)), 2, "E must be binary");
        assert_eq!(
            vocab.constant_count(),
            self.distinguished.len(),
            "constant count must match distinguished nodes"
        );
        let mut s = Structure::new(vocab, self.node_count().max(1));
        for (u, v) in self.edges() {
            s.insert(RelId(0), &[u, v]);
        }
        for (i, &d) in self.distinguished.iter().enumerate() {
            s.set_constant(ConstId(i), d);
        }
        s
    }

    /// Builds a digraph from a structure over a graph vocabulary (one binary
    /// relation, any number of constants).
    pub fn from_structure(s: &Structure) -> Self {
        let vocab = s.vocabulary();
        assert_eq!(vocab.relation_count(), 1, "expected a single relation");
        assert_eq!(vocab.arity(RelId(0)), 2, "relation must be binary");
        let mut g = Self::new(s.universe_size());
        for t in s.relation(RelId(0)).iter() {
            g.add_edge(t[0], t[1]);
        }
        g.distinguished = s.constant_values().to_vec();
        g
    }

    /// Renders the graph in Graphviz DOT format. Distinguished nodes are
    /// labelled and doubly circled; `names` may provide human-readable node
    /// labels.
    pub fn to_dot(&self, title: &str, names: &dyn Fn(u32) -> Option<String>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        for v in self.nodes() {
            let label = names(v).unwrap_or_else(|| v.to_string());
            let dist = self.distinguished.iter().position(|&d| d == v);
            match dist {
                Some(i) => {
                    let _ = writeln!(
                        out,
                        "  n{v} [label=\"{label}\\ns{}\", shape=doublecircle];",
                        i + 1
                    );
                }
                None => {
                    let _ = writeln!(out, "  n{v} [label=\"{label}\"];");
                }
            }
        }
        let mut edges: Vec<(u32, u32)> = self.edges().collect();
        edges.sort_unstable();
        for (u, v) in edges {
            let _ = writeln!(out, "  n{u} -> n{v};");
        }
        out.push_str("}\n");
        out
    }

    /// Elementwise union of node sets and edges with another graph over the
    /// same node range (used by construction code that assembles gadgets).
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn union_edges(&mut self, other: &Digraph) {
        assert_eq!(self.node_count(), other.node_count());
        for (u, v) in other.edges() {
            self.add_edge(u, v);
        }
    }
}

/// An element-renaming view used when composing graphs: maps old node ids to
/// new ones while copying edges.
pub fn copy_into(dst: &mut Digraph, src: &Digraph) -> Vec<u32> {
    let mapping: Vec<u32> = (0..src.node_count()).map(|_| dst.add_node()).collect();
    for (u, v) in src.edges() {
        dst.add_edge(mapping[u as usize], mapping[v as usize]);
    }
    mapping
}

/// Re-export for ergonomic use alongside `Element`.
pub fn as_elements(nodes: &[u32]) -> &[Element] {
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Digraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(g.add_edge(2, 2)); // self-loop allowed
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(2, 2));
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.predecessors(2), &[1, 2]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn structure_roundtrip() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.set_distinguished(vec![0, 3]);
        let s = g.to_structure();
        assert_eq!(s.universe_size(), 4);
        assert_eq!(s.tuple_count(), 3);
        assert_eq!(s.constant_values(), &[0, 3]);
        let g2 = Digraph::from_structure(&s);
        assert_eq!(g, g2);
    }

    #[test]
    fn copy_into_remaps() {
        let mut dst = Digraph::new(2);
        dst.add_edge(0, 1);
        let mut src = Digraph::new(2);
        src.add_edge(0, 1);
        let mapping = copy_into(&mut dst, &src);
        assert_eq!(mapping, vec![2, 3]);
        assert!(dst.has_edge(2, 3));
        assert_eq!(dst.edge_count(), 2);
    }

    #[test]
    fn dot_output_mentions_distinguished() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.set_distinguished(vec![1]);
        let dot = g.to_dot("t", &|_| None);
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    #[should_panic(expected = "outside node range")]
    fn edge_out_of_range_panics() {
        let mut g = Digraph::new(1);
        g.add_edge(0, 1);
    }
}
