//! Partial maps and (one-to-one) homomorphisms between structures.
//!
//! The existential pebble games of the paper (Definition 4.3) are won by the
//! Duplicator exactly as long as the map from pebbled elements of `A`
//! (together with the constants) to pebbled elements of `B` is a *one-to-one
//! homomorphism*: an injective map `h` such that every tuple of every relation
//! of `A` whose components are all in the domain of `h` is mapped to a tuple
//! of the corresponding relation of `B` (footnote 2 of the paper). The
//! Datalog variant of the game (Remark 4.12(1)) drops injectivity. The
//! [`HomKind`] enum selects between the two.

use crate::structure::{Element, Structure};
use crate::vocabulary::RelId;
use std::collections::HashMap;

/// Which notion of homomorphism a game or search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HomKind {
    /// Plain homomorphism: tuples map to tuples. This is the notion for
    /// Datalog (no inequalities), per Remark 4.12(1).
    Homomorphism,
    /// One-to-one (injective) homomorphism, the notion for Datalog(≠) and
    /// the existential k-pebble game of Definition 4.3.
    OneToOne,
}

impl HomKind {
    /// Whether this kind requires injectivity.
    pub fn injective(self) -> bool {
        matches!(self, HomKind::OneToOne)
    }
}

/// A partial function between the universes of two structures, stored as a
/// domain-sorted list of pairs.
///
/// This is the "configuration" object of the pebble games: the set of pairs
/// `(pebbled element of A, pebbled element of B)` together with the constant
/// pairs `(c^A, c^B)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PartialMap {
    pairs: Vec<(Element, Element)>,
}

impl PartialMap {
    /// The empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map from pairs.
    ///
    /// # Panics
    /// Panics if the same domain element appears twice with different images.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Element, Element)>) -> Self {
        let mut m = Self::new();
        for (a, b) in pairs {
            assert!(
                m.insert(a, b),
                "domain element {a} mapped twice inconsistently"
            );
        }
        m
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Looks up the image of `a`.
    pub fn get(&self, a: Element) -> Option<Element> {
        self.pairs
            .binary_search_by_key(&a, |&(x, _)| x)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Whether `a` is in the domain.
    pub fn contains_domain(&self, a: Element) -> bool {
        self.get(a).is_some()
    }

    /// Whether `b` is in the range.
    pub fn contains_range(&self, b: Element) -> bool {
        self.pairs.iter().any(|&(_, y)| y == b)
    }

    /// Inserts the pair `(a, b)`. Returns `false` (and leaves the map
    /// unchanged) if `a` is already mapped to a *different* element; returns
    /// `true` if the pair was inserted or already present.
    pub fn insert(&mut self, a: Element, b: Element) -> bool {
        match self.pairs.binary_search_by_key(&a, |&(x, _)| x) {
            Ok(i) => self.pairs[i].1 == b,
            Err(i) => {
                self.pairs.insert(i, (a, b));
                true
            }
        }
    }

    /// Removes `a` from the domain; returns its image if present.
    pub fn remove(&mut self, a: Element) -> Option<Element> {
        match self.pairs.binary_search_by_key(&a, |&(x, _)| x) {
            Ok(i) => Some(self.pairs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Returns a copy with the pair `(a, b)` added.
    ///
    /// # Panics
    /// Panics if `a` is already mapped to a different element.
    pub fn extended(&self, a: Element, b: Element) -> Self {
        let mut m = self.clone();
        assert!(m.insert(a, b), "extending over existing domain element");
        m
    }

    /// Returns a copy with `a` removed from the domain.
    pub fn without(&self, a: Element) -> Self {
        let mut m = self.clone();
        m.remove(a);
        m
    }

    /// The pairs, sorted by domain element.
    pub fn pairs(&self) -> &[(Element, Element)] {
        &self.pairs
    }

    /// Whether the map is injective.
    pub fn is_injective(&self) -> bool {
        let mut images: Vec<Element> = self.pairs.iter().map(|&(_, b)| b).collect();
        images.sort_unstable();
        images.windows(2).all(|w| w[0] != w[1])
    }

    /// Whether `self` is a subfunction of `other` (as sets of pairs).
    pub fn is_subfunction_of(&self, other: &Self) -> bool {
        self.pairs.iter().all(|&(a, b)| other.get(a) == Some(b))
    }

    /// Applies the map to a tuple. Returns `None` if some component is
    /// outside the domain.
    pub fn apply(&self, tuple: &[Element]) -> Option<Vec<Element>> {
        tuple.iter().map(|&a| self.get(a)).collect()
    }
}

/// Checks that the constant symbols are respected: for every constant `c`,
/// the map contains the pair `(c^A, c^B)`.
pub fn respects_constants(map: &PartialMap, a: &Structure, b: &Structure) -> bool {
    a.constant_values()
        .iter()
        .zip(b.constant_values())
        .all(|(&ca, &cb)| map.get(ca) == Some(cb))
}

/// Full check: is `map` a partial homomorphism of the given kind from `a`
/// to `b`? Constants are **not** checked here; callers that need the pebble
/// game's convention should seed the map with the constant pairs and call
/// [`respects_constants`] separately.
pub fn is_partial_hom(map: &PartialMap, a: &Structure, b: &Structure, kind: HomKind) -> bool {
    if kind.injective() && !map.is_injective() {
        return false;
    }
    for rel in a.vocabulary().relations() {
        for t in a.relation(rel).iter() {
            if let Some(image) = map.apply(t) {
                if !b.contains(rel, &image) {
                    return false;
                }
            }
        }
    }
    true
}

/// Per-element index of the tuples of a structure: for each element `x`,
/// the list of `(relation, tuple)` pairs in which `x` occurs. This makes the
/// incremental homomorphism check [`extension_ok`] touch only the tuples
/// incident to the newly pebbled element.
#[derive(Debug, Clone)]
pub struct TupleIndex {
    by_element: Vec<Vec<(RelId, Box<[Element]>)>>,
}

impl TupleIndex {
    /// Builds the index for a structure.
    pub fn build(s: &Structure) -> Self {
        let mut by_element: Vec<Vec<(RelId, Box<[Element]>)>> = vec![Vec::new(); s.universe_size()];
        for rel in s.vocabulary().relations() {
            for t in s.relation(rel).iter() {
                let mut seen: Vec<Element> = Vec::with_capacity(t.len());
                for &x in t.iter() {
                    if !seen.contains(&x) {
                        seen.push(x);
                        by_element[x as usize].push((rel, Box::from(t)));
                    }
                }
            }
        }
        Self { by_element }
    }

    /// The tuples incident to element `x`.
    pub fn incident(&self, x: Element) -> &[(RelId, Box<[Element]>)] {
        &self.by_element[x as usize]
    }
}

/// Incremental check: assuming `map` is already a partial homomorphism of
/// the given kind from `a` to `b`, is `map ∪ {(x, y)}` one as well?
///
/// `index` must be [`TupleIndex::build`] of `a`. The check examines only
/// tuples incident to `x` whose components all lie in `dom(map) ∪ {x}`.
pub fn extension_ok(
    map: &PartialMap,
    x: Element,
    y: Element,
    index: &TupleIndex,
    b: &Structure,
    kind: HomKind,
) -> bool {
    debug_assert!(!map.contains_domain(x));
    if kind.injective() && map.contains_range(y) {
        return false;
    }
    let lookup = |e: Element| -> Option<Element> {
        if e == x {
            Some(y)
        } else {
            map.get(e)
        }
    };
    let mut image: Vec<Element> = Vec::with_capacity(4);
    for (rel, t) in index.incident(x) {
        image.clear();
        let mut total = true;
        for &e in t.iter() {
            match lookup(e) {
                Some(v) => image.push(v),
                None => {
                    total = false;
                    break;
                }
            }
        }
        if total && !b.contains(*rel, &image) {
            return false;
        }
    }
    true
}

/// Searches for a total homomorphism of the given kind from `a` to `b` by
/// backtracking. If `respect_consts` is set, constants must map to the
/// corresponding constants. Returns the image vector (indexed by elements of
/// `a`) if one exists.
///
/// This is exponential in the worst case and serves as the brute-force ground
/// truth for pattern-embedding questions (Definition 5.1's "one-to-one
/// homomorphism from A into B"). Keep `a` small.
pub fn find_homomorphism(
    a: &Structure,
    b: &Structure,
    kind: HomKind,
    respect_consts: bool,
) -> Option<Vec<Element>> {
    let n = a.universe_size();
    let index = TupleIndex::build(a);
    let mut map = PartialMap::new();
    if respect_consts {
        assert_eq!(
            a.vocabulary().constant_count(),
            b.vocabulary().constant_count(),
            "vocabulary mismatch"
        );
        for (&ca, &cb) in a.constant_values().iter().zip(b.constant_values()) {
            if let Some(existing) = map.get(ca) {
                if existing != cb {
                    return None;
                }
                continue;
            }
            if kind.injective() && map.contains_range(cb) {
                return None;
            }
            if !extension_ok(&map, ca, cb, &index, b, kind) {
                return None;
            }
            map.insert(ca, cb);
        }
    }
    // Order the remaining elements by decreasing incidence degree so that
    // constrained elements are assigned early.
    let mut order: Vec<Element> = (0..n as Element)
        .filter(|&x| !map.contains_domain(x))
        .collect();
    order.sort_by_key(|&x| std::cmp::Reverse(index.incident(x).len()));
    fn backtrack(
        order: &[Element],
        pos: usize,
        map: &mut PartialMap,
        index: &TupleIndex,
        b: &Structure,
        kind: HomKind,
    ) -> bool {
        let Some(&x) = order.get(pos) else {
            return true;
        };
        for y in b.elements() {
            if extension_ok(map, x, y, index, b, kind) {
                map.insert(x, y);
                if backtrack(order, pos + 1, map, index, b, kind) {
                    return true;
                }
                map.remove(x);
            }
        }
        false
    }
    if backtrack(&order, 0, &mut map, &index, b, kind) {
        // Infallible: a successful backtrack assigned every element.
        #[allow(clippy::unwrap_used)]
        let hom = (0..n as Element).map(|x| map.get(x).unwrap()).collect();
        Some(hom)
    } else {
        None
    }
}

/// Searches for an isomorphism between `a` and `b` (a bijection that is a
/// strong homomorphism in both directions). Exponential; for small
/// structures and tests only.
pub fn find_isomorphism(a: &Structure, b: &Structure) -> Option<Vec<Element>> {
    if a.universe_size() != b.universe_size() {
        return None;
    }
    for rel in a.vocabulary().relations() {
        if a.relation(rel).len() != b.relation(rel).len() {
            return None;
        }
    }
    let n = a.universe_size();
    let index_a = TupleIndex::build(a);
    let index_b = TupleIndex::build(b);
    let mut map = PartialMap::new();
    let mut inverse: HashMap<Element, Element> = HashMap::new();
    for (&ca, &cb) in a.constant_values().iter().zip(b.constant_values()) {
        if map.get(ca).is_some_and(|v| v != cb) {
            return None;
        }
        map.insert(ca, cb);
        inverse.insert(cb, ca);
    }
    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        n: usize,
        pos: Element,
        map: &mut PartialMap,
        inverse: &mut HashMap<Element, Element>,
        a: &Structure,
        b: &Structure,
        index_a: &TupleIndex,
        index_b: &TupleIndex,
    ) -> bool {
        let x = (0..n as Element).find(|&x| !map.contains_domain(x));
        let Some(x) = x else {
            return true;
        };
        let _ = pos;
        for y in b.elements() {
            if inverse.contains_key(&y) {
                continue;
            }
            // Forward direction: tuples of `a` incident to x map into `b`.
            if !extension_ok(map, x, y, index_a, b, HomKind::OneToOne) {
                continue;
            }
            // Backward direction: tuples of `b` incident to y whose
            // components are all matched must pull back into `a`.
            let back_ok = index_b.incident(y).iter().all(|(rel, t)| {
                let mut pre = Vec::with_capacity(t.len());
                for &e in t.iter() {
                    let p = if e == y {
                        Some(x)
                    } else {
                        inverse.get(&e).copied()
                    };
                    match p {
                        Some(v) => pre.push(v),
                        None => return true, // not yet total; checked later
                    }
                }
                a.contains(*rel, &pre)
            });
            if !back_ok {
                continue;
            }
            map.insert(x, y);
            inverse.insert(y, x);
            if backtrack(n, pos + 1, map, inverse, a, b, index_a, index_b) {
                return true;
            }
            map.remove(x);
            inverse.remove(&y);
        }
        false
    }
    if backtrack(n, 0, &mut map, &mut inverse, a, b, &index_a, &index_b) {
        // Infallible: a successful backtrack assigned every element.
        #[allow(clippy::unwrap_used)]
        let iso = (0..n as Element).map(|x| map.get(x).unwrap()).collect();
        Some(iso)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::vocabulary::{RelId, Vocabulary};
    use std::sync::Arc;

    fn path(n: usize) -> Structure {
        generators::directed_path(n)
    }

    #[test]
    fn partial_map_basics() {
        let mut m = PartialMap::new();
        assert!(m.insert(3, 7));
        assert!(m.insert(1, 5));
        assert!(m.insert(3, 7)); // re-insert same pair
        assert!(!m.insert(3, 8)); // conflicting image refused
        assert_eq!(m.get(3), Some(7));
        assert_eq!(m.get(1), Some(5));
        assert_eq!(m.get(0), None);
        assert_eq!(m.len(), 2);
        assert!(m.is_injective());
        assert!(m.contains_range(5));
        assert_eq!(m.remove(1), Some(5));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn injectivity_detected() {
        let m = PartialMap::from_pairs([(0, 4), (1, 4)]);
        assert!(!m.is_injective());
    }

    #[test]
    fn subfunction_relation() {
        let big = PartialMap::from_pairs([(0, 1), (2, 3), (4, 5)]);
        let small = PartialMap::from_pairs([(2, 3)]);
        assert!(small.is_subfunction_of(&big));
        assert!(!big.is_subfunction_of(&small));
        assert!(PartialMap::new().is_subfunction_of(&small));
    }

    #[test]
    fn identity_on_path_is_hom() {
        let p = path(4);
        let id = PartialMap::from_pairs((0..4).map(|i| (i, i)));
        assert!(is_partial_hom(&id, &p, &p, HomKind::OneToOne));
    }

    #[test]
    fn edge_reversal_is_not_hom() {
        let p = path(2); // edge 0 -> 1
        let rev = PartialMap::from_pairs([(0, 1), (1, 0)]);
        assert!(!is_partial_hom(&rev, &p, &p, HomKind::OneToOne));
    }

    #[test]
    fn shift_into_longer_path_is_hom() {
        let short = path(3);
        let long = path(6);
        let shift = PartialMap::from_pairs([(0, 2), (1, 3), (2, 4)]);
        assert!(is_partial_hom(&shift, &short, &long, HomKind::OneToOne));
    }

    #[test]
    fn extension_ok_matches_full_check() {
        let a = path(4);
        let b = path(6);
        let index = TupleIndex::build(&a);
        let map = PartialMap::from_pairs([(0, 1), (1, 2)]);
        assert!(is_partial_hom(&map, &a, &b, HomKind::OneToOne));
        // Extending 2 -> 3 keeps the edge 1 -> 2 mapped to 2 -> 3: ok.
        assert!(extension_ok(&map, 2, 3, &index, &b, HomKind::OneToOne));
        assert!(!extension_ok(&map, 2, 5, &index, &b, HomKind::OneToOne));
        // Injectivity refusal.
        assert!(!extension_ok(&map, 2, 1, &index, &b, HomKind::OneToOne));
        // Without injectivity the same target is fine if edges work out —
        // 2 -> 2 fails the edge check (edge (1,2) would need (2,2)).
        assert!(!extension_ok(&map, 2, 2, &index, &b, HomKind::Homomorphism));
    }

    #[test]
    fn find_homomorphism_path_into_longer_path() {
        let a = path(3);
        let b = path(5);
        let h = find_homomorphism(&a, &b, HomKind::OneToOne, false).expect("embedding exists");
        // Must be three consecutive nodes.
        assert_eq!(h.len(), 3);
        assert_eq!(h[1], h[0] + 1);
        assert_eq!(h[2], h[1] + 1);
    }

    #[test]
    fn find_homomorphism_longer_into_shorter_fails_one_to_one() {
        let a = path(5);
        let b = path(3);
        assert!(find_homomorphism(&a, &b, HomKind::OneToOne, false).is_none());
    }

    #[test]
    fn plain_hom_can_collapse_cycle() {
        // A 4-cycle maps homomorphically onto a 2-cycle, but not injectively.
        let c4 = generators::directed_cycle(4);
        let c2 = generators::directed_cycle(2);
        assert!(find_homomorphism(&c4, &c2, HomKind::Homomorphism, false).is_some());
        assert!(find_homomorphism(&c4, &c2, HomKind::OneToOne, false).is_none());
    }

    #[test]
    fn constants_respected_in_search() {
        let v = Arc::new(Vocabulary::graph_with_constants(2));
        // a: edge s1 -> s2 with s1 = 0, s2 = 1.
        let mut a = Structure::new(Arc::clone(&v), 2);
        a.insert(RelId(0), &[0, 1]);
        a.set_constant(crate::ConstId(0), 0);
        a.set_constant(crate::ConstId(1), 1);
        // b: path 0 -> 1 -> 2 with s1 = 1, s2 = 2.
        let mut b = Structure::new(Arc::clone(&v), 3);
        b.insert(RelId(0), &[0, 1]);
        b.insert(RelId(0), &[1, 2]);
        b.set_constant(crate::ConstId(0), 1);
        b.set_constant(crate::ConstId(1), 2);
        let h = find_homomorphism(&a, &b, HomKind::OneToOne, true).expect("constant-respecting");
        assert_eq!(h, vec![1, 2]);
        // With constants pinned the other way there is no embedding.
        b.set_constant(crate::ConstId(1), 0);
        assert!(find_homomorphism(&a, &b, HomKind::OneToOne, true).is_none());
    }

    #[test]
    fn isomorphism_paths() {
        let a = path(4);
        let b = path(4);
        let iso = find_isomorphism(&a, &b).expect("paths are isomorphic");
        assert_eq!(iso, vec![0, 1, 2, 3]);
        assert!(find_isomorphism(&a, &path(5)).is_none());
        // Path vs cycle of same size: not isomorphic (tuple counts differ).
        assert!(find_isomorphism(&path(3), &generators::directed_cycle(3)).is_none());
    }

    #[test]
    fn respects_constants_check() {
        let v = Arc::new(Vocabulary::graph_with_constants(1));
        let mut a = Structure::new(Arc::clone(&v), 2);
        a.set_constant(crate::ConstId(0), 1);
        let mut b = Structure::new(Arc::clone(&v), 2);
        b.set_constant(crate::ConstId(0), 0);
        let good = PartialMap::from_pairs([(1, 0)]);
        let bad = PartialMap::from_pairs([(1, 1)]);
        assert!(respects_constants(&good, &a, &b));
        assert!(!respects_constants(&bad, &a, &b));
    }
}
