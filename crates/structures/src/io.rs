//! A tiny text format for digraphs with distinguished nodes.
//!
//! ```text
//! # comment lines start with '#'
//! nodes 5
//! 0 1
//! 1 2
//! 2 4
//! distinguished 0 4
//! ```
//!
//! `nodes` must come first; each following bare line is an edge; an
//! optional `distinguished` line lists the distinguished nodes in order.
//! Used by the CLI and handy for ad-hoc experiments.
//!
//! Parsing is total: malformed input yields a structured
//! [`DigraphParseError`] carrying the 1-based line and column of the
//! offending token — never a panic (property-tested on arbitrary input).

use crate::graph::Digraph;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure with source position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigraphParseError {
    /// 1-based line of the offending token (0 for whole-input errors).
    pub line: usize,
    /// 1-based column of the offending token (0 for whole-line errors).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl DigraphParseError {
    fn at(line: usize, col: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for DigraphParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col) {
            (0, _) => write!(f, "{}", self.message),
            (l, 0) => write!(f, "line {l}: {}", self.message),
            (l, c) => write!(f, "line {l}, col {c}: {}", self.message),
        }
    }
}

impl std::error::Error for DigraphParseError {}

/// Whitespace-separated tokens of a line, each with its 1-based column.
fn tokens(line: &str) -> impl Iterator<Item = (usize, &str)> {
    line.split_whitespace().map(move |tok| {
        // Safe: split_whitespace yields subslices of `line`.
        let col = tok.as_ptr() as usize - line.as_ptr() as usize + 1;
        (col, tok)
    })
}

fn parse_u32(lineno: usize, col: usize, tok: &str, what: &str) -> Result<u32, DigraphParseError> {
    tok.parse()
        .map_err(|e| DigraphParseError::at(lineno, col, format!("invalid {what} {tok:?}: {e}")))
}

/// Parses the edge-list format.
pub fn parse_digraph(text: &str) -> Result<Digraph, DigraphParseError> {
    let mut graph: Option<Digraph> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = tokens(raw);
        let Some((head_col, head)) = parts.next() else {
            continue; // unreachable after the trim check, but never panic
        };
        match head {
            "nodes" => {
                if graph.is_some() {
                    return Err(DigraphParseError::at(lineno, head_col, "duplicate 'nodes'"));
                }
                let Some((col, tok)) = parts.next() else {
                    return Err(DigraphParseError::at(lineno, 0, "missing node count"));
                };
                let n = parse_u32(lineno, col, tok, "node count")? as usize;
                if let Some((col, tok)) = parts.next() {
                    return Err(DigraphParseError::at(
                        lineno,
                        col,
                        format!("trailing token {tok:?}"),
                    ));
                }
                graph = Some(Digraph::new(n));
            }
            "distinguished" => {
                let g = graph.as_mut().ok_or_else(|| {
                    DigraphParseError::at(lineno, head_col, "'nodes' must come first")
                })?;
                let n = g.node_count() as u32;
                let mut nodes = Vec::new();
                for (col, tok) in parts {
                    let v = parse_u32(lineno, col, tok, "distinguished node")?;
                    if v >= n {
                        return Err(DigraphParseError::at(
                            lineno,
                            col,
                            format!("distinguished node {v} out of range (< {n})"),
                        ));
                    }
                    nodes.push(v);
                }
                g.set_distinguished(nodes);
            }
            u_tok => {
                let g = graph.as_mut().ok_or_else(|| {
                    DigraphParseError::at(lineno, head_col, "'nodes' must come first")
                })?;
                let n = g.node_count() as u32;
                let u = parse_u32(lineno, head_col, u_tok, "edge tail")?;
                let Some((v_col, v_tok)) = parts.next() else {
                    return Err(DigraphParseError::at(lineno, 0, "missing edge head"));
                };
                let v = parse_u32(lineno, v_col, v_tok, "edge head")?;
                if u >= n {
                    return Err(DigraphParseError::at(
                        lineno,
                        head_col,
                        format!("edge ({u},{v}) out of range (< {n})"),
                    ));
                }
                if v >= n {
                    return Err(DigraphParseError::at(
                        lineno,
                        v_col,
                        format!("edge ({u},{v}) out of range (< {n})"),
                    ));
                }
                if let Some((col, tok)) = parts.next() {
                    return Err(DigraphParseError::at(
                        lineno,
                        col,
                        format!("trailing token {tok:?}"),
                    ));
                }
                g.add_edge(u, v);
            }
        }
    }
    graph.ok_or_else(|| DigraphParseError::at(0, 0, "missing 'nodes' line"))
}

/// Serializes a digraph to the edge-list format.
pub fn write_digraph(g: &Digraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        let _ = writeln!(out, "{u} {v}");
    }
    if !g.distinguished().is_empty() {
        let parts: Vec<String> = g.distinguished().iter().map(u32::to_string).collect();
        let _ = writeln!(out, "distinguished {}", parts.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 2);
        g.set_distinguished(vec![0, 3]);
        let text = write_digraph(&g);
        let g2 = parse_digraph(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nnodes 3\n0 1\n# middle\n1 2\n";
        let g = parse_digraph(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_digraph("0 1\n").is_err()); // nodes missing
        assert!(parse_digraph("nodes 2\n0 5\n").is_err()); // out of range
        assert!(parse_digraph("nodes 2\n0\n").is_err()); // half an edge
        assert!(parse_digraph("nodes 2\ndistinguished 7\n").is_err());
        assert!(parse_digraph("nodes 2\nnodes 3\n").is_err());
        assert!(parse_digraph("").is_err());
        assert!(parse_digraph("nodes 2\n0 1 9\n").is_err()); // trailing token
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse_digraph("nodes 3\n0 1\n0 zap\n").unwrap_err();
        assert_eq!((e.line, e.col), (3, 3));
        assert!(e.to_string().contains("line 3, col 3"));
        assert!(e.to_string().contains("zap"));

        let e = parse_digraph("nodes 3\n  0 1 extra\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 7); // column of "extra" in the raw line
        assert!(e.message.contains("extra"));

        let e = parse_digraph("nodes 2\ndistinguished 0 9\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 17));

        let e = parse_digraph("").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("missing 'nodes'"));
    }
}
