//! A tiny text format for digraphs with distinguished nodes.
//!
//! ```text
//! # comment lines start with '#'
//! nodes 5
//! 0 1
//! 1 2
//! 2 4
//! distinguished 0 4
//! ```
//!
//! `nodes` must come first; each following bare line is an edge; an
//! optional `distinguished` line lists the distinguished nodes in order.
//! Used by the CLI and handy for ad-hoc experiments.

use crate::graph::Digraph;
use std::fmt::Write as _;

/// Parses the edge-list format.
pub fn parse_digraph(text: &str) -> Result<Digraph, String> {
    let mut graph: Option<Digraph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("nonempty line");
        match head {
            "nodes" => {
                if graph.is_some() {
                    return Err(format!("line {}: duplicate 'nodes'", lineno + 1));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing node count", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if parts.next().is_some() {
                    return Err(format!("line {}: trailing tokens", lineno + 1));
                }
                graph = Some(Digraph::new(n));
            }
            "distinguished" => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| format!("line {}: 'nodes' must come first", lineno + 1))?;
                let nodes: Result<Vec<u32>, _> = parts.map(str::parse).collect();
                let nodes = nodes.map_err(|e| format!("line {}: {e}", lineno + 1))?;
                let n = g.node_count() as u32;
                if nodes.iter().any(|&v| v >= n) {
                    return Err(format!("line {}: distinguished node out of range", lineno + 1));
                }
                g.set_distinguished(nodes);
            }
            u => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| format!("line {}: 'nodes' must come first", lineno + 1))?;
                let u: u32 = u
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing edge head", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                let n = g.node_count() as u32;
                if u >= n || v >= n {
                    return Err(format!("line {}: edge ({u},{v}) out of range", lineno + 1));
                }
                if parts.next().is_some() {
                    return Err(format!("line {}: trailing tokens", lineno + 1));
                }
                g.add_edge(u, v);
            }
        }
    }
    graph.ok_or_else(|| "missing 'nodes' line".into())
}

/// Serializes a digraph to the edge-list format.
pub fn write_digraph(g: &Digraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        let _ = writeln!(out, "{u} {v}");
    }
    if !g.distinguished().is_empty() {
        let parts: Vec<String> = g.distinguished().iter().map(u32::to_string).collect();
        let _ = writeln!(out, "distinguished {}", parts.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 2);
        g.set_distinguished(vec![0, 3]);
        let text = write_digraph(&g);
        let g2 = parse_digraph(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nnodes 3\n0 1\n# middle\n1 2\n";
        let g = parse_digraph(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_digraph("0 1\n").is_err()); // nodes missing
        assert!(parse_digraph("nodes 2\n0 5\n").is_err()); // out of range
        assert!(parse_digraph("nodes 2\n0\n").is_err()); // half an edge
        assert!(parse_digraph("nodes 2\ndistinguished 7\n").is_err());
        assert!(parse_digraph("nodes 2\nnodes 3\n").is_err());
        assert!(parse_digraph("").is_err());
        assert!(parse_digraph("nodes 2\n0 1 9\n").is_err()); // trailing token
    }
}
