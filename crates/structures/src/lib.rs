//! Finite relational structures over finite vocabularies.
//!
//! This crate provides the model-theoretic substrate for the reproduction of
//! Kolaitis & Vardi, *On the Expressive Power of Datalog: Tools and a Case
//! Study* (PODS 1990). Everything in the paper — Datalog(≠) semantics, the
//! infinitary logics `L^k`, and the existential pebble games — is defined on
//! finite structures `A = (A, R_1^A, …, R_m^A, c_1^A, …, c_l^A)` over a
//! vocabulary of relation and constant symbols.
//!
//! The main types are:
//! - [`Vocabulary`]: relation symbols with arities plus constant symbols;
//! - [`Structure`]: a universe `{0, …, n-1}` together with an interpretation
//!   of every symbol;
//! - [`TupleStore`]: the shared interned-tuple storage engine backing every
//!   relation representation in the workspace ([`store`]);
//! - [`PartialMap`]: a partial function between two universes, with the
//!   homomorphism checks used by the pebble games ([`hom`]);
//! - [`Digraph`]: a thin directed-graph view used throughout the case study
//!   ([`graph`]);
//! - deterministic generators for the structure families appearing in the
//!   paper's examples ([`generators`]);
//! - the resource-governance layer shared by every solver in the
//!   workspace — budgets, deadlines, cooperative cancellation, and the
//!   chaos fault-injection schedules ([`govern`]);
//! - query plans and the engine-level memo cache for demand-driven
//!   evaluation ([`plan`]).

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod generators;
pub mod govern;
pub mod graph;
pub mod hom;
pub mod io;
pub mod mutable;
pub mod ops;
pub mod par;
pub mod persist;
pub mod plan;
pub mod rng;
pub mod shard;
pub mod store;
pub mod structure;
pub mod vocabulary;

pub use govern::{Budget, CancelToken, Deadline, Governor, GovernorUsage, Interrupted, Meter};
pub use graph::Digraph;
pub use hom::{HomKind, PartialMap};
pub use io::{parse_digraph, write_digraph, DigraphParseError};
pub use mutable::{InsertOutcome, MutableStore, RetractOutcome};
pub use ops::{disjoint_union, induced_substructure, quotient};
pub use persist::{LoadedLog, Manifest, RecoveryError, SegmentedLog};
pub use plan::{
    structure_fingerprint, CacheStats, ClockCache, DemandStrategy, JoinLowering, PlannerMode,
    QueryCache, QueryPlan, StructureId, StructureRegistry,
};
pub use rng::SplitMix64;
pub use shard::{shard_of, DeltaExchange, ShardKey, ShardedStore};
pub use store::{
    gallop, gallop_intersect, gallop_intersect2, gallop_scalar, tuple_hash, CardStats, EvalStats,
    IdRange, LimitExceeded, Limits, PosIndex, StoreView, TupleBloom, TupleId, TupleStore,
};
pub use structure::{Element, Relation, Structure, Tuple};
pub use vocabulary::{ConstId, RelId, Vocabulary};
