//! Mutable relation state layered over the append-only [`TupleStore`]:
//! per-tuple support counts, epoch marks, and compaction.
//!
//! The storage engine underneath every relation in the workspace is
//! append-only — that is what makes semi-naive deltas free id ranges and
//! stage snapshots free prefix views (see [`crate::store`]). A live
//! service, however, ingests *retractions* as well as assertions. A
//! [`MutableStore`] reconciles the two worlds:
//!
//! - **The arena stays append-only.** Tuples are interned exactly as
//!   before; retraction never removes a tuple from the arena, it drops the
//!   tuple's *support count* to zero. All id-range machinery (delta
//!   views, prefix snapshots, posting-list probes) keeps working on the
//!   arena underneath.
//! - **Support counts carry the maintenance semantics.** For an EDB
//!   relation the count is the assertion multiplicity (a fact inserted
//!   twice survives one retraction); for an IDB relation the incremental
//!   engine stores derivation counts (counting-based deletion decrements
//!   them, zero means "no derivation left"). A count of zero marks the
//!   tuple *dead*: still interned, no longer part of the relation.
//! - **Epochs mark batch boundaries.** [`commit_epoch`](MutableStore::commit_epoch)
//!   records the arena length, so `epoch_view(e)` is the relation as of
//!   batch `e` — the same prefix-view trick stage snapshots use, now at
//!   batch granularity.
//! - **Compaction restores the invariant the evaluator needs.** After a
//!   deletion batch commits, [`compact`](MutableStore::compact) rebuilds
//!   the arena without the dead tuples (preserving the id order of the
//!   survivors) and returns the id remapping. With no dead tuples left,
//!   every subsequent insertion appends — deltas are contiguous id ranges
//!   again, which is exactly what lets the incremental engine reuse the
//!   unmodified semi-naive join machinery. Compaction starts a new
//!   epoch-mark generation: earlier epoch views refer to pre-compaction
//!   ids and are invalidated.

use crate::store::{StoreView, TupleId, TupleStore};
use crate::structure::Element;

/// What an [`insert`](MutableStore::insert) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The tuple was not interned before: appended with support 1.
    Fresh(TupleId),
    /// The tuple was interned but dead (support 0): revived in place.
    /// After a [`compact`](MutableStore::compact) this cannot occur.
    Revived(TupleId),
    /// The tuple was already live: its support count was incremented.
    Bumped(TupleId),
}

impl InsertOutcome {
    /// The id of the affected tuple.
    pub fn id(&self) -> TupleId {
        match *self {
            InsertOutcome::Fresh(id) | InsertOutcome::Revived(id) | InsertOutcome::Bumped(id) => id,
        }
    }

    /// Whether the insert changed the live tuple *set* (fresh or revived,
    /// as opposed to a pure multiplicity bump).
    pub fn is_new(&self) -> bool {
        !matches!(self, InsertOutcome::Bumped(_))
    }
}

/// What a [`retract`](MutableStore::retract) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetractOutcome {
    /// Support dropped to zero: the tuple left the live set.
    Died(TupleId),
    /// Support decremented but still positive.
    Decremented(TupleId),
    /// The tuple was not live (never interned, or already dead).
    Absent,
}

/// A [`TupleStore`] with per-tuple support counts, epoch marks, and
/// compaction — the storage substrate of incremental view maintenance.
///
/// See the [module docs](self) for the design. The live relation is the
/// set of interned tuples whose support is positive; everything else in
/// the arena is a tombstone awaiting [`compact`](MutableStore::compact).
#[derive(Debug, Clone)]
pub struct MutableStore {
    store: TupleStore,
    /// `support[id]` is the support count of tuple `id`; 0 = dead.
    support: Vec<u32>,
    /// Number of committed epochs (batches).
    epoch: u64,
    /// Arena length at each epoch commit of the current generation (reset
    /// by compaction).
    epoch_marks: Vec<u32>,
}

impl MutableStore {
    /// Creates an empty mutable store for tuples of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            store: TupleStore::new(arity),
            support: Vec::new(),
            epoch: 0,
            epoch_marks: Vec::new(),
        }
    }

    /// The append-only arena underneath. Joins and indexes read this;
    /// callers must filter by liveness themselves when dead tuples may be
    /// present (there are none right after a [`compact`](Self::compact)).
    pub fn store(&self) -> &TupleStore {
        &self.store
    }

    /// The arity of the stored tuples.
    pub fn arity(&self) -> usize {
        self.store.arity()
    }

    /// Number of tuples in the arena, dead ones included.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the arena holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of *live* tuples (positive support).
    pub fn live_len(&self) -> usize {
        self.support.iter().filter(|&&c| c > 0).count()
    }

    /// The support count of tuple `id` (0 = dead).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn support(&self, id: TupleId) -> u32 {
        self.support[id.0 as usize]
    }

    /// Whether tuple `id` is live.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn is_live(&self, id: TupleId) -> bool {
        self.support[id.0 as usize] > 0
    }

    /// Whether `tuple` is interned *and* live.
    pub fn contains_live(&self, tuple: &[Element]) -> bool {
        matches!(self.store.lookup(tuple), Some(id) if self.is_live(id))
    }

    /// The id of `tuple` if it is interned (live or dead).
    pub fn lookup(&self, tuple: &[Element]) -> Option<TupleId> {
        self.store.lookup(tuple)
    }

    /// Iterates over the live tuples in id order.
    pub fn live_iter(&self) -> impl Iterator<Item = &[Element]> {
        self.store
            .iter()
            .zip(&self.support)
            .filter(|(_, &c)| c > 0)
            .map(|(t, _)| t)
    }

    /// Inserts `tuple` with `count` units of support, reporting whether it
    /// was fresh, revived, or merely bumped.
    ///
    /// # Panics
    /// Panics on arity mismatch or `count == 0`.
    pub fn insert_with_support(&mut self, tuple: &[Element], count: u32) -> InsertOutcome {
        assert!(count > 0, "support increments must be positive");
        let (id, fresh) = self.store.intern(tuple);
        if fresh {
            self.support.push(count);
            InsertOutcome::Fresh(id)
        } else if self.support[id.0 as usize] == 0 {
            self.support[id.0 as usize] = count;
            InsertOutcome::Revived(id)
        } else {
            self.support[id.0 as usize] += count;
            InsertOutcome::Bumped(id)
        }
    }

    /// Inserts `tuple` with one unit of support.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, tuple: &[Element]) -> InsertOutcome {
        self.insert_with_support(tuple, 1)
    }

    /// Adds `count` units of support to tuple `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn add_support(&mut self, id: TupleId, count: u32) {
        self.support[id.0 as usize] += count;
    }

    /// Removes `count` units of support from tuple `id`, saturating at
    /// zero; returns the remaining support.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn remove_support(&mut self, id: TupleId, count: u32) -> u32 {
        let s = &mut self.support[id.0 as usize];
        *s = s.saturating_sub(count);
        *s
    }

    /// Drops tuple `id` dead (support 0) regardless of its count.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn kill(&mut self, id: TupleId) {
        self.support[id.0 as usize] = 0;
    }

    /// Retracts one unit of support from `tuple`.
    pub fn retract(&mut self, tuple: &[Element]) -> RetractOutcome {
        match self.store.lookup(tuple) {
            Some(id) if self.support[id.0 as usize] > 0 => {
                self.support[id.0 as usize] -= 1;
                if self.support[id.0 as usize] == 0 {
                    RetractOutcome::Died(id)
                } else {
                    RetractOutcome::Decremented(id)
                }
            }
            _ => RetractOutcome::Absent,
        }
    }

    /// Number of committed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The arena lengths recorded at each epoch commit of the current
    /// mark generation (cleared by compaction). Exposed so snapshots
    /// ([`crate::persist`]) can serialize epoch state with the segments.
    pub fn epoch_marks(&self) -> &[u32] {
        &self.epoch_marks
    }

    /// The per-tuple support counts, indexed by [`TupleId`] (0 = dead).
    pub fn support_counts(&self) -> &[u32] {
        &self.support
    }

    /// Reassembles a store from snapshot parts, validating the invariants
    /// the accessors above rely on: one support count per arena tuple,
    /// at most `epoch` marks, and marks that are non-decreasing arena
    /// prefixes. Returns a description of the violation on bad input —
    /// this is the deserialization path, where malformed bytes must
    /// surface as errors, never panics.
    pub fn from_parts(
        store: TupleStore,
        support: Vec<u32>,
        epoch: u64,
        epoch_marks: Vec<u32>,
    ) -> Result<Self, String> {
        if support.len() != store.len() {
            return Err(format!(
                "{} support count(s) for {} arena tuple(s)",
                support.len(),
                store.len()
            ));
        }
        if epoch_marks.len() as u64 > epoch {
            return Err(format!(
                "{} epoch mark(s) exceed epoch counter {epoch}",
                epoch_marks.len()
            ));
        }
        let mut prev = 0u32;
        for &m in &epoch_marks {
            if m < prev || m as usize > store.len() {
                return Err(format!(
                    "epoch mark {m} is not a non-decreasing prefix of the {}-tuple arena",
                    store.len()
                ));
            }
            prev = m;
        }
        Ok(Self {
            store,
            support,
            epoch,
            epoch_marks,
        })
    }

    /// Commits the current arena state as the next epoch and returns its
    /// number. Epoch `e` (1-based) is the arena prefix recorded here.
    pub fn commit_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch_marks.push(self.store.len() as u32);
        self.epoch
    }

    /// The arena as of committed epoch `epoch` (1-based), as a prefix
    /// view. Only epochs committed since the last
    /// [`compact`](Self::compact) are available — compaction renumbers ids
    /// and starts a fresh mark generation.
    pub fn epoch_view(&self, epoch: u64) -> Option<StoreView<'_>> {
        let generation_base = self.epoch - self.epoch_marks.len() as u64;
        let idx = epoch.checked_sub(generation_base + 1)?;
        self.epoch_marks
            .get(idx as usize)
            .map(|&upto| self.store.view(upto))
    }

    /// Rebuilds the arena without dead tuples, preserving the id order of
    /// the survivors, and returns the remapping `old id -> new id` (`None`
    /// for dropped tuples). Clears the epoch-mark generation (the epoch
    /// *counter* keeps advancing).
    pub fn compact(&mut self) -> Vec<Option<TupleId>> {
        let arity = self.store.arity();
        let mut rebuilt = TupleStore::with_capacity(arity, self.live_len());
        let mut support = Vec::with_capacity(self.live_len());
        let mut remap = Vec::with_capacity(self.store.len());
        for (tuple, &c) in self.store.iter().zip(&self.support) {
            if c > 0 {
                let (id, fresh) = rebuilt.intern(tuple);
                debug_assert!(fresh, "arena tuples are distinct by construction");
                support.push(c);
                remap.push(Some(id));
            } else {
                remap.push(None);
            }
        }
        self.store = rebuilt;
        self.support = support;
        self.epoch_marks.clear();
        remap
    }

    /// Drops every dead tuple in place by moving arena-tail tuples into
    /// their slots ([`TupleStore::swap_remove`]) — O(dead) table and data
    /// work instead of [`compact`](Self::compact)'s O(live) re-interning
    /// rebuild, at the cost of not preserving survivor id order. Like
    /// `compact`, the result has contiguous live ids and a cleared
    /// epoch-mark generation.
    pub fn compact_in_place(&mut self) {
        let mut id = 0usize;
        let mut len = self.support.len();
        while id < len {
            if self.support[id] > 0 {
                id += 1;
            } else if self.support[len - 1] == 0 {
                // The tail tuple is dead too (this also covers id ==
                // len - 1): pop it without filling any hole.
                self.store.swap_remove(TupleId((len - 1) as u32));
                self.support.pop();
                len -= 1;
            } else {
                self.store.swap_remove(TupleId(id as u32));
                self.support[id] = self.support[len - 1];
                self.support.pop();
                len -= 1;
                id += 1;
            }
        }
        self.epoch_marks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_retract_lifecycle() {
        let mut m = MutableStore::new(2);
        let f = m.insert(&[1, 2]);
        assert!(matches!(f, InsertOutcome::Fresh(TupleId(0))));
        assert!(f.is_new());
        let b = m.insert(&[1, 2]);
        assert!(matches!(b, InsertOutcome::Bumped(TupleId(0))));
        assert!(!b.is_new());
        assert_eq!(m.support(TupleId(0)), 2);
        assert_eq!(m.retract(&[1, 2]), RetractOutcome::Decremented(TupleId(0)));
        assert!(m.contains_live(&[1, 2]));
        assert_eq!(m.retract(&[1, 2]), RetractOutcome::Died(TupleId(0)));
        assert!(!m.contains_live(&[1, 2]));
        assert_eq!(m.retract(&[1, 2]), RetractOutcome::Absent);
        assert_eq!(m.retract(&[9, 9]), RetractOutcome::Absent);
        // The arena still holds the tombstone.
        assert_eq!(m.len(), 1);
        assert_eq!(m.live_len(), 0);
        // Re-inserting revives in place: same id, new support.
        let r = m.insert(&[1, 2]);
        assert!(matches!(r, InsertOutcome::Revived(TupleId(0))));
        assert!(r.is_new());
        assert_eq!(m.live_len(), 1);
    }

    #[test]
    fn compact_in_place_is_swap_fill() {
        let mut m = MutableStore::new(2);
        for e in 0..8u32 {
            m.insert(&[e, e + 100]);
        }
        m.retract(&[1, 101]);
        m.retract(&[6, 106]);
        m.retract(&[7, 107]);
        m.compact_in_place();
        assert_eq!(m.len(), 5);
        assert_eq!(m.live_len(), 5);
        // Survivors are exactly the live pre-state tuples (ids permuted),
        // each still interned with its support intact.
        for e in [0u32, 2, 3, 4, 5] {
            let id = m.lookup(&[e, e + 100]).expect("survivor stays interned");
            assert!(m.is_live(id));
            assert_eq!(m.support(id), 1);
        }
        assert_eq!(m.lookup(&[1, 101]), None);
        assert_eq!(m.lookup(&[6, 106]), None);
        // Contiguous live ids: the next insert is Fresh at the end.
        assert!(matches!(
            m.insert(&[9, 109]),
            InsertOutcome::Fresh(TupleId(5))
        ));
    }

    #[test]
    fn compact_in_place_handles_all_dead_and_all_live() {
        let mut m = MutableStore::new(1);
        for e in 0..4u32 {
            m.insert(&[e]);
        }
        for e in 0..4u32 {
            m.retract(&[e]);
        }
        m.compact_in_place();
        assert_eq!(m.len(), 0);
        for e in 10..13u32 {
            m.insert(&[e]);
        }
        m.compact_in_place();
        assert_eq!(m.len(), 3);
        assert!(m.contains_live(&[11]));
    }

    #[test]
    fn compact_drops_dead_and_remaps() {
        let mut m = MutableStore::new(1);
        for e in 0..5u32 {
            m.insert(&[e]);
        }
        m.retract(&[1]);
        m.retract(&[3]);
        let remap = m.compact();
        assert_eq!(
            remap,
            vec![
                Some(TupleId(0)),
                None,
                Some(TupleId(1)),
                None,
                Some(TupleId(2)),
            ]
        );
        assert_eq!(m.len(), 3);
        assert_eq!(m.live_len(), 3);
        let rows: Vec<Vec<Element>> = m.live_iter().map(<[Element]>::to_vec).collect();
        assert_eq!(rows, vec![vec![0], vec![2], vec![4]]);
        // After compaction every insert of a new tuple is Fresh (no
        // revivals possible), so deltas are contiguous id ranges.
        assert!(matches!(m.insert(&[7]), InsertOutcome::Fresh(TupleId(3))));
    }

    #[test]
    fn epochs_are_prefix_views_until_compaction() {
        let mut m = MutableStore::new(1);
        m.insert(&[0]);
        assert_eq!(m.commit_epoch(), 1);
        m.insert(&[1]);
        m.insert(&[2]);
        assert_eq!(m.commit_epoch(), 2);
        let v1 = m.epoch_view(1).unwrap();
        assert_eq!(v1.len(), 1);
        assert!(v1.contains(&[0]));
        assert!(!v1.contains(&[2]));
        let v2 = m.epoch_view(2).unwrap();
        assert_eq!(v2.len(), 3);
        assert!(m.epoch_view(3).is_none());
        // Compaction invalidates the old generation but keeps counting.
        m.retract(&[1]);
        m.compact();
        assert!(m.epoch_view(1).is_none());
        assert!(m.epoch_view(2).is_none());
        assert_eq!(m.commit_epoch(), 3);
        let v3 = m.epoch_view(3).unwrap();
        assert_eq!(v3.len(), 2);
    }

    #[test]
    fn support_arithmetic() {
        let mut m = MutableStore::new(2);
        let id = m.insert_with_support(&[4, 5], 3).id();
        m.add_support(id, 2);
        assert_eq!(m.support(id), 5);
        assert_eq!(m.remove_support(id, 4), 1);
        assert!(m.is_live(id));
        assert_eq!(m.remove_support(id, 9), 0);
        assert!(!m.is_live(id));
        m.add_support(id, 1);
        m.kill(id);
        assert_eq!(m.support(id), 0);
        assert_eq!(m.live_len(), 0);
    }
}
