//! Structure-level operations: disjoint union, induced substructures, and
//! quotients (element identification).
//!
//! Quotients implement the paper's notion of "identifying elements of the
//! universe" (Section 1): Datalog queries are preserved under them (strong
//! monotonicity), while Datalog(≠) queries need not be — the `w`-avoiding
//! path query of Example 2.1 is the canonical counterexample, exercised in
//! the `kv-core` monotonicity experiments (E2).

use crate::structure::{Element, Structure};

/// The disjoint union of two structures over the same vocabulary. Elements
/// of `b` are shifted by `a.universe_size()`. Constants are taken from `a`
/// (the union keeps `a`'s distinguished elements).
///
/// # Panics
/// Panics if the vocabularies differ.
pub fn disjoint_union(a: &Structure, b: &Structure) -> Structure {
    assert_eq!(
        a.vocabulary(),
        b.vocabulary(),
        "disjoint union requires a common vocabulary"
    );
    let offset = a.universe_size() as Element;
    let mut out = Structure::new(
        a.vocabulary().clone(),
        a.universe_size() + b.universe_size(),
    );
    for rel in a.vocabulary().relations() {
        for t in a.relation(rel).iter() {
            out.insert(rel, t);
        }
        let mut shifted: Vec<Element> = Vec::new();
        for t in b.relation(rel).iter() {
            shifted.clear();
            shifted.extend(t.iter().map(|&e| e + offset));
            out.insert(rel, &shifted);
        }
    }
    for c in a.vocabulary().constants() {
        out.set_constant(c, a.constant(c));
    }
    out
}

/// The substructure of `s` induced by `elements` (order defines the new ids
/// `0, …, m-1`).
///
/// Constants must all be among `elements`; otherwise this panics (a
/// substructure must still interpret every symbol).
pub fn induced_substructure(s: &Structure, elements: &[Element]) -> Structure {
    let mut position = vec![None; s.universe_size()];
    for (i, &e) in elements.iter().enumerate() {
        assert!(
            position[e as usize].is_none(),
            "duplicate element {e} in substructure selection"
        );
        position[e as usize] = Some(i as Element);
    }
    let mut out = Structure::new(s.vocabulary().clone(), elements.len().max(1));
    let mut image: Vec<Element> = Vec::new();
    for rel in s.vocabulary().relations() {
        'tuples: for t in s.relation(rel).iter() {
            image.clear();
            for &e in t.iter() {
                match position[e as usize] {
                    Some(p) => image.push(p),
                    None => continue 'tuples,
                }
            }
            out.insert(rel, &image);
        }
    }
    for c in s.vocabulary().constants() {
        let e = s.constant(c);
        let p = position[e as usize]
            .unwrap_or_else(|| panic!("constant {} not among selected elements", e));
        out.set_constant(c, p);
    }
    out
}

/// The quotient of `s` by the equivalence classes induced by `class_of`:
/// element `e` of the quotient universe is the class `class_of[e]`. The
/// number of classes is `1 + max(class_of)`; every class id below that bound
/// must be used by at least one element.
///
/// Tuples and constants are mapped classwise. This is the "collapsing
/// multiple elements into a single element" operation under which Datalog
/// (but not Datalog(≠)) queries are preserved.
pub fn quotient(s: &Structure, class_of: &[Element]) -> Structure {
    assert_eq!(class_of.len(), s.universe_size(), "class map length");
    let classes = class_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut seen = vec![false; classes];
    for &c in class_of {
        seen[c as usize] = true;
    }
    assert!(seen.iter().all(|&b| b), "unused class id in quotient");
    let mut out = Structure::new(s.vocabulary().clone(), classes.max(1));
    let mut image: Vec<Element> = Vec::new();
    for rel in s.vocabulary().relations() {
        for t in s.relation(rel).iter() {
            image.clear();
            image.extend(t.iter().map(|&e| class_of[e as usize]));
            out.insert(rel, &image);
        }
    }
    for c in s.vocabulary().constants() {
        out.set_constant(c, class_of[s.constant(c) as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{directed_cycle, directed_path};
    use crate::vocabulary::RelId;

    #[test]
    fn disjoint_union_shifts_second() {
        let a = directed_path(3);
        let b = directed_path(2);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.universe_size(), 5);
        assert_eq!(u.tuple_count(), 3);
        assert!(u.contains(RelId(0), &[0, 1]));
        assert!(u.contains(RelId(0), &[3, 4]));
        assert!(!u.contains(RelId(0), &[2, 3]));
    }

    #[test]
    fn induced_substructure_keeps_internal_edges() {
        let p = directed_path(5);
        let sub = induced_substructure(&p, &[1, 2, 3]);
        assert_eq!(sub.universe_size(), 3);
        assert_eq!(sub.tuple_count(), 2);
        assert!(sub.contains(RelId(0), &[0, 1]));
        assert!(sub.contains(RelId(0), &[1, 2]));
    }

    #[test]
    fn induced_substructure_nonconsecutive_drops_edges() {
        let p = directed_path(5);
        let sub = induced_substructure(&p, &[0, 2, 4]);
        assert_eq!(sub.tuple_count(), 0);
    }

    #[test]
    fn quotient_collapses_path_to_loop() {
        // Identify the two endpoints of a 3-path: 0 and 2 become class 0.
        let p = directed_path(3);
        let q = quotient(&p, &[0, 1, 0]);
        assert_eq!(q.universe_size(), 2);
        assert!(q.contains(RelId(0), &[0, 1]));
        assert!(q.contains(RelId(0), &[1, 0]));
    }

    #[test]
    fn quotient_identity_is_isomorphic() {
        let c = directed_cycle(4);
        let q = quotient(&c, &[0, 1, 2, 3]);
        assert_eq!(q, c);
    }

    #[test]
    #[should_panic(expected = "unused class id")]
    fn quotient_rejects_gaps() {
        let p = directed_path(2);
        quotient(&p, &[0, 2]);
    }
}
