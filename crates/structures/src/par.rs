//! Minimal data-parallel helpers on top of `std::thread::scope`.
//!
//! The workspace builds offline with zero external dependencies, so
//! instead of `rayon` this module provides the one primitive the hot paths
//! need: a parallel, order-preserving map over a slice, with work handed
//! out in interleaved strides so uneven items balance across threads.
//!
//! Thread count resolution honors `RAYON_NUM_THREADS` (the de-facto
//! convention for Rust data-parallel code, so deployment guides transfer),
//! then `KV_NUM_THREADS`, then [`std::thread::available_parallelism`].
//! Setting the variable to `1` disables threading entirely — every helper
//! then runs inline on the caller's thread, which keeps single-threaded
//! differential baselines trivial to produce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The number of worker threads parallel helpers will use.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        for var in ["RAYON_NUM_THREADS", "KV_NUM_THREADS"] {
            if let Ok(v) = std::env::var(var) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Applies `f` to every item of `items`, in parallel, returning results in
/// input order. `f` receives the item index and a reference to the item.
///
/// Falls back to a plain sequential loop when the slice is small or the
/// resolved thread count is 1, so callers never pay thread-spawn overhead
/// on trivial inputs.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    // Hand out items by atomic cursor: dynamic load balancing without any
    // per-item channel traffic. Each worker writes its own disjoint slots.
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let slots_ptr = &slots_ptr;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    // SAFETY: every index is claimed by exactly one worker
                    // via the atomic cursor, so writes are disjoint; the
                    // scope guarantees workers finish before `slots` is
                    // read or dropped.
                    unsafe { *slots_ptr.0.add(i) = Some(r) };
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled by a worker"))
        .collect()
}

/// Runs `f` once per worker thread (passing the worker index), in
/// parallel, and returns each worker's result. Used for reduce-style
/// patterns where each worker accumulates a private buffer that the
/// caller merges afterwards.
pub fn par_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 {
        return vec![f(0)];
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(workers);
    out.resize_with(workers, || None);
    std::thread::scope(|scope| {
        for (w, slot) in out.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(w));
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker finished"))
        .collect()
}

/// A raw pointer wrapper that asserts cross-thread sendability for the
/// disjoint-write pattern in [`par_map`].
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_workers_runs_each_index() {
        let mut ids = par_workers(4, |w| w);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
