//! Minimal data-parallel helpers on top of `std::thread::scope`.
//!
//! The workspace builds offline with zero external dependencies, so
//! instead of `rayon` this module provides the one primitive the hot paths
//! need: a parallel, order-preserving map over a slice, with work handed
//! out in interleaved strides so uneven items balance across threads.
//!
//! Thread count resolution honors `RAYON_NUM_THREADS` (the de-facto
//! convention for Rust data-parallel code, so deployment guides transfer),
//! then `KV_NUM_THREADS`, then [`std::thread::available_parallelism`].
//! Setting the variable to `1` disables threading entirely — every helper
//! then runs inline on the caller's thread, which keeps single-threaded
//! differential baselines trivial to produce.

use crate::govern::{Governor, Interrupted};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The number of worker threads parallel helpers will use.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        for var in ["RAYON_NUM_THREADS", "KV_NUM_THREADS"] {
            if let Ok(v) = std::env::var(var) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Applies `f` to every item of `items`, in parallel, returning results in
/// input order. `f` receives the item index and a reference to the item.
///
/// Falls back to a plain sequential loop when the slice is small or the
/// resolved thread count is 1, so callers never pay thread-spawn overhead
/// on trivial inputs.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    // Hand out items by atomic cursor: dynamic load balancing without any
    // per-item channel traffic. Each worker writes its own disjoint slots.
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let slots_ptr = &slots_ptr;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    // SAFETY: every index is claimed by exactly one worker
                    // via the atomic cursor, so writes are disjoint; the
                    // scope guarantees workers finish before `slots` is
                    // read or dropped.
                    unsafe { *slots_ptr.0.add(i) = Some(r) };
                }
            });
        }
    });
    // Infallible: the atomic cursor hands every index to some worker, and
    // the scope joins all workers before `slots` is read.
    #[allow(clippy::expect_used)]
    let out = slots
        .into_iter()
        .map(|s| s.expect("every slot filled by a worker"))
        .collect();
    out
}

/// A governed [`par_map`]: applies the fallible `f` to every item in
/// parallel, but checks the governor cooperatively — each worker charges
/// one step per claimed item and stops claiming as soon as any worker
/// observes an interrupt (cancellation, deadline, or budget).
///
/// On interrupt the whole map is abandoned and the first observed
/// [`Interrupted`] is returned; completed per-item results are discarded,
/// which is what lets callers treat the map as an atomic unit and resume
/// it from the items list (per-item work must be pure).
pub fn try_par_map<T, R, F>(items: &[T], gov: &Governor, f: F) -> Result<Vec<R>, Interrupted>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, Interrupted> + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                gov.step(1)?;
                f(i, t)
            })
            .collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let first_err: Mutex<Option<Interrupted>> = Mutex::new(None);
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let slots_ptr = &slots_ptr;
                loop {
                    if aborted.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = gov.step(1).and_then(|()| f(i, &items[i]));
                    match r {
                        Ok(r) => {
                            // SAFETY: as in `par_map` — each index is
                            // claimed by exactly one worker, writes are
                            // disjoint, and the scope joins before
                            // `slots` is read or dropped.
                            unsafe { *slots_ptr.0.add(i) = Some(r) };
                        }
                        Err(e) => {
                            aborted.store(true, Ordering::Relaxed);
                            let mut guard = first_err.lock().unwrap_or_else(|p| p.into_inner());
                            guard.get_or_insert(e);
                            break;
                        }
                    }
                }
            });
        }
    });
    let err = first_err.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = err {
        return Err(e);
    }
    // Infallible: no worker reported an interrupt, so every slot is full.
    #[allow(clippy::expect_used)]
    let out = slots
        .into_iter()
        .map(|s| s.expect("every slot filled by a worker"))
        .collect();
    Ok(out)
}

/// Runs `f` once per worker thread (passing the worker index), in
/// parallel, and returns each worker's result. Used for reduce-style
/// patterns where each worker accumulates a private buffer that the
/// caller merges afterwards.
pub fn par_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 {
        return vec![f(0)];
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(workers);
    out.resize_with(workers, || None);
    std::thread::scope(|scope| {
        for (w, slot) in out.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(w));
            });
        }
    });
    // Infallible: the scope joins every worker before `out` is read.
    #[allow(clippy::expect_used)]
    let results = out
        .into_iter()
        .map(|s| s.expect("worker finished"))
        .collect();
    results
}

/// A raw pointer wrapper that asserts cross-thread sendability for the
/// disjoint-write pattern in [`par_map`].
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_workers_runs_each_index() {
        let mut ids = par_workers(4, |w| w);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn try_par_map_completes_under_unlimited_governor() {
        let gov = Governor::unlimited();
        let items: Vec<u64> = (0..300).collect();
        let out = try_par_map(&items, &gov, |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out, (1..=300).collect::<Vec<_>>());
        assert_eq!(gov.usage().steps, 300);
    }

    #[test]
    fn try_par_map_stops_on_cancellation() {
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let items: Vec<u64> = (0..1000).collect();
        let err = try_par_map(&items, &gov, |_, &x| {
            if gov.cancel_token().is_cancelled() {
                Err(Interrupted::Cancelled)
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, Interrupted::Cancelled);
    }

    #[test]
    fn try_par_map_propagates_step_budget() {
        let gov = crate::govern::chaos::step_tripper(10);
        let items: Vec<u64> = (0..1000).collect();
        let err = try_par_map(&items, &gov, |_, &x| Ok(x)).unwrap_err();
        assert!(matches!(err, Interrupted::Limit(_)));
    }
}
