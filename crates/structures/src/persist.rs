//! Durable segmented storage: checksummed records, append-only segment
//! logs, and an atomically swapped manifest.
//!
//! This module is the on-disk substrate of crash recovery. It deliberately
//! knows nothing about Datalog — it persists byte payloads and
//! [`MutableStore`] snapshots; the WAL/checkpoint *protocol* lives in
//! `kv-datalog::durable`. The design mirrors the in-memory engine's
//! append-only discipline:
//!
//! - **Records are self-verifying.** Every payload is framed as
//!   `[magic][len][payload][checksum]` with an xxhash-style 64-bit digest
//!   (built from the same splitmix mixing the interner uses), so a reader
//!   can always tell a committed record from a torn or garbage tail.
//! - **Segments are fixed-size and append-only.** A [`SegmentedLog`]
//!   rolls to a fresh `-NNNNNN.seg` file once the current one exceeds its
//!   size target; files are never rewritten, so a crash can only damage
//!   the *tail* of the *last* segment.
//! - **Loading truncates, never panics.** [`SegmentedLog::load`] returns
//!   every record up to the first invalid frame. A bad frame at the tail
//!   of the final segment is the expected signature of a torn write and is
//!   silently truncated (reported in the [`LoadedLog`]); a bad frame
//!   *before* committed data — mid-file, or in a non-final segment — means
//!   real corruption and surfaces as a typed [`RecoveryError`].
//! - **The manifest swap is atomic.** [`write_manifest`] writes a
//!   temporary file and `rename`s it over `MANIFEST`, so the pointer from
//!   "current generation" to its checkpoint and WAL files flips all at
//!   once or not at all.
//!
//! [`MutableStore`] snapshots serialize arity-strided (the arena's own
//! layout) together with their support counts, epoch counter, and
//! epoch-mark generation, and deserialize by re-interning tuples in id
//! order — which reproduces the exact [`crate::TupleId`] assignment and
//! therefore preserves stage identity across a restart.

use crate::mutable::MutableStore;
use crate::store::TupleStore;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Frame marker opening every on-disk record (`"KVS1"` little-endian).
const RECORD_MAGIC: u32 = 0x3153_564B;

/// Frame overhead per record: magic + length + checksum.
const RECORD_OVERHEAD: usize = 4 + 4 + 8;

/// A typed failure while loading or writing durable state. The recovery
/// path never panics on bad bytes: every malformed input decodes to one
/// of these.
#[derive(Debug)]
pub enum RecoveryError {
    /// An operating-system I/O failure.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// What the operation was doing ("open", "read", "rename", …).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Bytes that committed durable state references failed validation —
    /// a checksum mismatch mid-log, an impossible length, a duplicate
    /// tuple in a snapshot.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the bad frame within the file.
        offset: u64,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// The file decoded cleanly but describes a different world — wrong
    /// format version, wrong vocabulary fingerprint, inconsistent counts.
    Mismatch {
        /// The offending file.
        path: PathBuf,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl RecoveryError {
    fn io(path: &Path, op: &'static str, source: std::io::Error) -> Self {
        RecoveryError::Io {
            path: path.to_path_buf(),
            op,
            source,
        }
    }

    fn corrupt(path: &Path, offset: u64, detail: impl Into<String>) -> Self {
        RecoveryError::Corrupt {
            path: path.to_path_buf(),
            offset,
            detail: detail.into(),
        }
    }

    /// A [`RecoveryError::Corrupt`] at `offset` of `path` (public so
    /// higher layers can report corruption inside decoded payloads with
    /// the same type the loaders use).
    pub fn corrupt_at(path: &Path, offset: u64, detail: impl Into<String>) -> Self {
        Self::corrupt(path, offset, detail)
    }

    /// A [`RecoveryError::Mismatch`] for `path` (public because the
    /// protocol layer in `kv-datalog` validates manifests against its
    /// own program fingerprint).
    pub fn mismatch(path: &Path, detail: impl Into<String>) -> Self {
        RecoveryError::Mismatch {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io { path, op, source } => {
                write!(f, "i/o failure during {op} on {}: {source}", path.display())
            }
            RecoveryError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt durable state in {} at byte {offset}: {detail}",
                path.display()
            ),
            RecoveryError::Mismatch { path, detail } => {
                write!(f, "durable state mismatch in {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// An xxhash-style 64-bit digest over `bytes`: 8-byte lanes folded through
/// the engine's splitmix mixing constants, length-salted so a truncated
/// payload never collides with its prefix.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for lane in &mut chunks {
        let mut b = [0u8; 8];
        b.copy_from_slice(lane);
        h ^= u64::from_le_bytes(b).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    for &byte in chunks.remainder() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    h ^= h >> 29;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 32)
}

// ---------------------------------------------------------------------
// Byte-level encoding helpers.
// ---------------------------------------------------------------------

/// Appends little-endian scalars to a byte buffer. All durable payloads in
/// the workspace are built with these two functions — there is exactly one
/// number format on disk.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to a byte buffer.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a decoded payload.
///
/// Every `get_*` returns `Err(description)` instead of panicking when the
/// payload is shorter than the schema expects; callers convert the
/// description into a [`RecoveryError::Corrupt`] with file context.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// The current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        match self.bytes.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(format!(
                "truncated payload: wanted {n} byte(s) of {what} at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )),
        }
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, String> {
        let s = self.take(4, what)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, String> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads `n` consecutive `u32`s.
    pub fn get_u32s(&mut self, n: usize, what: &str) -> Result<Vec<u32>, String> {
        let s = self.take(n.checked_mul(4).ok_or("u32 run length overflow")?, what)?;
        Ok(s.chunks_exact(4)
            .map(|c| {
                let mut b = [0u8; 4];
                b.copy_from_slice(c);
                u32::from_le_bytes(b)
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// Record framing.
// ---------------------------------------------------------------------

/// Appends the framed encoding of `payload` to `buf`:
/// `[magic u32][len u32][payload][checksum64(payload) u64]`.
pub fn frame_record(buf: &mut Vec<u8>, payload: &[u8]) {
    put_u32(buf, RECORD_MAGIC);
    put_u32(buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    put_u64(buf, checksum64(payload));
}

/// The outcome of decoding one frame at an offset of a segment's bytes.
enum Frame<'a> {
    /// A valid record: its payload and the offset of the next frame.
    Ok { payload: &'a [u8], next: usize },
    /// Exactly at end-of-file: a cleanly closed segment.
    End,
    /// Anything else — torn write, garbage, checksum mismatch.
    Invalid { why: String },
}

fn read_frame(bytes: &[u8], at: usize) -> Frame<'_> {
    if at == bytes.len() {
        return Frame::End;
    }
    let header = match bytes.get(at..at + 8) {
        Some(h) => h,
        None => {
            return Frame::Invalid {
                why: format!("torn frame header: {} trailing byte(s)", bytes.len() - at),
            }
        }
    };
    let mut w = [0u8; 4];
    w.copy_from_slice(&header[..4]);
    let magic = u32::from_le_bytes(w);
    w.copy_from_slice(&header[4..]);
    let len = u32::from_le_bytes(w) as usize;
    if magic != RECORD_MAGIC {
        return Frame::Invalid {
            why: format!("bad record magic {magic:#010x}"),
        };
    }
    let body_at = at + 8;
    let payload = match bytes.get(body_at..body_at + len) {
        Some(p) => p,
        None => {
            return Frame::Invalid {
                why: format!(
                    "torn record body: length {len} but only {} byte(s) remain",
                    bytes.len() - body_at
                ),
            }
        }
    };
    let sum_at = body_at + len;
    let stored = match bytes.get(sum_at..sum_at + 8) {
        Some(s) => {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        }
        None => {
            return Frame::Invalid {
                why: "torn record checksum".to_string(),
            }
        }
    };
    if stored != checksum64(payload) {
        return Frame::Invalid {
            why: "record checksum mismatch".to_string(),
        };
    }
    Frame::Ok {
        payload,
        next: sum_at + 8,
    }
}

// ---------------------------------------------------------------------
// Segmented logs.
// ---------------------------------------------------------------------

/// A loaded segment log: every committed record, in append order, plus
/// what the loader had to tolerate at the tail.
#[derive(Debug)]
pub struct LoadedLog {
    /// Committed record payloads in append order.
    pub records: Vec<Vec<u8>>,
    /// Number of segment files found.
    pub segments: usize,
    /// Whether an invalid tail (torn write or trailing garbage) was
    /// truncated from the final segment.
    pub torn_tail: bool,
}

/// An append-only log of checksummed records split across fixed-size
/// segment files `{base}-NNNNNN.seg`.
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    base: String,
    /// Roll to a new segment once the current file reaches this size.
    segment_bytes: u64,
    /// Index of the segment currently open for append.
    index: usize,
    /// Bytes already in the current segment.
    written: u64,
    /// Path of the segment currently open for append (kept so the hot
    /// append path never rebuilds it just for error context).
    path: PathBuf,
    file: File,
    /// Total record bytes appended through this handle (frame included).
    appended: u64,
}

/// The path of segment `index` of log `base` in `dir`.
pub fn segment_path(dir: &Path, base: &str, index: usize) -> PathBuf {
    dir.join(format!("{base}-{index:06}.seg"))
}

impl SegmentedLog {
    /// Creates a fresh log (segment 0, empty). Fails if segment 0 already
    /// exists — logs are never silently overwritten; recovery either
    /// [`load`](Self::load)s and [`reopen`](Self::reopen)s an existing log
    /// or the protocol layer starts a new generation under a new base.
    pub fn create(dir: &Path, base: &str, segment_bytes: u64) -> Result<Self, RecoveryError> {
        let path = segment_path(dir, base, 0);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| RecoveryError::io(&path, "create segment", e))?;
        Ok(SegmentedLog {
            dir: dir.to_path_buf(),
            base: base.to_string(),
            segment_bytes: segment_bytes.max(RECORD_OVERHEAD as u64),
            index: 0,
            written: 0,
            path,
            file,
            appended: 0,
        })
    }

    /// Loads every committed record of log `base` in `dir`. A missing
    /// segment 0 is an empty log. Invalid bytes at the tail of the final
    /// segment are tolerated (torn write); invalid bytes anywhere else are
    /// a [`RecoveryError::Corrupt`].
    pub fn load(dir: &Path, base: &str) -> Result<LoadedLog, RecoveryError> {
        let mut records = Vec::new();
        let mut segments = 0usize;
        let mut torn_tail = false;
        loop {
            let path = segment_path(dir, base, segments);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => return Err(RecoveryError::io(&path, "read segment", e)),
            };
            segments += 1;
            let last_segment = !segment_path(dir, base, segments).exists();
            let mut at = 0usize;
            loop {
                match read_frame(&bytes, at) {
                    Frame::Ok { payload, next } => {
                        records.push(payload.to_vec());
                        at = next;
                    }
                    Frame::End => break,
                    Frame::Invalid { why } => {
                        if last_segment {
                            // The torn tail of the final segment is the
                            // normal signature of a crash mid-append:
                            // truncate to the last valid record.
                            torn_tail = true;
                            break;
                        }
                        return Err(RecoveryError::corrupt(
                            &path,
                            at as u64,
                            format!("{why} (followed by committed segment(s))"),
                        ));
                    }
                }
            }
            if torn_tail {
                break;
            }
        }
        Ok(LoadedLog {
            records,
            segments,
            torn_tail,
        })
    }

    /// Reopens an existing log for append, truncating any invalid tail of
    /// the final segment first (so the next append lands right after the
    /// last committed record). A log with no segments starts at segment 0.
    pub fn reopen(dir: &Path, base: &str, segment_bytes: u64) -> Result<Self, RecoveryError> {
        // Find the last existing segment.
        let mut count = 0usize;
        while segment_path(dir, base, count).exists() {
            count += 1;
        }
        if count == 0 {
            return Self::create(dir, base, segment_bytes);
        }
        let index = count - 1;
        let path = segment_path(dir, base, index);
        let bytes = fs::read(&path).map_err(|e| RecoveryError::io(&path, "read segment", e))?;
        let mut at = 0usize;
        while let Frame::Ok { next, .. } = read_frame(&bytes, at) {
            at = next;
        }
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| RecoveryError::io(&path, "open segment", e))?;
        file.set_len(at as u64)
            .map_err(|e| RecoveryError::io(&path, "truncate torn tail", e))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| RecoveryError::io(&path, "seek", e))?;
        Ok(SegmentedLog {
            dir: dir.to_path_buf(),
            base: base.to_string(),
            segment_bytes: segment_bytes.max(RECORD_OVERHEAD as u64),
            index,
            written: at as u64,
            path,
            file,
            appended: 0,
        })
    }

    fn roll_if_full(&mut self, incoming: u64) -> Result<(), RecoveryError> {
        if self.written > 0 && self.written + incoming > self.segment_bytes {
            self.index += 1;
            let path = segment_path(&self.dir, &self.base, self.index);
            self.file = OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
                .map_err(|e| RecoveryError::io(&path, "create segment", e))?;
            self.path = path;
            self.written = 0;
        }
        Ok(())
    }

    /// Appends one framed record, rolling to a new segment when the
    /// current one is full. The bytes are handed to the OS in a single
    /// write; call [`sync`](Self::sync) to force them to stable storage.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), RecoveryError> {
        let mut buf = Vec::with_capacity(payload.len() + RECORD_OVERHEAD);
        frame_record(&mut buf, payload);
        self.roll_if_full(buf.len() as u64)?;
        self.file
            .write_all(&buf)
            .map_err(|e| RecoveryError::io(&self.path, "append record", e))?;
        self.written += buf.len() as u64;
        self.appended += buf.len() as u64;
        Ok(())
    }

    /// Crash simulation for the recovery chaos suite: appends only the
    /// first `keep` bytes of the framed record — exactly what a power cut
    /// mid-`write` leaves behind — without updating the append counters.
    /// The log handle must not be used afterwards; tests abort the
    /// process right after calling this.
    pub fn append_torn(&mut self, payload: &[u8], keep: usize) -> Result<(), RecoveryError> {
        let mut buf = Vec::with_capacity(payload.len() + RECORD_OVERHEAD);
        frame_record(&mut buf, payload);
        buf.truncate(keep.max(1).min(buf.len().saturating_sub(1)));
        self.roll_if_full(buf.len() as u64)?;
        self.file
            .write_all(&buf)
            .map_err(|e| RecoveryError::io(&self.path, "append torn record", e))
    }

    /// Forces appended records to stable storage (`fsync`).
    pub fn sync(&mut self) -> Result<(), RecoveryError> {
        self.file
            .sync_data()
            .map_err(|e| RecoveryError::io(&self.path, "sync segment", e))
    }

    /// Total framed bytes appended through this handle.
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }

    /// Removes every segment file of log `base` in `dir` (best-effort:
    /// a file that vanishes concurrently is not an error).
    pub fn remove_all(dir: &Path, base: &str) {
        let mut i = 0usize;
        loop {
            let path = segment_path(dir, base, i);
            if fs::remove_file(&path).is_err() {
                break;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------

/// The manifest file name within a durable directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";
const MANIFEST_VERSION: u32 = 1;

/// The root pointer of a durable directory: which generation is current,
/// what epoch its checkpoint snapshot covers, and a fingerprint of the
/// world it belongs to. Swapped atomically by [`write_manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint generation; names the live `ckpt-*/wal-*` files.
    pub generation: u64,
    /// Engine epoch covered by the generation's checkpoint snapshot
    /// (0 = no snapshot: replay starts from the empty engine).
    pub checkpoint_epoch: u64,
    /// Caller-defined fingerprint of the program/vocabulary/universe the
    /// directory serves; validated on open.
    pub fingerprint: u64,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(4 + 8 * 3);
        put_u32(&mut p, MANIFEST_VERSION);
        put_u64(&mut p, self.generation);
        put_u64(&mut p, self.checkpoint_epoch);
        put_u64(&mut p, self.fingerprint);
        p
    }

    fn decode(path: &Path, payload: &[u8]) -> Result<Self, RecoveryError> {
        let fail = |d: String| RecoveryError::corrupt(path, 0, d);
        let mut r = ByteReader::new(payload);
        let version = r.get_u32("manifest version").map_err(fail)?;
        if version != MANIFEST_VERSION {
            return Err(RecoveryError::mismatch(
                path,
                format!("manifest version {version}, expected {MANIFEST_VERSION}"),
            ));
        }
        let generation = r.get_u64("generation").map_err(fail)?;
        let checkpoint_epoch = r.get_u64("checkpoint epoch").map_err(fail)?;
        let fingerprint = r.get_u64("fingerprint").map_err(fail)?;
        Ok(Manifest {
            generation,
            checkpoint_epoch,
            fingerprint,
        })
    }
}

/// Writes `manifest` durably: framed into `MANIFEST.tmp`, synced, then
/// renamed over `MANIFEST` (atomic on POSIX filesystems), with a
/// directory sync when `fsync` is set so the rename itself is durable.
pub fn write_manifest(dir: &Path, manifest: &Manifest, fsync: bool) -> Result<(), RecoveryError> {
    let tmp = dir.join(MANIFEST_TMP_NAME);
    let dst = dir.join(MANIFEST_NAME);
    let mut buf = Vec::new();
    frame_record(&mut buf, &manifest.encode());
    let mut file =
        File::create(&tmp).map_err(|e| RecoveryError::io(&tmp, "create manifest tmp", e))?;
    file.write_all(&buf)
        .map_err(|e| RecoveryError::io(&tmp, "write manifest tmp", e))?;
    if fsync {
        file.sync_data()
            .map_err(|e| RecoveryError::io(&tmp, "sync manifest tmp", e))?;
    }
    drop(file);
    fs::rename(&tmp, &dst).map_err(|e| RecoveryError::io(&dst, "rename manifest", e))?;
    if fsync {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates the manifest of a durable directory. `Ok(None)`
/// when no manifest exists (a fresh directory); torn or garbage bytes are
/// a [`RecoveryError::Corrupt`] — the manifest is one small record written
/// through an atomic rename, so unlike a log tail it is never expected to
/// be torn.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, RecoveryError> {
    let path = dir.join(MANIFEST_NAME);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(RecoveryError::io(&path, "read manifest", e)),
    };
    match read_frame(&bytes, 0) {
        Frame::Ok { payload, next } if next == bytes.len() => {
            Manifest::decode(&path, payload).map(Some)
        }
        Frame::Ok { next, .. } => Err(RecoveryError::corrupt(
            &path,
            next as u64,
            format!(
                "{} trailing byte(s) after the manifest record",
                bytes.len() - next
            ),
        )),
        Frame::End => Err(RecoveryError::corrupt(&path, 0, "empty manifest file")),
        Frame::Invalid { why } => Err(RecoveryError::corrupt(&path, 0, why)),
    }
}

// ---------------------------------------------------------------------
// Counter snapshots.
// ---------------------------------------------------------------------

/// Appends the encoding of an [`EvalStats`] record (eight `u64` counters
/// in declaration order).
pub fn encode_eval_stats(buf: &mut Vec<u8>, s: &crate::store::EvalStats) {
    for v in [
        s.tuples_interned,
        s.duplicate_derivations,
        s.join_probes,
        s.magic_probes,
        s.block_probes,
        s.gallop_steps,
        s.wcoj_rules,
        s.stages,
    ] {
        put_u64(buf, v);
    }
}

/// Decodes an [`EvalStats`] record written by [`encode_eval_stats`].
pub fn decode_eval_stats(
    r: &mut ByteReader<'_>,
    path: &Path,
) -> Result<crate::store::EvalStats, RecoveryError> {
    let at = r.pos() as u64;
    let mut get = |what| {
        r.get_u64(what)
            .map_err(|d| RecoveryError::corrupt(path, at, d))
    };
    Ok(crate::store::EvalStats {
        tuples_interned: get("tuples_interned")?,
        duplicate_derivations: get("duplicate_derivations")?,
        join_probes: get("join_probes")?,
        magic_probes: get("magic_probes")?,
        block_probes: get("block_probes")?,
        gallop_steps: get("gallop_steps")?,
        wcoj_rules: get("wcoj_rules")?,
        stages: get("stages")?,
    })
}

// ---------------------------------------------------------------------
// MutableStore snapshots.
// ---------------------------------------------------------------------

/// Appends the snapshot encoding of `store` to `buf`: arity, tuple count,
/// epoch counter, epoch marks, the arity-strided element data in id
/// order, and the per-tuple support counts.
pub fn encode_mutable_store(buf: &mut Vec<u8>, store: &MutableStore) {
    let n = store.len();
    put_u32(buf, store.arity() as u32);
    put_u32(buf, n as u32);
    put_u64(buf, store.epoch());
    let marks = store.epoch_marks();
    put_u32(buf, marks.len() as u32);
    for &m in marks {
        put_u32(buf, m);
    }
    for &e in store.store().range_slice(store.store().id_range()) {
        put_u32(buf, e);
    }
    for id in 0..n as u32 {
        put_u32(buf, store.support(crate::store::TupleId(id)));
    }
}

/// Decodes one [`MutableStore`] snapshot from `r`, re-interning tuples in
/// id order so the rebuilt arena assigns the exact ids the snapshot was
/// taken with. `path` contextualizes errors.
pub fn decode_mutable_store(
    r: &mut ByteReader<'_>,
    path: &Path,
) -> Result<MutableStore, RecoveryError> {
    let at = r.pos() as u64;
    let fail = |d: String| RecoveryError::corrupt(path, at, d);
    let arity = r.get_u32("store arity").map_err(&fail)? as usize;
    let n = r.get_u32("store tuple count").map_err(&fail)? as usize;
    if arity > 64 || n > (u32::MAX as usize) / arity.max(1) {
        return Err(fail(format!(
            "implausible store shape: arity {arity}, {n} tuple(s)"
        )));
    }
    let epoch = r.get_u64("store epoch").map_err(&fail)?;
    let marks_len = r.get_u32("epoch mark count").map_err(&fail)? as usize;
    if marks_len as u64 > epoch {
        return Err(fail(format!(
            "{marks_len} epoch mark(s) exceed epoch {epoch}"
        )));
    }
    let marks = r.get_u32s(marks_len, "epoch marks").map_err(&fail)?;
    let data = r.get_u32s(n * arity, "tuple data").map_err(&fail)?;
    let support = r.get_u32s(n, "support counts").map_err(&fail)?;
    let mut rebuilt = TupleStore::with_capacity(arity, n);
    for tuple in data.chunks_exact(arity.max(1)).take(n) {
        let (_, fresh) = rebuilt.intern(&tuple[..arity]);
        if !fresh {
            return Err(fail(format!("duplicate tuple {tuple:?} in store snapshot")));
        }
    }
    if arity == 0 && n > 1 {
        return Err(fail(format!("{n} distinct nullary tuples")));
    }
    if arity == 0 && n == 1 {
        rebuilt.intern(&[]);
    }
    MutableStore::from_parts(rebuilt, support, epoch, marks)
        .map_err(|d| RecoveryError::corrupt(path, at, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("kv-persist-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    #[test]
    fn checksum_is_length_salted_and_sensitive() {
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefg"));
        let mut bytes = b"hello durable world, longer than one lane".to_vec();
        let base = checksum64(&bytes);
        for i in 0..bytes.len() {
            bytes[i] ^= 1;
            assert_ne!(base, checksum64(&bytes), "flip at {i} must change digest");
            bytes[i] ^= 1;
        }
        assert_eq!(base, checksum64(&bytes));
    }

    #[test]
    fn log_round_trips_records_across_segments() {
        let dir = temp_dir("roundtrip");
        let payloads: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 1 + i as usize]).collect();
        {
            let mut log = SegmentedLog::create(&dir, "wal-0000", 64).expect("create");
            for p in &payloads {
                log.append(p).expect("append");
            }
            log.sync().expect("sync");
            assert!(log.appended_bytes() > 0);
        }
        let loaded = SegmentedLog::load(&dir, "wal-0000").expect("load");
        assert_eq!(loaded.records, payloads);
        assert!(loaded.segments > 1, "64-byte segments must roll");
        assert!(!loaded.torn_tail);
        // Reopen + append lands after the committed records.
        let mut log = SegmentedLog::reopen(&dir, "wal-0000", 64).expect("reopen");
        log.append(b"tail").expect("append");
        let again = SegmentedLog::load(&dir, "wal-0000").expect("load");
        assert_eq!(again.records.len(), payloads.len() + 1);
        assert_eq!(again.records.last().map(Vec::as_slice), Some(&b"tail"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reopen_heals_it() {
        let dir = temp_dir("torn");
        {
            let mut log = SegmentedLog::create(&dir, "w", 1 << 16).expect("create");
            log.append(b"one").expect("append");
            log.append(b"two").expect("append");
            log.append_torn(b"three-never-committed", 7).expect("torn");
        }
        let loaded = SegmentedLog::load(&dir, "w").expect("load");
        assert_eq!(loaded.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(loaded.torn_tail);
        // Reopen truncates the torn bytes; the next append is then valid.
        let mut log = SegmentedLog::reopen(&dir, "w", 1 << 16).expect("reopen");
        log.append(b"three").expect("append");
        let healed = SegmentedLog::load(&dir, "w").expect("load");
        assert!(!healed.torn_tail);
        assert_eq!(
            healed.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trailing_garbage_is_tolerated_only_on_the_final_segment() {
        let dir = temp_dir("garbage");
        {
            let mut log = SegmentedLog::create(&dir, "w", 48).expect("create");
            for i in 0..12u8 {
                log.append(&[i; 9]).expect("append");
            }
        }
        let clean = SegmentedLog::load(&dir, "w").expect("load");
        assert!(clean.segments > 1);
        // Garbage at the tail of the *final* segment: truncated.
        let last = segment_path(&dir, "w", clean.segments - 1);
        let mut f = OpenOptions::new().append(true).open(&last).expect("open");
        f.write_all(b"\xde\xad\xbe\xef").expect("write");
        drop(f);
        let tolerated = SegmentedLog::load(&dir, "w").expect("load");
        assert_eq!(tolerated.records.len(), 12);
        assert!(tolerated.torn_tail);
        // The same garbage on an *earlier* segment is real corruption.
        let first = segment_path(&dir, "w", 0);
        let mut f = OpenOptions::new().append(true).open(&first).expect("open");
        f.write_all(b"\xde\xad").expect("write");
        drop(f);
        let err = SegmentedLog::load(&dir, "w").expect_err("mid-log corruption");
        assert!(matches!(err, RecoveryError::Corrupt { .. }), "got {err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_swap_is_atomic_and_validated() {
        let dir = temp_dir("manifest");
        assert!(read_manifest(&dir).expect("fresh dir").is_none());
        let m1 = Manifest {
            generation: 0,
            checkpoint_epoch: 0,
            fingerprint: 0xfeed,
        };
        write_manifest(&dir, &m1, true).expect("write");
        assert_eq!(read_manifest(&dir).expect("read"), Some(m1));
        let m2 = Manifest {
            generation: 3,
            checkpoint_epoch: 17,
            fingerprint: 0xfeed,
        };
        write_manifest(&dir, &m2, false).expect("write");
        assert_eq!(read_manifest(&dir).expect("read"), Some(m2.clone()));
        // No MANIFEST.tmp survives a successful swap.
        assert!(!dir.join(MANIFEST_TMP_NAME).exists());
        // A corrupted manifest is a typed error, not a panic.
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).expect("read bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).expect("write corrupt");
        assert!(matches!(
            read_manifest(&dir),
            Err(RecoveryError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutable_store_snapshot_round_trips_ids_supports_and_epochs() {
        let mut m = MutableStore::new(2);
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..50 {
            let t = [rng.gen_range(0u32..9), rng.gen_range(0u32..9)];
            if rng.gen_bool(0.3) {
                m.retract(&t);
            } else {
                m.insert(&t);
            }
            if rng.gen_bool(0.2) {
                m.commit_epoch();
            }
        }
        let mut buf = Vec::new();
        encode_mutable_store(&mut buf, &m);
        let mut r = ByteReader::new(&buf);
        let back = decode_mutable_store(&mut r, Path::new("mem")).expect("round trip");
        assert!(r.is_exhausted());
        assert_eq!(back.arity(), m.arity());
        assert_eq!(back.len(), m.len());
        assert_eq!(back.epoch(), m.epoch());
        assert_eq!(back.epoch_marks(), m.epoch_marks());
        for id in 0..m.len() as u32 {
            let id = crate::store::TupleId(id);
            // Identical ids, tuples, and supports: stage identity survives.
            assert_eq!(back.store().get(id), m.store().get(id));
            assert_eq!(back.support(id), m.support(id));
        }
    }

    #[test]
    fn corrupted_snapshots_decode_to_typed_errors() {
        let mut m = MutableStore::new(3);
        for i in 0..10u32 {
            m.insert(&[i, i + 1, i + 2]);
        }
        m.commit_epoch();
        let mut buf = Vec::new();
        encode_mutable_store(&mut buf, &m);
        // Truncation at every prefix length: typed error or clean success,
        // never a panic.
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(
                decode_mutable_store(&mut r, Path::new("mem")).is_err(),
                "truncation at {cut} must fail (snapshot is length-exact)"
            );
        }
        // A duplicated tuple row is caught by the re-interning pass.
        let mut dup = buf.clone();
        // Rows start after arity(4) + n(4) + epoch(8) + marks_len(4) + marks(4).
        let rows_at = 4 + 4 + 8 + 4 + 4;
        let row = dup[rows_at..rows_at + 12].to_vec();
        dup[rows_at + 12..rows_at + 24].copy_from_slice(&row);
        let mut r = ByteReader::new(&dup);
        let err = decode_mutable_store(&mut r, Path::new("mem")).expect_err("duplicate row");
        assert!(err.to_string().contains("duplicate tuple"), "got {err}");
    }
}
