//! Query plans and the engine-level memo cache for demand-driven runs.
//!
//! A [`QueryPlan`] records, per goal position, whether the query binds that
//! position to a concrete element, and which [`DemandStrategy`] the engine
//! should take for that binding pattern. Upper layers (`kv-core`'s
//! `ProgramQuery`, `kv-homeomorphism`'s solver) consult the plan to decide
//! between full saturation and the demand path (magic-set rewriting for
//! Datalog, lazy arena expansion for pebble games).
//!
//! Repeated-query traffic is served by a [`QueryCache`]: boolean answers
//! memoized under an interned [`StructureId`] (content fingerprint, see
//! [`StructureRegistry`]) plus the query tuple.

use std::collections::HashMap;
use std::fmt;

use crate::structure::{Element, Structure};

/// How the engine should evaluate a query with a given binding pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandStrategy {
    /// Saturate the full IDB / materialize the full arena, then look up.
    Full,
    /// Derive only goal-relevant facts: magic-set rewriting on the Datalog
    /// side, lazy dominance-pruned arena expansion on the game side.
    Demand,
}

/// How a Datalog program's rule bodies are compiled into join loops.
///
/// `Textual` evaluates every body in the order the rule was written (the
/// paper's presentation, and the engine's historical behaviour);
/// `CostBased` lets the planner in `kv-datalog` reorder atoms by estimated
/// selectivity and select specialized join kernels. Both modes derive the
/// *same tuple set at every stage* — atom order within a body is
/// semantics-free — so differential suites can run each side by side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlannerMode {
    /// Textual atom order, generic probe loop.
    Textual,
    /// Cost-based atom order with specialized join kernels (the
    /// production default).
    #[default]
    CostBased,
}

impl fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlannerMode::Textual => "textual",
            PlannerMode::CostBased => "cost-based",
        })
    }
}

/// How cost-based plans lower each rule body into an executable join.
///
/// Binary lowering runs the planned atom order through pairwise kernels
/// (scan/probe/merge/check); generic lowering runs a worst-case-optimal
/// variable-at-a-time join over sorted posting intersections. Both lowerings
/// run *inside* the global semi-naive stage loop and derive the same tuple
/// set at every stage (the Theorem 3.6 stage-identity suites certify this),
/// so the choice is purely a performance knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JoinLowering {
    /// Per rule: generic join for cyclic bodies whose estimated binary
    /// intermediates blow up past the estimated output, binary otherwise.
    #[default]
    Auto,
    /// Force pairwise binary kernels for every rule.
    Binary,
    /// Force the worst-case-optimal generic join for every rule with at
    /// least two body atoms.
    Generic,
}

impl fmt::Display for JoinLowering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinLowering::Auto => "auto",
            JoinLowering::Binary => "binary",
            JoinLowering::Generic => "generic",
        })
    }
}

/// A binding pattern plus the demand strategy chosen for it.
///
/// The pattern has one flag per goal position: `true` means the query
/// supplies a concrete element there ("bound"), `false` means the position
/// is left open ("free"). The plan additionally carries the
/// [`PlannerMode`] the engine should compile rule bodies with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    pattern: Vec<bool>,
    strategy: DemandStrategy,
    planner: PlannerMode,
    lowering: JoinLowering,
}

impl QueryPlan {
    /// A plan with an explicit pattern and strategy (default planner mode).
    pub fn new(pattern: Vec<bool>, strategy: DemandStrategy) -> Self {
        Self {
            pattern,
            strategy,
            planner: PlannerMode::default(),
            lowering: JoinLowering::default(),
        }
    }

    /// The same plan with an explicit [`PlannerMode`].
    pub fn with_planner(mut self, planner: PlannerMode) -> Self {
        self.planner = planner;
        self
    }

    /// The planner mode rule bodies are compiled with.
    pub fn planner(&self) -> PlannerMode {
        self.planner
    }

    /// The same plan with an explicit [`JoinLowering`].
    pub fn with_lowering(mut self, lowering: JoinLowering) -> Self {
        self.lowering = lowering;
        self
    }

    /// The join lowering cost-based plans execute rule bodies with.
    pub fn lowering(&self) -> JoinLowering {
        self.lowering
    }

    /// Full saturation for an `arity`-ary goal (all positions free).
    pub fn full(arity: usize) -> Self {
        Self::new(vec![false; arity], DemandStrategy::Full)
    }

    /// The automatic policy: take the demand path whenever at least one
    /// position is bound, full saturation otherwise (an all-free query
    /// needs every answer anyway, so demand buys nothing).
    pub fn auto(pattern: Vec<bool>) -> Self {
        let strategy = if pattern.iter().any(|&b| b) {
            DemandStrategy::Demand
        } else {
            DemandStrategy::Full
        };
        Self::new(pattern, strategy)
    }

    /// The binding pattern, one flag per goal position.
    pub fn pattern(&self) -> &[bool] {
        &self.pattern
    }

    /// The chosen strategy.
    pub fn strategy(&self) -> DemandStrategy {
        self.strategy
    }

    /// Whether this plan routes to the demand path.
    pub fn is_demand(&self) -> bool {
        self.strategy == DemandStrategy::Demand
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.pattern.iter().filter(|&&b| b).count()
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.pattern {
            f.write_str(if b { "b" } else { "f" })?;
        }
        write!(
            f,
            "/{}",
            match self.strategy {
                DemandStrategy::Full => "full",
                DemandStrategy::Demand => "demand",
            }
        )
    }
}

/// Identity of an interned structure in a [`StructureRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(pub u32);

/// A 64-bit content fingerprint of a structure: universe size, constants,
/// and the (order-independent) multiset of tuples per relation.
///
/// Tuple contributions are combined commutatively, so two structures that
/// interned the same relation contents in different orders fingerprint
/// identically. Collisions only cost a spurious cache identity, so the
/// registry additionally keeps the full fingerprint key.
pub fn structure_fingerprint(s: &Structure) -> u64 {
    let mut h = mix(0x9e37_79b9_7f4a_7c15 ^ s.universe_size() as u64);
    for &c in s.constant_values() {
        h = mix(h ^ u64::from(c).wrapping_add(0x517c_c1b7_2722_0a95));
    }
    for rel in s.vocabulary().relations() {
        let store = s.relation(rel).store();
        let mut rel_acc = 0u64;
        for tuple in store.iter() {
            let mut t = mix(rel.0 as u64 ^ 0xd6e8_feb8_6659_fd93);
            for &e in tuple {
                t = mix(t ^ u64::from(e));
            }
            // Commutative combine: interning order must not matter.
            rel_acc = rel_acc.wrapping_add(t);
        }
        h = mix(h ^ rel_acc ^ (store.len() as u64).rotate_left(17));
    }
    h
}

/// SplitMix64 finalizer — cheap, well-mixed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Interns structures by content fingerprint, assigning stable
/// [`StructureId`]s for cache keys.
#[derive(Debug, Default)]
pub struct StructureRegistry {
    by_fingerprint: HashMap<u64, StructureId>,
}

impl StructureRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the id previously assigned to a structure
    /// with the same fingerprint if one exists.
    pub fn intern(&mut self, s: &Structure) -> StructureId {
        let fp = structure_fingerprint(s);
        let next = StructureId(self.by_fingerprint.len() as u32);
        *self.by_fingerprint.entry(fp).or_insert(next)
    }

    /// Number of distinct structures interned so far.
    pub fn len(&self) -> usize {
        self.by_fingerprint.len()
    }

    /// Whether no structure has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_fingerprint.is_empty()
    }
}

/// Hit/miss/eviction counters of a [`QueryCache`] (or any cache built on
/// [`ClockCache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be computed.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Entries dropped by capacity pressure (clock eviction). Stale
    /// entries aged out by an epoch bump are not counted here.
    pub evictions: u64,
}

/// One resident entry of a [`ClockCache`].
#[derive(Debug)]
struct ClockSlot<K> {
    key: K,
    answer: bool,
    /// Epoch the answer was computed against.
    stamp: u64,
    /// Second-chance bit: set on every hit, cleared by the sweeping hand.
    referenced: bool,
}

/// A capacity-bounded boolean-answer cache with **clock** (second-chance)
/// eviction over **epoch-stamped** entries, generic in the key.
///
/// This is the shared engine under both the structure-fingerprint-keyed
/// [`QueryCache`] and the serving layer's epoch-keyed result cache:
///
/// - Every entry carries the epoch it was computed at. A
///   [`bump_epoch`](Self::bump_epoch) (the backing store mutated) makes
///   older entries stale; a stale entry can never be served — the check
///   happens inside [`get`](Self::get), before any answer is returned —
///   and is dropped lazily on lookup or swept by the clock hand.
/// - [`insert_if_epoch`](Self::insert_if_epoch) is the **race-free**
///   check-and-insert: the caller captures the epoch when it takes its
///   snapshot (at [`get`](Self::get) time, under the same lock) and the
///   insert is rejected if a writer bumped the epoch while the answer was
///   being computed. Without the check, a slow reader could publish an
///   answer computed against the pre-batch store stamped as post-batch.
/// - At capacity, insertion evicts by the classic clock sweep: the hand
///   clears second-chance bits until it lands on an unreferenced slot
///   (stale slots are immediate victims regardless of their bit).
#[derive(Debug)]
pub struct ClockCache<K> {
    index: HashMap<K, usize>,
    slots: Vec<ClockSlot<K>>,
    hand: usize,
    capacity: Option<usize>,
    epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K> Default for ClockCache<K> {
    fn default() -> Self {
        Self {
            index: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            capacity: None,
            epoch: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone> ClockCache<K> {
    /// An unbounded cache (entries only leave by going stale).
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that holds at most `capacity` entries, evicting by clock
    /// sweep when full. A capacity of zero caches nothing.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The current store epoch answers are stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Marks every currently stored answer stale (the backing store
    /// mutated) and returns the new epoch. Stale entries are evicted
    /// lazily on lookup or by the clock sweep rather than eagerly
    /// dropped, so a batch that only touches one key's answers can patch
    /// them back in at the new epoch and leave the rest to age out.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Drops the slot at `i`, keeping the ring dense (swap-remove) and the
    /// index and hand consistent.
    fn drop_slot(&mut self, i: usize) {
        let slot = self.slots.swap_remove(i);
        self.index.remove(&slot.key);
        if i < self.slots.len() {
            // The former tail moved into `i`: repoint its index entry.
            *self
                .index
                .get_mut(&self.slots[i].key)
                .unwrap_or_else(|| unreachable!("moved slot key is indexed")) = i;
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
    }

    /// Looks up the memoized answer for `key`, counting a hit or a miss.
    /// An entry stamped before the current epoch is stale: it is evicted
    /// and the lookup counts as a miss.
    pub fn get(&mut self, key: &K) -> Option<bool> {
        match self.index.get(key).copied() {
            Some(i) if self.slots[i].stamp == self.epoch => {
                self.slots[i].referenced = true;
                self.hits += 1;
                Some(self.slots[i].answer)
            }
            Some(i) => {
                self.drop_slot(i);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records `answer` for `key`, stamped with the current epoch,
    /// evicting by clock sweep if the cache is at capacity.
    pub fn insert(&mut self, key: K, answer: bool) {
        if self.capacity == Some(0) {
            return;
        }
        if let Some(&i) = self.index.get(&key) {
            let slot = &mut self.slots[i];
            slot.answer = answer;
            slot.stamp = self.epoch;
            slot.referenced = true;
            return;
        }
        if let Some(cap) = self.capacity {
            while self.slots.len() >= cap {
                self.evict_one();
            }
        }
        self.index.insert(key.clone(), self.slots.len());
        self.slots.push(ClockSlot {
            key,
            answer,
            stamp: self.epoch,
            referenced: false,
        });
    }

    /// Race-free check-and-insert: records `answer` only if the cache is
    /// still at `observed_epoch` — the epoch the caller captured when it
    /// took the snapshot its answer was computed against. Returns whether
    /// the entry was stored. A writer that committed a batch (and bumped
    /// the epoch) between the caller's snapshot and this insert makes the
    /// answer stale-on-arrival; storing it would stamp a pre-batch answer
    /// as post-batch, exactly the staleness the epoch discipline exists
    /// to rule out.
    pub fn insert_if_epoch(&mut self, key: K, answer: bool, observed_epoch: u64) -> bool {
        if observed_epoch != self.epoch {
            return false;
        }
        self.insert(key, answer);
        true
    }

    /// One clock-sweep eviction. Stale slots are taken on sight;
    /// fresh referenced slots get their second chance (bit cleared, hand
    /// moves on). Terminates: after one full lap every bit is clear.
    fn evict_one(&mut self) {
        debug_assert!(!self.slots.is_empty(), "evict from a non-empty ring");
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.stamp == self.epoch && slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                let victim = self.hand;
                self.drop_slot(victim);
                self.evictions += 1;
                return;
            }
        }
    }

    /// Current hit/miss/entry/eviction counters. `entries` counts stored
    /// entries including stale ones not yet dropped.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.slots.len() as u64,
            evictions: self.evictions,
        }
    }
}

/// Cache key: interned structure id + boxed query tuple.
type CacheKey = (StructureId, Box<[Element]>);

/// Memoized boolean query answers keyed by interned structure id + query
/// tuple. Shared registry + [`ClockCache`] so one cache serves repeated
/// traffic over many structures.
///
/// Every entry is stamped with the cache **epoch** current at insert time.
/// Mutating backends (incremental maintenance over a changing EDB) call
/// [`bump_epoch`](Self::bump_epoch) when the underlying store changes:
/// entries stamped before the bump become stale and are dropped lazily the
/// next time they are looked up. The staleness check happens *inside*
/// [`get`](Self::get) — before any answer can be returned — so a stale hit
/// can never be served after a mutation, regardless of how callers order
/// their governor checks around the lookup. After a batch the maintaining
/// backend may re-[`insert`](Self::insert) ("patch") the answers it just
/// recomputed at the new epoch instead of rebuilding the cache wholesale.
///
/// Concurrent readers that compute answers outside the cache lock must use
/// the [`get_keyed`](Self::get_keyed) / [`insert_if_epoch`](Self::insert_if_epoch)
/// pair so an insert that raced a writer's epoch bump is rejected instead
/// of stamping a pre-batch answer at the post-batch epoch.
#[derive(Debug, Default)]
pub struct QueryCache {
    registry: StructureRegistry,
    answers: ClockCache<CacheKey>,
}

impl QueryCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded at `capacity` entries (clock eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            registry: StructureRegistry::new(),
            answers: ClockCache::with_capacity(capacity),
        }
    }

    /// The current store epoch answers are stamped with.
    pub fn epoch(&self) -> u64 {
        self.answers.epoch()
    }

    /// Marks every currently stored answer stale (the backing store
    /// mutated) and returns the new epoch; see [`ClockCache::bump_epoch`].
    pub fn bump_epoch(&mut self) -> u64 {
        self.answers.bump_epoch()
    }

    /// Looks up the memoized answer for `query` on `s`, counting a hit or
    /// a miss. An entry stamped before the current epoch is stale: it is
    /// evicted and the lookup counts as a miss.
    pub fn get(&mut self, s: &Structure, query: &[Element]) -> Option<bool> {
        self.get_keyed(s, query).0
    }

    /// Like [`get`](Self::get), additionally returning the epoch observed
    /// at lookup time — the token [`insert_if_epoch`](Self::insert_if_epoch)
    /// validates after the caller has computed the answer outside the
    /// lock.
    pub fn get_keyed(&mut self, s: &Structure, query: &[Element]) -> (Option<bool>, u64) {
        let id = self.registry.intern(s);
        let key = (id, Box::from(query));
        (self.answers.get(&key), self.answers.epoch())
    }

    /// Records the answer for `query` on `s`, stamped with the current
    /// epoch.
    pub fn insert(&mut self, s: &Structure, query: &[Element], answer: bool) {
        let id = self.registry.intern(s);
        self.answers.insert((id, Box::from(query)), answer);
    }

    /// Race-free check-and-insert: records the answer only if the epoch
    /// observed at [`get_keyed`](Self::get_keyed) time is still current
    /// (no batch committed while the answer was computed). Returns whether
    /// the entry was stored.
    pub fn insert_if_epoch(
        &mut self,
        s: &Structure,
        query: &[Element],
        answer: bool,
        observed_epoch: u64,
    ) -> bool {
        let id = self.registry.intern(s);
        self.answers
            .insert_if_epoch((id, Box::from(query)), answer, observed_epoch)
    }

    /// Current hit/miss/entry/eviction counters. `entries` counts stored
    /// entries including stale ones not yet evicted.
    pub fn stats(&self) -> CacheStats {
        self.answers.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::directed_path;

    #[test]
    fn auto_plan_picks_demand_iff_some_position_bound() {
        assert!(QueryPlan::auto(vec![true, true]).is_demand());
        assert!(QueryPlan::auto(vec![false, true]).is_demand());
        assert!(!QueryPlan::auto(vec![false, false]).is_demand());
        assert!(!QueryPlan::full(2).is_demand());
        assert_eq!(QueryPlan::auto(vec![true, false]).to_string(), "bf/demand");
    }

    #[test]
    fn planner_mode_defaults_cost_based_and_is_overridable() {
        let plan = QueryPlan::auto(vec![true, false]);
        assert_eq!(plan.planner(), PlannerMode::CostBased);
        let textual = plan.clone().with_planner(PlannerMode::Textual);
        assert_eq!(textual.planner(), PlannerMode::Textual);
        // Display stays binding-pattern/strategy only (stable across modes).
        assert_eq!(textual.to_string(), "bf/demand");
        assert_eq!(PlannerMode::Textual.to_string(), "textual");
        assert_eq!(PlannerMode::CostBased.to_string(), "cost-based");
    }

    #[test]
    fn lowering_defaults_auto_and_is_overridable() {
        let plan = QueryPlan::full(2);
        assert_eq!(plan.lowering(), JoinLowering::Auto);
        let generic = plan.clone().with_lowering(JoinLowering::Generic);
        assert_eq!(generic.lowering(), JoinLowering::Generic);
        assert_eq!(
            plan.with_lowering(JoinLowering::Binary).lowering(),
            JoinLowering::Binary
        );
        assert_eq!(JoinLowering::Auto.to_string(), "auto");
        assert_eq!(JoinLowering::Binary.to_string(), "binary");
        assert_eq!(JoinLowering::Generic.to_string(), "generic");
    }

    #[test]
    fn fingerprint_distinguishes_and_identifies() {
        let a = directed_path(5);
        let b = directed_path(5);
        let c = directed_path(6);
        assert_eq!(structure_fingerprint(&a), structure_fingerprint(&b));
        assert_ne!(structure_fingerprint(&a), structure_fingerprint(&c));
    }

    #[test]
    fn registry_interns_by_content() {
        let mut reg = StructureRegistry::new();
        let a = directed_path(5);
        let b = directed_path(5);
        let c = directed_path(6);
        let ia = reg.intern(&a);
        let ib = reg.intern(&b);
        let ic = reg.intern(&c);
        assert_eq!(ia, ib);
        assert_ne!(ia, ic);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn epoch_bump_makes_entries_stale() {
        let mut cache = QueryCache::new();
        let s = directed_path(4);
        cache.insert(&s, &[0, 3], true);
        assert_eq!(cache.get(&s, &[0, 3]), Some(true));
        assert_eq!(cache.epoch(), 0);
        // The store mutated: the old answer must not be served again.
        assert_eq!(cache.bump_epoch(), 1);
        assert_eq!(cache.get(&s, &[0, 3]), None);
        // The stale entry was evicted, not just skipped.
        assert_eq!(cache.stats().entries, 0);
        // Patching the recomputed answer back in serves at the new epoch.
        cache.insert(&s, &[0, 3], false);
        assert_eq!(cache.get(&s, &[0, 3]), Some(false));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn clock_cache_evicts_at_capacity_with_second_chance() {
        let mut cache: ClockCache<u32> = ClockCache::with_capacity(3);
        assert_eq!(cache.capacity(), Some(3));
        cache.insert(1, true);
        cache.insert(2, false);
        cache.insert(3, true);
        // Touch 1 and 3 so they carry second-chance bits; 2 is the victim.
        assert_eq!(cache.get(&1), Some(true));
        assert_eq!(cache.get(&3), Some(true));
        cache.insert(4, true);
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(&2), None, "unreferenced entry was evicted");
        assert_eq!(cache.get(&1), Some(true));
        assert_eq!(cache.get(&3), Some(true));
        assert_eq!(cache.get(&4), Some(true));
        // Re-inserting an existing key never evicts.
        cache.insert(4, false);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(&4), Some(false));
    }

    #[test]
    fn clock_cache_prefers_stale_victims() {
        let mut cache: ClockCache<u32> = ClockCache::with_capacity(2);
        cache.insert(1, true);
        cache.bump_epoch();
        cache.insert(2, true);
        // 1 is stale, 2 fresh: the sweep takes 1 even though the hand
        // may pass a referenced fresh slot.
        assert_eq!(cache.get(&2), Some(true));
        cache.insert(3, true);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), Some(true));
        assert_eq!(cache.get(&3), Some(true));
    }

    #[test]
    fn clock_cache_zero_capacity_stores_nothing() {
        let mut cache: ClockCache<u32> = ClockCache::with_capacity(0);
        cache.insert(1, true);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn insert_if_epoch_rejects_racing_writers() {
        // The regression shape: a reader captures the epoch with its
        // snapshot, computes outside the lock, and a writer's batch
        // commits in between. The insert must be rejected — storing it
        // would stamp a pre-batch answer at the post-batch epoch.
        let mut cache = QueryCache::new();
        let s = directed_path(4);
        let (miss, observed) = cache.get_keyed(&s, &[0, 3]);
        assert_eq!(miss, None);
        // Writer commits while the reader evaluates.
        cache.bump_epoch();
        assert!(!cache.insert_if_epoch(&s, &[0, 3], true, observed));
        assert_eq!(cache.get(&s, &[0, 3]), None, "stale answer not served");
        // Without interference the insert lands.
        let (_, observed) = cache.get_keyed(&s, &[0, 3]);
        assert!(cache.insert_if_epoch(&s, &[0, 3], false, observed));
        assert_eq!(cache.get(&s, &[0, 3]), Some(false));
    }

    #[test]
    fn query_cache_capacity_bounds_entries() {
        let mut cache = QueryCache::with_capacity(2);
        let structures: Vec<Structure> = (3..7).map(directed_path).collect();
        for (i, s) in structures.iter().enumerate() {
            cache.insert(s, &[0, 1], i % 2 == 0);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = QueryCache::new();
        let s = directed_path(4);
        assert_eq!(cache.get(&s, &[0, 3]), None);
        cache.insert(&s, &[0, 3], true);
        assert_eq!(cache.get(&s, &[0, 3]), Some(true));
        // Same content, different instance: still a hit.
        let t = directed_path(4);
        assert_eq!(cache.get(&t, &[0, 3]), Some(true));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }
}
