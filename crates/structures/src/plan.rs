//! Query plans and the engine-level memo cache for demand-driven runs.
//!
//! A [`QueryPlan`] records, per goal position, whether the query binds that
//! position to a concrete element, and which [`DemandStrategy`] the engine
//! should take for that binding pattern. Upper layers (`kv-core`'s
//! `ProgramQuery`, `kv-homeomorphism`'s solver) consult the plan to decide
//! between full saturation and the demand path (magic-set rewriting for
//! Datalog, lazy arena expansion for pebble games).
//!
//! Repeated-query traffic is served by a [`QueryCache`]: boolean answers
//! memoized under an interned [`StructureId`] (content fingerprint, see
//! [`StructureRegistry`]) plus the query tuple.

use std::collections::HashMap;
use std::fmt;

use crate::structure::{Element, Structure};

/// How the engine should evaluate a query with a given binding pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandStrategy {
    /// Saturate the full IDB / materialize the full arena, then look up.
    Full,
    /// Derive only goal-relevant facts: magic-set rewriting on the Datalog
    /// side, lazy dominance-pruned arena expansion on the game side.
    Demand,
}

/// How a Datalog program's rule bodies are compiled into join loops.
///
/// `Textual` evaluates every body in the order the rule was written (the
/// paper's presentation, and the engine's historical behaviour);
/// `CostBased` lets the planner in `kv-datalog` reorder atoms by estimated
/// selectivity and select specialized join kernels. Both modes derive the
/// *same tuple set at every stage* — atom order within a body is
/// semantics-free — so differential suites can run each side by side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlannerMode {
    /// Textual atom order, generic probe loop.
    Textual,
    /// Cost-based atom order with specialized join kernels (the
    /// production default).
    #[default]
    CostBased,
}

impl fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlannerMode::Textual => "textual",
            PlannerMode::CostBased => "cost-based",
        })
    }
}

/// How cost-based plans lower each rule body into an executable join.
///
/// Binary lowering runs the planned atom order through pairwise kernels
/// (scan/probe/merge/check); generic lowering runs a worst-case-optimal
/// variable-at-a-time join over sorted posting intersections. Both lowerings
/// run *inside* the global semi-naive stage loop and derive the same tuple
/// set at every stage (the Theorem 3.6 stage-identity suites certify this),
/// so the choice is purely a performance knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JoinLowering {
    /// Per rule: generic join for cyclic bodies whose estimated binary
    /// intermediates blow up past the estimated output, binary otherwise.
    #[default]
    Auto,
    /// Force pairwise binary kernels for every rule.
    Binary,
    /// Force the worst-case-optimal generic join for every rule with at
    /// least two body atoms.
    Generic,
}

impl fmt::Display for JoinLowering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinLowering::Auto => "auto",
            JoinLowering::Binary => "binary",
            JoinLowering::Generic => "generic",
        })
    }
}

/// A binding pattern plus the demand strategy chosen for it.
///
/// The pattern has one flag per goal position: `true` means the query
/// supplies a concrete element there ("bound"), `false` means the position
/// is left open ("free"). The plan additionally carries the
/// [`PlannerMode`] the engine should compile rule bodies with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    pattern: Vec<bool>,
    strategy: DemandStrategy,
    planner: PlannerMode,
    lowering: JoinLowering,
}

impl QueryPlan {
    /// A plan with an explicit pattern and strategy (default planner mode).
    pub fn new(pattern: Vec<bool>, strategy: DemandStrategy) -> Self {
        Self {
            pattern,
            strategy,
            planner: PlannerMode::default(),
            lowering: JoinLowering::default(),
        }
    }

    /// The same plan with an explicit [`PlannerMode`].
    pub fn with_planner(mut self, planner: PlannerMode) -> Self {
        self.planner = planner;
        self
    }

    /// The planner mode rule bodies are compiled with.
    pub fn planner(&self) -> PlannerMode {
        self.planner
    }

    /// The same plan with an explicit [`JoinLowering`].
    pub fn with_lowering(mut self, lowering: JoinLowering) -> Self {
        self.lowering = lowering;
        self
    }

    /// The join lowering cost-based plans execute rule bodies with.
    pub fn lowering(&self) -> JoinLowering {
        self.lowering
    }

    /// Full saturation for an `arity`-ary goal (all positions free).
    pub fn full(arity: usize) -> Self {
        Self::new(vec![false; arity], DemandStrategy::Full)
    }

    /// The automatic policy: take the demand path whenever at least one
    /// position is bound, full saturation otherwise (an all-free query
    /// needs every answer anyway, so demand buys nothing).
    pub fn auto(pattern: Vec<bool>) -> Self {
        let strategy = if pattern.iter().any(|&b| b) {
            DemandStrategy::Demand
        } else {
            DemandStrategy::Full
        };
        Self::new(pattern, strategy)
    }

    /// The binding pattern, one flag per goal position.
    pub fn pattern(&self) -> &[bool] {
        &self.pattern
    }

    /// The chosen strategy.
    pub fn strategy(&self) -> DemandStrategy {
        self.strategy
    }

    /// Whether this plan routes to the demand path.
    pub fn is_demand(&self) -> bool {
        self.strategy == DemandStrategy::Demand
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.pattern.iter().filter(|&&b| b).count()
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.pattern {
            f.write_str(if b { "b" } else { "f" })?;
        }
        write!(
            f,
            "/{}",
            match self.strategy {
                DemandStrategy::Full => "full",
                DemandStrategy::Demand => "demand",
            }
        )
    }
}

/// Identity of an interned structure in a [`StructureRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(pub u32);

/// A 64-bit content fingerprint of a structure: universe size, constants,
/// and the (order-independent) multiset of tuples per relation.
///
/// Tuple contributions are combined commutatively, so two structures that
/// interned the same relation contents in different orders fingerprint
/// identically. Collisions only cost a spurious cache identity, so the
/// registry additionally keeps the full fingerprint key.
pub fn structure_fingerprint(s: &Structure) -> u64 {
    let mut h = mix(0x9e37_79b9_7f4a_7c15 ^ s.universe_size() as u64);
    for &c in s.constant_values() {
        h = mix(h ^ u64::from(c).wrapping_add(0x517c_c1b7_2722_0a95));
    }
    for rel in s.vocabulary().relations() {
        let store = s.relation(rel).store();
        let mut rel_acc = 0u64;
        for tuple in store.iter() {
            let mut t = mix(rel.0 as u64 ^ 0xd6e8_feb8_6659_fd93);
            for &e in tuple {
                t = mix(t ^ u64::from(e));
            }
            // Commutative combine: interning order must not matter.
            rel_acc = rel_acc.wrapping_add(t);
        }
        h = mix(h ^ rel_acc ^ (store.len() as u64).rotate_left(17));
    }
    h
}

/// SplitMix64 finalizer — cheap, well-mixed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Interns structures by content fingerprint, assigning stable
/// [`StructureId`]s for cache keys.
#[derive(Debug, Default)]
pub struct StructureRegistry {
    by_fingerprint: HashMap<u64, StructureId>,
}

impl StructureRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the id previously assigned to a structure
    /// with the same fingerprint if one exists.
    pub fn intern(&mut self, s: &Structure) -> StructureId {
        let fp = structure_fingerprint(s);
        let next = StructureId(self.by_fingerprint.len() as u32);
        *self.by_fingerprint.entry(fp).or_insert(next)
    }

    /// Number of distinct structures interned so far.
    pub fn len(&self) -> usize {
        self.by_fingerprint.len()
    }

    /// Whether no structure has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_fingerprint.is_empty()
    }
}

/// Hit/miss counters of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be computed.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// Cache key: interned structure id + boxed query tuple.
type CacheKey = (StructureId, Box<[Element]>);

/// Memoized boolean query answers keyed by interned structure id + query
/// tuple. Shared registry + map so one cache serves repeated traffic over
/// many structures.
///
/// Every entry is stamped with the cache **epoch** current at insert time.
/// Mutating backends (incremental maintenance over a changing EDB) call
/// [`bump_epoch`](Self::bump_epoch) when the underlying store changes:
/// entries stamped before the bump become stale and are dropped lazily the
/// next time they are looked up. The staleness check happens *inside*
/// [`get`](Self::get) — before any answer can be returned — so a stale hit
/// can never be served after a mutation, regardless of how callers order
/// their governor checks around the lookup. After a batch the maintaining
/// backend may re-[`insert`](Self::insert) ("patch") the answers it just
/// recomputed at the new epoch instead of rebuilding the cache wholesale.
#[derive(Debug, Default)]
pub struct QueryCache {
    registry: StructureRegistry,
    answers: HashMap<CacheKey, (bool, u64)>,
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current store epoch answers are stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Marks every currently stored answer stale (the backing store
    /// mutated) and returns the new epoch. Stale entries are evicted
    /// lazily on lookup rather than eagerly dropped, so a batch that only
    /// touches one structure's answers can patch them back in at the new
    /// epoch and leave the rest to age out.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Looks up the memoized answer for `query` on `s`, counting a hit or
    /// a miss. An entry stamped before the current epoch is stale: it is
    /// evicted and the lookup counts as a miss.
    pub fn get(&mut self, s: &Structure, query: &[Element]) -> Option<bool> {
        let id = self.registry.intern(s);
        let key = (id, Box::from(query));
        match self.answers.get(&key) {
            Some(&(ans, stamp)) if stamp == self.epoch => {
                self.hits += 1;
                Some(ans)
            }
            Some(_) => {
                self.answers.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the answer for `query` on `s`, stamped with the current
    /// epoch.
    pub fn insert(&mut self, s: &Structure, query: &[Element], answer: bool) {
        let id = self.registry.intern(s);
        self.answers
            .insert((id, Box::from(query)), (answer, self.epoch));
    }

    /// Current hit/miss/entry counters. `entries` counts stored entries
    /// including stale ones not yet evicted.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.answers.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::directed_path;

    #[test]
    fn auto_plan_picks_demand_iff_some_position_bound() {
        assert!(QueryPlan::auto(vec![true, true]).is_demand());
        assert!(QueryPlan::auto(vec![false, true]).is_demand());
        assert!(!QueryPlan::auto(vec![false, false]).is_demand());
        assert!(!QueryPlan::full(2).is_demand());
        assert_eq!(QueryPlan::auto(vec![true, false]).to_string(), "bf/demand");
    }

    #[test]
    fn planner_mode_defaults_cost_based_and_is_overridable() {
        let plan = QueryPlan::auto(vec![true, false]);
        assert_eq!(plan.planner(), PlannerMode::CostBased);
        let textual = plan.clone().with_planner(PlannerMode::Textual);
        assert_eq!(textual.planner(), PlannerMode::Textual);
        // Display stays binding-pattern/strategy only (stable across modes).
        assert_eq!(textual.to_string(), "bf/demand");
        assert_eq!(PlannerMode::Textual.to_string(), "textual");
        assert_eq!(PlannerMode::CostBased.to_string(), "cost-based");
    }

    #[test]
    fn lowering_defaults_auto_and_is_overridable() {
        let plan = QueryPlan::full(2);
        assert_eq!(plan.lowering(), JoinLowering::Auto);
        let generic = plan.clone().with_lowering(JoinLowering::Generic);
        assert_eq!(generic.lowering(), JoinLowering::Generic);
        assert_eq!(
            plan.with_lowering(JoinLowering::Binary).lowering(),
            JoinLowering::Binary
        );
        assert_eq!(JoinLowering::Auto.to_string(), "auto");
        assert_eq!(JoinLowering::Binary.to_string(), "binary");
        assert_eq!(JoinLowering::Generic.to_string(), "generic");
    }

    #[test]
    fn fingerprint_distinguishes_and_identifies() {
        let a = directed_path(5);
        let b = directed_path(5);
        let c = directed_path(6);
        assert_eq!(structure_fingerprint(&a), structure_fingerprint(&b));
        assert_ne!(structure_fingerprint(&a), structure_fingerprint(&c));
    }

    #[test]
    fn registry_interns_by_content() {
        let mut reg = StructureRegistry::new();
        let a = directed_path(5);
        let b = directed_path(5);
        let c = directed_path(6);
        let ia = reg.intern(&a);
        let ib = reg.intern(&b);
        let ic = reg.intern(&c);
        assert_eq!(ia, ib);
        assert_ne!(ia, ic);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn epoch_bump_makes_entries_stale() {
        let mut cache = QueryCache::new();
        let s = directed_path(4);
        cache.insert(&s, &[0, 3], true);
        assert_eq!(cache.get(&s, &[0, 3]), Some(true));
        assert_eq!(cache.epoch(), 0);
        // The store mutated: the old answer must not be served again.
        assert_eq!(cache.bump_epoch(), 1);
        assert_eq!(cache.get(&s, &[0, 3]), None);
        // The stale entry was evicted, not just skipped.
        assert_eq!(cache.stats().entries, 0);
        // Patching the recomputed answer back in serves at the new epoch.
        cache.insert(&s, &[0, 3], false);
        assert_eq!(cache.get(&s, &[0, 3]), Some(false));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = QueryCache::new();
        let s = directed_path(4);
        assert_eq!(cache.get(&s, &[0, 3]), None);
        cache.insert(&s, &[0, 3], true);
        assert_eq!(cache.get(&s, &[0, 3]), Some(true));
        // Same content, different instance: still a hit.
        let t = directed_path(4);
        assert_eq!(cache.get(&t, &[0, 3]), Some(true));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }
}
