//! A small, self-contained pseudo-random number generator.
//!
//! The workspace deliberately has **zero external dependencies** so that
//! `cargo build && cargo test` work offline and deterministically. All
//! randomized generators, Spoilers, and property tests draw from this
//! splitmix64 generator instead of the `rand` crate. Everything takes an
//! explicit `u64` seed; the same seed always produces the same stream, on
//! every platform and in every build profile.
//!
//! splitmix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) passes BigCrush, has a full 2^64 period over
//! its state increment, and needs six lines of code — exactly the right
//! tool for seeding reproducible test fixtures.

use std::ops::Range;

/// A splitmix64 generator. Cheap to create, copy, and fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Named after the `rand` method it
    /// replaces so call sites read the same.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// A uniform value in `range` (half-open, like `rand::gen_range`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Integer types [`SplitMix64::gen_range`] can sample.
pub trait RangeInt: Copy {
    /// Draws a uniform value in `range` from `rng`.
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64) - (range.start as u64);
                // Multiply-shift bounded sampling (Lemire): unbiased enough
                // for fixtures, and avoids modulo's worst-case bias.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as Self
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SplitMix64::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
