//! Hash-partitioned relation shards and the inter-worker delta exchange.
//!
//! Sharded evaluation partitions *ownership* of tuples across `W` workers
//! by hashing one planner-chosen key position (the [`ShardKey`]): worker
//! [`shard_of`]`(tuple, key, W)` owns the tuple. The two primitives here
//! are deliberately small and synchronization-free:
//!
//! - [`ShardedStore`]: `W` hash-partitioned [`MutableStore`] shards, each
//!   with its own arena, intern table, and id-space. Mutations route to
//!   the owning shard; every tuple lives in exactly one shard (pinned by
//!   property tests).
//! - [`DeltaExchange`]: the router for tuples a worker derived but does
//!   not own. Workers fill per-destination outboxes privately during a
//!   stage; at the stage barrier the outboxes are *sealed* into one
//!   exchange and each owner drains its inbox while merging. The barrier
//!   is the only synchronization point — no locks, no channels — which is
//!   exactly why the global stage loop (and with it the paper's Theorem
//!   3.6 stage semantics) survives sharding unchanged.

use crate::mutable::{InsertOutcome, MutableStore, RetractOutcome};
use crate::store::mix64;
use crate::structure::Element;

/// The shard key of one relation: the tuple position whose value is hashed
/// to pick the owning worker. Chosen per predicate by the planner (from
/// [`CardStats`](crate::CardStats) distinct counts) to maximize join
/// locality; [`ShardKey::FALLBACK`] pins nullary and out-of-range cases to
/// worker 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKey {
    /// The hashed tuple position.
    pub pos: usize,
}

impl ShardKey {
    /// The key used when a relation has no usable position (nullary
    /// relations): everything routes to worker 0.
    pub const FALLBACK: ShardKey = ShardKey { pos: 0 };

    /// A key over position `pos`.
    pub fn at(pos: usize) -> Self {
        ShardKey { pos }
    }
}

/// The worker that owns `tuple` under `key` with `shards` workers.
///
/// Total and deterministic: nullary tuples (or a key position beyond the
/// arity) land on worker 0, everything else on
/// `splitmix64(tuple[key.pos]) % shards`. With `shards <= 1` the answer is
/// always 0, so a one-shard run is bit-identical to an unsharded one.
#[inline]
pub fn shard_of(tuple: &[Element], key: ShardKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    match tuple.get(key.pos) {
        None => 0,
        Some(&e) => (mix64(u64::from(e)) % shards as u64) as usize,
    }
}

/// `W` hash-partitioned [`MutableStore`] shards over one relation.
///
/// Each shard is a complete store — own arena, intern table, support
/// counts, posting-list substrate, and id-space — holding exactly the
/// tuples it owns under the relation's [`ShardKey`]. The partition is a
/// function of (tuple, key, W) alone, so routing never consults the other
/// shards.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    key: ShardKey,
    shards: Vec<MutableStore>,
}

impl ShardedStore {
    /// An empty sharded store: `shards` partitions of an arity-`arity`
    /// relation keyed on `key`.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(arity: usize, key: ShardKey, shards: usize) -> Self {
        assert!(shards > 0, "a sharded store needs at least one shard");
        ShardedStore {
            key,
            shards: (0..shards).map(|_| MutableStore::new(arity)).collect(),
        }
    }

    /// The shard key.
    pub fn key(&self) -> ShardKey {
        self.key
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The owning shard index for `tuple`.
    pub fn owner(&self, tuple: &[Element]) -> usize {
        shard_of(tuple, self.key, self.shards.len())
    }

    /// Shard `w`, read-only.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn shard(&self, w: usize) -> &MutableStore {
        &self.shards[w]
    }

    /// Shard `w`, mutable — for owner-local merges that already routed.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn shard_mut(&mut self, w: usize) -> &mut MutableStore {
        &mut self.shards[w]
    }

    /// Inserts `tuple` into its owning shard, returning the owner and the
    /// shard-local outcome.
    pub fn insert(&mut self, tuple: &[Element]) -> (usize, InsertOutcome) {
        let w = self.owner(tuple);
        (w, self.shards[w].insert(tuple))
    }

    /// Retracts `tuple` from its owning shard.
    pub fn retract(&mut self, tuple: &[Element]) -> (usize, RetractOutcome) {
        let w = self.owner(tuple);
        (w, self.shards[w].retract(tuple))
    }

    /// Whether `tuple` is live (in its owning shard — the only place it
    /// can be).
    pub fn contains_live(&self, tuple: &[Element]) -> bool {
        self.shards[self.owner(tuple)].contains_live(tuple)
    }

    /// Total live tuples across all shards.
    pub fn live_len(&self) -> usize {
        self.shards.iter().map(MutableStore::live_len).sum()
    }

    /// Iterates every live tuple, shard by shard.
    pub fn live_iter(&self) -> impl Iterator<Item = &[Element]> {
        self.shards.iter().flat_map(MutableStore::live_iter)
    }

    /// Compacts every shard in place (see
    /// [`MutableStore::compact_in_place`]); the live set is unchanged,
    /// per shard and therefore globally (property-tested against an
    /// unsharded compaction).
    pub fn compact_in_place(&mut self) {
        for shard in &mut self.shards {
            shard.compact_in_place();
        }
    }

    /// Re-keys the whole store onto a new shard key, returning the number
    /// of live tuples that moved between shards. Loss-free: the live
    /// multiset (tuple → support count) is preserved exactly.
    pub fn rekey(&mut self, key: ShardKey) -> u64 {
        let arity = self.shards[0].store().arity();
        let shards = self.shards.len();
        let mut fresh = ShardedStore::new(arity, key, shards);
        let mut moved = 0u64;
        for (w, shard) in self.shards.iter().enumerate() {
            for (tuple, &support) in shard.store().iter().zip(shard.support_counts()) {
                if support == 0 {
                    continue;
                }
                let dest = shard_of(tuple, key, shards);
                if dest != w {
                    moved += 1;
                }
                fresh.shards[dest].insert_with_support(tuple, support);
            }
        }
        *self = fresh;
        moved
    }
}

/// The sealed inter-worker delta exchange of one stage, for one relation.
///
/// During a stage each worker privately fills `W` per-destination outboxes
/// (flat, arity-strided tuple blocks — already interned in the sender's
/// scratch arena, so each tuple crosses at most once). At the stage
/// barrier the per-worker outboxes are *sealed* into a `DeltaExchange`;
/// owners then drain their inboxes in sender order, which makes the merged
/// delta deterministic for any worker interleaving. Sealing is a move, not
/// a copy, and there is no other synchronization.
#[derive(Debug)]
pub struct DeltaExchange {
    /// `sealed[sender][dest]`: flat tuples routed from `sender` to `dest`.
    sealed: Vec<Vec<Vec<Element>>>,
    arity: usize,
    exchanged: u64,
}

impl DeltaExchange {
    /// Seals per-worker outboxes (`outboxes[sender][dest]`, flat
    /// arity-strided tuples) into an exchange. Tuples a worker routed to
    /// itself are *not* counted as exchanged.
    ///
    /// # Panics
    /// Panics if the outbox matrix is not `W × W` or a block is not
    /// arity-aligned.
    pub fn seal(arity: usize, outboxes: Vec<Vec<Vec<Element>>>) -> Self {
        let workers = outboxes.len();
        let stride = arity.max(1);
        let mut exchanged = 0u64;
        for (sender, row) in outboxes.iter().enumerate() {
            assert_eq!(row.len(), workers, "outbox matrix must be W × W");
            for (dest, block) in row.iter().enumerate() {
                assert_eq!(block.len() % stride, 0, "outbox block misaligned");
                if dest != sender {
                    exchanged += (block.len() / stride) as u64;
                }
            }
        }
        DeltaExchange {
            sealed: outboxes,
            arity,
            exchanged,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.sealed.len()
    }

    /// Tuples that crossed worker boundaries (self-routed tuples excluded).
    pub fn exchanged(&self) -> u64 {
        self.exchanged
    }

    /// Drains worker `dest`'s inbox: the flat tuple blocks addressed to
    /// it, in sender order. Each block is arity-strided; iterate with
    /// `chunks_exact(arity)`.
    pub fn inbox(&self, dest: usize) -> impl Iterator<Item = &[Element]> {
        self.sealed.iter().map(move |row| row[dest].as_slice())
    }

    /// Tuple arity of the exchanged relation.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_tuple(rng: &mut SplitMix64, arity: usize, universe: u64) -> Vec<Element> {
        (0..arity)
            .map(|_| (rng.next_u64() % universe) as Element)
            .collect()
    }

    #[test]
    fn every_tuple_lands_on_exactly_one_shard() {
        let mut rng = SplitMix64::seed_from_u64(0x5A4D);
        for _ in 0..200 {
            let arity = (rng.next_u64() % 4 + 1) as usize;
            let shards = [1usize, 2, 3, 4, 7, 8][(rng.next_u64() % 6) as usize];
            let key = ShardKey::at((rng.next_u64() % (arity as u64 + 1)) as usize);
            let tuple = random_tuple(&mut rng, arity, 50);
            let owner = shard_of(&tuple, key, shards);
            assert!(owner < shards, "owner within range");
            // Deterministic: the same tuple always routes identically.
            assert_eq!(owner, shard_of(&tuple, key, shards));
            let mut store = ShardedStore::new(arity, key, shards);
            store.insert(&tuple);
            let holding: Vec<usize> = (0..shards)
                .filter(|&w| store.shard(w).contains_live(&tuple))
                .collect();
            assert_eq!(holding, vec![owner], "exactly one shard holds it");
        }
    }

    #[test]
    fn nullary_and_out_of_range_keys_route_to_worker_zero() {
        assert_eq!(shard_of(&[], ShardKey::FALLBACK, 8), 0);
        assert_eq!(shard_of(&[3], ShardKey::at(5), 8), 0);
        assert_eq!(shard_of(&[3, 4], ShardKey::at(1), 1), 0);
    }

    #[test]
    fn rekey_is_loss_free() {
        let mut rng = SplitMix64::seed_from_u64(0xDE17A);
        for round in 0..50 {
            let arity = (round % 3 + 1) as usize;
            let shards = [1usize, 2, 4, 8][(round % 4) as usize];
            let mut store = ShardedStore::new(arity, ShardKey::at(0), shards);
            let mut tuples = Vec::new();
            for _ in 0..rng.next_u64() % 120 {
                let t = random_tuple(&mut rng, arity, 20);
                store.insert(&t);
                tuples.push(t);
            }
            let before: Vec<(Vec<Element>, usize)> =
                tuples.iter().map(|t| (t.clone(), store.owner(t))).collect();
            let live_before = store.live_len();
            let moved = store.rekey(ShardKey::at(arity - 1));
            assert_eq!(store.live_len(), live_before, "live count preserved");
            let mut expect_moved = std::collections::HashSet::new();
            for (t, old_owner) in &before {
                assert!(store.contains_live(t), "tuple lost in re-key: {t:?}");
                if store.owner(t) != *old_owner {
                    expect_moved.insert(t.clone());
                }
            }
            assert_eq!(moved, expect_moved.len() as u64);
        }
    }

    #[test]
    fn sharded_compaction_preserves_live_set_vs_unsharded() {
        let mut rng = SplitMix64::seed_from_u64(0xC0DE);
        for shards in [1usize, 2, 4, 8] {
            let arity = 2;
            let mut sharded = ShardedStore::new(arity, ShardKey::at(1), shards);
            let mut flat = MutableStore::new(arity);
            let mut universe_tuples = Vec::new();
            for _ in 0..300 {
                let t = random_tuple(&mut rng, arity, 15);
                sharded.insert(&t);
                flat.insert(&t);
                universe_tuples.push(t);
            }
            for t in &universe_tuples {
                if rng.gen_bool(0.4) {
                    sharded.retract(t);
                    flat.retract(t);
                }
            }
            sharded.compact_in_place();
            flat.compact_in_place();
            assert_eq!(sharded.live_len(), flat.live_len());
            for t in sharded.live_iter() {
                assert!(flat.contains_live(t));
            }
            for t in flat.live_iter() {
                assert!(sharded.contains_live(t));
            }
        }
    }

    #[test]
    fn exchange_seals_and_counts_cross_worker_tuples() {
        let workers = 3usize;
        let arity = 2usize;
        // outboxes[sender][dest]
        let mut outboxes = vec![vec![Vec::new(); workers]; workers];
        outboxes[0][0].extend_from_slice(&[1, 2]); // self-routed: not exchanged
        outboxes[0][2].extend_from_slice(&[3, 4, 5, 6]); // two tuples cross
        outboxes[1][2].extend_from_slice(&[7, 8]);
        let exchange = DeltaExchange::seal(arity, outboxes);
        assert_eq!(exchange.workers(), workers);
        assert_eq!(exchange.exchanged(), 3);
        let inbox2: Vec<&[Element]> = exchange.inbox(2).collect();
        assert_eq!(inbox2, vec![&[3, 4, 5, 6][..], &[7, 8][..], &[][..]]);
        let inbox1: Vec<Element> = exchange.inbox(1).flatten().copied().collect();
        assert!(inbox1.is_empty());
    }
}
