//! The shared relational storage engine: interned tuples in append-only
//! arenas.
//!
//! Every layer of the reproduction — [`Structure`](crate::Structure)
//! relations, the Datalog(≠) bottom-up engine, and the `L^k` stage
//! evaluators — stores relations in one representation: a [`TupleStore`]
//! that interns tuples of a fixed arity into a flat, append-only arena and
//! hands out dense [`TupleId`]s. The design exploits append-only-ness
//! everywhere:
//!
//! - **Delta views are id ranges.** A semi-naive evaluator needs "the
//!   relation as of stage `n-1`", "only the tuples discovered at stage
//!   `n-1`", and "everything". Because ids are assigned in insertion order,
//!   these are the ranges `[0, old)`, `[old, prev)`, `[0, prev)` of a
//!   *single* store — no snapshot clones (see [`IdRange`] and
//!   [`StoreView`]).
//! - **Indexes extend instead of rebuilding.** A [`PosIndex`] (per-position
//!   hash index) appends posting ids monotonically, so range-restricted
//!   probes are `partition_point` sub-slices of sorted posting lists.
//! - **Stage identity is id-set equality.** Two evaluators that
//!   materialize into the *same* store can compare stages by comparing id
//!   sets — the Theorem 3.6 experiments check Datalog stages against
//!   `L^{l+r}` stage formulas this way, with no re-hashing of boxed
//!   tuples.
//!
//! The interner is a bare open-addressing table over the arena (splitmix-
//! style mixing, linear probing), so the store stays free of interior
//! mutability and is `Sync`: parallel evaluation workers read a shared
//! store and exchange [`TupleId`] buffers, never boxed tuples.
//!
//! [`EvalStats`] and [`Limits`] are the engine's observability surface:
//! evaluators report tuples interned, duplicate derivations, join probes
//! and stage counts, and can be given tuple/stage budgets that make them
//! return a graceful [`LimitExceeded`] instead of growing without bound.

use crate::structure::Element;
use std::collections::HashMap;
use std::fmt;

/// A dense identifier of an interned tuple within one [`TupleStore`].
///
/// Ids are assigned in insertion order starting from `0`, so they double
/// as stage timestamps: a tuple with a smaller id was derived no later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

/// A half-open range `[start, end)` of [`TupleId`]s.
///
/// Because stores are append-only, every snapshot a fixpoint computation
/// needs (old / delta / full) is such a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdRange {
    /// First id in the range.
    pub start: u32,
    /// One past the last id in the range.
    pub end: u32,
}

impl IdRange {
    /// The empty range.
    pub const EMPTY: IdRange = IdRange { start: 0, end: 0 };

    /// Number of ids in the range.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `id` falls inside the range.
    pub fn contains(&self, id: TupleId) -> bool {
        self.start <= id.0 && id.0 < self.end
    }

    /// Iterates over the ids of the range.
    pub fn iter(&self) -> impl Iterator<Item = TupleId> {
        (self.start..self.end).map(TupleId)
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Splitmix-style mixing of one tuple into a table hash.
///
/// Public so callers that maintain auxiliary filters over a store (for
/// example [`TupleBloom`]) hash tuples exactly once and reuse the digest.
#[inline]
pub fn tuple_hash(tuple: &[Element]) -> u64 {
    hash_tuple(tuple)
}

#[inline]
fn hash_tuple(tuple: &[Element]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &e in tuple {
        h ^= u64::from(e).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// An interning tuple store: a flat append-only arena of fixed-arity
/// tuples plus an open-addressing hash table mapping tuple contents to
/// dense [`TupleId`]s.
///
/// See the [module docs](self) for the design rationale. The store has no
/// interior mutability: reads (`get`, `lookup`, `contains`, `iter`) take
/// `&self` and the type is `Sync`, which is what lets parallel evaluation
/// workers share one store per relation.
#[derive(Debug, Clone, Default)]
pub struct TupleStore {
    arity: usize,
    /// Tuple elements, arity-strided: tuple `i` is `data[i*arity..(i+1)*arity]`.
    data: Vec<Element>,
    /// Open-addressing table of tuple ids (`EMPTY_SLOT` = vacant).
    table: Vec<u32>,
    len: u32,
    /// Per-position distinct-value counters, maintained on intern of fresh
    /// tuples; snapshotted by [`card_stats`](Self::card_stats).
    pos_distinct: Vec<ElementSet>,
}

impl TupleStore {
    /// Creates an empty store for tuples of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            data: Vec::new(),
            table: Vec::new(),
            len: 0,
            pos_distinct: vec![ElementSet::default(); arity],
        }
    }

    /// Creates an empty store with room for about `capacity` tuples.
    pub fn with_capacity(arity: usize, capacity: usize) -> Self {
        let mut s = Self::new(arity);
        s.data.reserve(capacity * arity);
        s.grow_table((capacity * 2).next_power_of_two().max(16));
        s
    }

    /// The arity of the stored tuples.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct tuples interned.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tuple with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn get(&self, id: TupleId) -> &[Element] {
        assert!(id.0 < self.len, "tuple id {} out of bounds", id.0);
        let a = self.arity;
        &self.data[id.0 as usize * a..(id.0 as usize + 1) * a]
    }

    /// Interns `tuple`, returning its id and whether it was newly added.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn intern(&mut self, tuple: &[Element]) -> (TupleId, bool) {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if self.table.len() * 3 < (self.len as usize + 1) * 4 {
            self.grow_table((self.table.len() * 2).max(16));
        }
        let mask = self.table.len() - 1;
        let mut slot = hash_tuple(tuple) as usize & mask;
        loop {
            match self.table[slot] {
                EMPTY_SLOT => {
                    let id = self.len;
                    self.table[slot] = id;
                    self.data.extend_from_slice(tuple);
                    self.len += 1;
                    for (pos, &e) in tuple.iter().enumerate() {
                        self.pos_distinct[pos].insert(e);
                    }
                    return (TupleId(id), true);
                }
                id if self.slice_of(id) == tuple => return (TupleId(id), false),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Interns every arity-strided tuple in `block` (a flat
    /// `tuples × arity` slice) in order, returning how many were fresh.
    /// Identical per-tuple semantics to [`intern`](Self::intern) — ids are
    /// assigned in block order, duplicates are detected the same way — but
    /// one table-capacity check and one arena reservation cover the whole
    /// block, so batched emitters pay the growth bookkeeping once per
    /// block instead of once per tuple.
    ///
    /// # Panics
    /// Panics if the store is nullary or `block.len()` is not a multiple
    /// of the arity.
    pub fn extend_block(&mut self, block: &[Element]) -> usize {
        assert!(self.arity > 0, "extend_block on a nullary store");
        assert_eq!(
            block.len() % self.arity,
            0,
            "block length/arity misalignment"
        );
        let tuples = block.len() / self.arity;
        // Grow once for the worst case (every tuple fresh): the per-call
        // check inside `intern` then never fires for this block.
        let needed = ((self.len as usize + tuples + 1) * 4 / 3 + 1)
            .next_power_of_two()
            .max(16);
        if self.table.len() < needed {
            self.grow_table(needed);
        }
        self.data.reserve(block.len());
        let mut fresh = 0;
        for tuple in block.chunks_exact(self.arity) {
            if self.intern(tuple).1 {
                fresh += 1;
            }
        }
        fresh
    }

    /// Removes tuple `id`, moving the arena's last tuple into its slot
    /// (ids stay dense; the last tuple is renumbered to `id`).
    ///
    /// This is the O(1) building block of in-place compaction: one
    /// backward-shift table deletion plus one table repoint, instead of
    /// re-interning every survivor. Per-position distinct-value counters
    /// are *not* shrunk — after removals [`card_stats`](Self::card_stats)
    /// over-approximates, which only mellows planner estimates.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn swap_remove(&mut self, id: TupleId) {
        assert!(id.0 < self.len, "tuple id {} out of bounds", id.0);
        let last = self.len - 1;
        self.table_remove(id.0);
        if id.0 != last {
            // Repoint the moved tuple's table entry at its new id.
            let mask = self.table.len() - 1;
            let mut slot = hash_tuple(self.slice_of(last)) as usize & mask;
            while self.table[slot] != last {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = id.0;
            let a = self.arity;
            let (head, tail) = self.data.split_at_mut(last as usize * a);
            head[id.0 as usize * a..(id.0 as usize + 1) * a].copy_from_slice(&tail[..a]);
        }
        self.data.truncate(last as usize * self.arity);
        self.len = last;
    }

    /// Deletes `id`'s table entry by backward-shifting the probe chain
    /// behind it (linear probing has no tombstones: every displaced entry
    /// whose home slot lies at or before the hole moves back into it, so
    /// all remaining chains stay unbroken).
    fn table_remove(&mut self, id: u32) {
        let mask = self.table.len() - 1;
        let mut slot = hash_tuple(self.slice_of(id)) as usize & mask;
        while self.table[slot] != id {
            slot = (slot + 1) & mask;
        }
        let mut hole = slot;
        loop {
            self.table[hole] = EMPTY_SLOT;
            let mut next = (hole + 1) & mask;
            loop {
                let entry = self.table[next];
                if entry == EMPTY_SLOT {
                    return;
                }
                let home = hash_tuple(self.slice_of(entry)) as usize & mask;
                // `entry` can fill the hole iff probing from its home slot
                // would pass through the hole — i.e. the hole is at least
                // as far along `entry`'s probe path as `next` is.
                if next.wrapping_sub(home) & mask >= next.wrapping_sub(hole) & mask {
                    self.table[hole] = entry;
                    hole = next;
                    break;
                }
                next = (next + 1) & mask;
            }
        }
    }

    /// The id of `tuple`, if interned.
    pub fn lookup(&self, tuple: &[Element]) -> Option<TupleId> {
        debug_assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = hash_tuple(tuple) as usize & mask;
        loop {
            match self.table[slot] {
                EMPTY_SLOT => return None,
                id if self.slice_of(id) == tuple => return Some(TupleId(id)),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Element]) -> bool {
        self.lookup(tuple).is_some()
    }

    /// Iterates over the tuples in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[Element]> {
        let a = self.arity;
        (0..self.len as usize).map(move |i| &self.data[i * a..(i + 1) * a])
    }

    /// The full id range `[0, len)`.
    pub fn id_range(&self) -> IdRange {
        IdRange {
            start: 0,
            end: self.len,
        }
    }

    /// A prefix view of the store covering ids `[0, upto)`.
    ///
    /// # Panics
    /// Panics if `upto > len`.
    pub fn view(&self, upto: u32) -> StoreView<'_> {
        assert!(upto <= self.len, "view beyond store length");
        StoreView { store: self, upto }
    }

    /// Set equality with another store (order-insensitive).
    pub fn set_eq(&self, other: &TupleStore) -> bool {
        self.arity == other.arity && self.len == other.len && self.iter().all(|t| other.contains(t))
    }

    /// The contiguous columnar slice backing the tuples of `range`:
    /// `arity * range.len()` elements, arity-strided. Because the arena is
    /// append-only, any id range is one contiguous block — batched kernels
    /// iterate it with `chunks_exact(arity)` instead of per-tuple `get`
    /// calls.
    ///
    /// # Panics
    /// Panics if the range extends past the store.
    pub fn range_slice(&self, range: IdRange) -> &[Element] {
        assert!(range.end <= self.len, "range beyond store length");
        let a = self.arity;
        &self.data[range.start as usize * a..range.end as usize * a]
    }

    /// A snapshot of the store's cardinality statistics.
    ///
    /// The per-position distinct counters are maintained incrementally on
    /// [`intern`](Self::intern), so this is O(arity) — cheap enough to call
    /// at every plan point.
    pub fn card_stats(&self) -> CardStats {
        CardStats {
            len: self.len as usize,
            distinct: self.pos_distinct.iter().map(ElementSet::len).collect(),
        }
    }

    fn slice_of(&self, id: u32) -> &[Element] {
        &self.data[id as usize * self.arity..(id as usize + 1) * self.arity]
    }

    fn grow_table(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        self.table = vec![EMPTY_SLOT; new_len];
        let mask = new_len - 1;
        for id in 0..self.len {
            let mut slot = hash_tuple(self.slice_of(id)) as usize & mask;
            while self.table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = id;
        }
    }
}

impl PartialEq for TupleStore {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for TupleStore {}

/// A compact open-addressing set of [`Element`]s used for the per-position
/// distinct-value counters of a [`TupleStore`].
///
/// Slots store `element + 1` so that `0` can act as the vacancy sentinel and
/// the full `u32` element space stays representable.
#[derive(Debug, Clone, Default)]
struct ElementSet {
    slots: Vec<u64>,
    len: usize,
}

impl ElementSet {
    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, e: Element) -> bool {
        if self.slots.len() < (self.len + 1) * 2 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let key = u64::from(e) + 1;
        let mut slot = mix64(u64::from(e)) as usize & mask;
        loop {
            match self.slots[slot] {
                0 => {
                    self.slots[slot] = key;
                    self.len += 1;
                    return true;
                }
                k if k == key => return false,
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        debug_assert!(new_len.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, vec![0; new_len]);
        let mask = new_len - 1;
        for key in old.into_iter().filter(|&k| k != 0) {
            let mut slot = mix64(key - 1) as usize & mask;
            while self.slots[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = key;
        }
    }
}

/// Splitmix64 finalizer, used by [`ElementSet`], [`TupleBloom`], and the
/// shard-routing hash (`crate::shard`).
#[inline]
pub(crate) fn mix64(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Cardinality statistics snapshot of one [`TupleStore`]: total tuple count
/// plus per-position distinct-value counts.
///
/// The cost-based planner scores candidate join orders with these numbers:
/// `len / distinct[pos]` estimates the matches of a single-position probe,
/// and the product over bound positions estimates a multi-position one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardStats {
    /// Number of distinct tuples in the store.
    pub len: usize,
    /// Distinct values seen at each tuple position (`distinct.len()` =
    /// arity).
    pub distinct: Vec<usize>,
}

impl CardStats {
    /// Estimated number of tuples matching a probe that fixes the values at
    /// `bound` positions, assuming independent uniform positions: `len / Π
    /// distinct[pos]`, clamped below at `0`.
    pub fn estimate_matches(&self, bound: &[usize]) -> f64 {
        let mut est = self.len as f64;
        for &pos in bound {
            let d = self.distinct.get(pos).copied().unwrap_or(1).max(1);
            est /= d as f64;
        }
        est
    }
}

/// A Bloom-style existence pre-filter over tuple hashes.
///
/// Evaluators maintain one per result relation, keyed by
/// [`tuple_hash`]: a *negative* answer proves the tuple has not been
/// committed, letting hot join paths skip the interner probe that
/// re-derivations would otherwise pay. Two bit probes are derived from the
/// low and high halves of the 64-bit digest.
#[derive(Debug, Clone, Default)]
pub struct TupleBloom {
    bits: Vec<u64>,
    items: usize,
}

impl TupleBloom {
    /// Creates a filter sized for about `capacity` items (~8 bits each).
    pub fn with_capacity(capacity: usize) -> Self {
        let words = (capacity.max(8) * 8 / 64).next_power_of_two();
        Self {
            bits: vec![0; words],
            items: 0,
        }
    }

    /// Number of hashes inserted.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Whether the filter is over-full and should be rebuilt at a larger
    /// capacity to keep its false-positive rate useful.
    pub fn should_grow(&self) -> bool {
        self.items * 8 > self.bits.len() * 64
    }

    /// Inserts a tuple hash.
    pub fn insert(&mut self, h: u64) {
        if self.bits.is_empty() {
            self.bits = vec![0; 8];
        }
        let mask = self.bits.len() * 64 - 1;
        let (a, b) = (h as usize & mask, (h >> 32) as usize & mask);
        self.bits[a / 64] |= 1 << (a % 64);
        self.bits[b / 64] |= 1 << (b % 64);
        self.items += 1;
    }

    /// Whether the hash *may* have been inserted. `false` is definitive.
    pub fn maybe_contains(&self, h: u64) -> bool {
        if self.bits.is_empty() {
            return false;
        }
        let mask = self.bits.len() * 64 - 1;
        let (a, b) = (h as usize & mask, (h >> 32) as usize & mask);
        (self.bits[a / 64] >> (a % 64)) & 1 == 1 && (self.bits[b / 64] >> (b % 64)) & 1 == 1
    }
}

/// A read-only prefix view of a [`TupleStore`]: the tuples with id `< upto`.
///
/// Since the store is append-only, such a prefix is exactly the store as it
/// was when it held `upto` tuples — stage `Θ^n` of an evaluation is the
/// view at the stage mark.
#[derive(Debug, Clone, Copy)]
pub struct StoreView<'a> {
    store: &'a TupleStore,
    upto: u32,
}

impl<'a> StoreView<'a> {
    /// The underlying store.
    pub fn store(&self) -> &'a TupleStore {
        self.store
    }

    /// Number of tuples in the view.
    pub fn len(&self) -> usize {
        self.upto as usize
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.upto == 0
    }

    /// Membership: the tuple is interned *and* was among the first `upto`.
    pub fn contains(&self, tuple: &[Element]) -> bool {
        matches!(self.store.lookup(tuple), Some(id) if id.0 < self.upto)
    }

    /// The view's id range `[0, upto)`.
    pub fn id_range(&self) -> IdRange {
        IdRange {
            start: 0,
            end: self.upto,
        }
    }

    /// Iterates over the view's tuples in id order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [Element]> {
        let store = self.store;
        (0..self.upto).map(move |i| store.get(TupleId(i)))
    }

    /// Set equality with another view.
    pub fn set_eq(&self, other: &StoreView<'_>) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(t))
    }
}

/// A single-position hash index over a [`TupleStore`].
///
/// Maps an element to the (sorted) ids of the tuples carrying that element
/// at position `pos`. Built and owned by evaluators — *outside* the store —
/// so the store itself stays lock-free and `Sync`. Because ids are appended
/// monotonically, [`update`](Self::update) extends the postings
/// incrementally and [`probe`](Self::probe) restricts to any [`IdRange`]
/// with two binary searches.
///
/// **Invariant:** every posting list is strictly increasing in tuple id.
/// The batched join kernels and the generic-join lowering depend on this —
/// a multi-position probe is the [`gallop_intersect`] of the per-position
/// posting lists, with no hashing or re-sorting.
#[derive(Debug, Clone)]
pub struct PosIndex {
    pos: usize,
    upto: u32,
    postings: HashMap<Element, Vec<u32>>,
}

impl PosIndex {
    /// Creates an empty index on tuple position `pos`.
    pub fn new(pos: usize) -> Self {
        Self {
            pos,
            upto: 0,
            postings: HashMap::new(),
        }
    }

    /// The indexed position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// How many tuples (ids `[0, upto)`) the index currently covers.
    pub fn covered(&self) -> u32 {
        self.upto
    }

    /// Number of distinct values seen at the indexed position — the posting
    /// count, maintained for free as the index extends.
    pub fn distinct(&self) -> usize {
        self.postings.len()
    }

    /// Extends the index to cover all tuples currently in `store`.
    pub fn update(&mut self, store: &TupleStore) {
        for id in self.upto..store.len() as u32 {
            let e = store.get(TupleId(id))[self.pos];
            self.postings.entry(e).or_default().push(id);
        }
        self.upto = store.len() as u32;
    }

    /// The ids in `range` whose tuple has `e` at the indexed position.
    ///
    /// `range` must lie within the covered prefix; postings are sorted, so
    /// the result is a sub-slice located by `partition_point`.
    pub fn probe(&self, e: Element, range: IdRange) -> &[u32] {
        debug_assert!(range.end <= self.upto, "probe beyond indexed prefix");
        match self.postings.get(&e) {
            None => &[],
            Some(ids) => {
                let lo = ids.partition_point(|&id| id < range.start);
                let hi = ids.partition_point(|&id| id < range.end);
                &ids[lo..hi]
            }
        }
    }
}

/// First index in the sorted list whose value is `>= target`, located by a
/// galloping (exponential-then-binary) search from the front.
///
/// Galloping is the right search for k-way sorted intersections: when the
/// cursor advances by `d` positions the search costs `O(log d)`, so a full
/// intersection pass costs `O(Σ log gaps)` — linear merge when the lists
/// interleave densely, logarithmic skips when one list is much sparser.
/// Each comparison is added to `steps` so batched kernels can report the
/// exact work done (see `EvalStats::gallop_steps`).
///
/// The exponential phase is unrolled 4-wide: each round issues up to four
/// successive stride probes (`size`, `2·size`, `4·size`, `8·size` from the
/// current cursor) before looping back, so short gallops — the common case
/// in densely interleaving intersections — resolve within one
/// branch-predictable round. The probe *sequence*, and therefore the
/// counted steps, is identical to the scalar doubling loop
/// (differential-tested against [`gallop_scalar`]).
#[inline]
pub fn gallop(list: &[u32], target: u32, steps: &mut u64) -> usize {
    let n = list.len();
    if n == 0 || list[0] >= target {
        *steps += 1;
        return 0;
    }
    // Exponential phase, 4-wide unrolled: invariant `list[lo] < target`.
    let mut taken = 1u64;
    let mut lo = 0usize;
    let mut size = 1usize;
    'expo: loop {
        for _ in 0..4 {
            if lo + size < n && list[lo + size] < target {
                taken += 1;
                lo += size;
                size <<= 1;
            } else {
                break 'expo;
            }
        }
    }
    // Binary phase over `(lo, hi]` with `list[lo] < target` and either
    // `hi == n` or `list[hi] >= target`.
    let mut hi = (lo + size).min(n);
    while hi - lo > 1 {
        taken += 1;
        let mid = lo + (hi - lo) / 2;
        if list[mid] < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    *steps += taken;
    hi
}

/// The scalar doubling gallop that [`gallop`] unrolls: kept as the
/// reference implementation the hot path is differential-tested against
/// (identical results *and* identical step counts on random inputs).
pub fn gallop_scalar(list: &[u32], target: u32, steps: &mut u64) -> usize {
    let n = list.len();
    if n == 0 || list[0] >= target {
        *steps += 1;
        return 0;
    }
    let mut taken = 1u64;
    let mut lo = 0usize;
    let mut size = 1usize;
    while lo + size < n && list[lo + size] < target {
        taken += 1;
        lo += size;
        size <<= 1;
    }
    let mut hi = (lo + size).min(n);
    while hi - lo > 1 {
        taken += 1;
        let mid = lo + (hi - lo) / 2;
        if list[mid] < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    *steps += taken;
    hi
}

/// Intersects `k` sorted, duplicate-free posting lists into `out` (cleared
/// first), driving from the smallest list and galloping the others forward
/// with resume cursors. Search comparisons are added to `steps`.
///
/// This is the batched replacement for per-tuple two-pointer merges: every
/// [`PosIndex`] posting list is id-sorted by construction, so the k-way
/// sorted intersection of per-position postings *is* the candidate set of a
/// multi-position probe. Returns early as soon as any list is exhausted.
pub fn gallop_intersect(lists: &[&[u32]], out: &mut Vec<u32>, steps: &mut u64) {
    out.clear();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return;
    }
    if let [a, b] = lists {
        // The two-list case dominates binary join plans; take the
        // block-compare fast path (identical output, cheaper steps).
        return gallop_intersect2(a, b, out, steps);
    }
    // Drive from the shortest list; the others keep monotone resume
    // cursors, so each is traversed at most once across the whole call.
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|&i| lists[i].len());
    let driver = lists[order[0]];
    let others: Vec<&[u32]> = order[1..].iter().map(|&i| lists[i]).collect();
    let mut cursors = vec![0usize; others.len()];
    'driver: for &x in driver {
        for (cur, list) in cursors.iter_mut().zip(&others) {
            *cur += gallop(&list[*cur..], x, steps);
            if *cur >= list.len() {
                // This list has no values >= x: nothing further can match.
                break 'driver;
            }
            if list[*cur] != x {
                continue 'driver;
            }
        }
        out.push(x);
    }
}

/// Intersects exactly two sorted, duplicate-free posting lists into `out`
/// (cleared first) — the explicit fast path [`gallop_intersect`] takes for
/// binary joins, where two-list intersections dominate.
///
/// The inner loop replaces the gallop's data-dependent branch chain with an
/// **8-wide compare block**: for each driver element, count how many of the
/// next eight candidates are still below the target. The block is a fixed
///-width, branch-free reduction over a sorted slice — the partition point
/// within the block — which the compiler autovectorizes (one SIMD compare +
/// horizontal add on SSE2/NEON). Densely interleaving lists resolve almost
/// every advance inside one block; only a skip past the whole block falls
/// back to [`gallop`] for the logarithmic long jump.
///
/// Counter semantics match the other search kernels: every block compare
/// counts **one** step into `steps` (it is one vector operation of work),
/// and gallop fallbacks count their comparisons exactly as
/// [`gallop`] does. Output is differential-tested against the k-way
/// [`gallop_intersect`] driver and a `HashSet` oracle on random inputs.
pub fn gallop_intersect2(a: &[u32], b: &[u32], out: &mut Vec<u32>, steps: &mut u64) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    // Drive from the smaller list; the larger keeps one monotone cursor.
    let (driver, other) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut cur = 0usize;
    for &x in driver {
        if let Some(block) = other.get(cur..cur + 8) {
            // Partition point of `x` within the sorted block, as a
            // branch-free count of elements below the target.
            let below: usize = block.iter().map(|&v| usize::from(v < x)).sum();
            *steps += 1;
            cur += below;
            if below == 8 {
                // The whole block is below `x`: long jump.
                cur += gallop(&other[cur..], x, steps);
            }
        } else {
            cur += gallop(&other[cur..], x, steps);
        }
        if cur >= other.len() {
            // No candidate >= x remains: nothing further can match.
            return;
        }
        if other[cur] == x {
            out.push(x);
        }
    }
}

/// Counters reported by store-backed evaluators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Distinct tuples interned into result stores (first derivations).
    pub tuples_interned: u64,
    /// Derivations of tuples that were already present.
    pub duplicate_derivations: u64,
    /// Index probes (and full scans, counted once per scanned candidate
    /// source) performed while joining.
    pub join_probes: u64,
    /// Probes against magic (demand) predicates, counted separately from
    /// [`EvalStats::join_probes`] so the bookkeeping overhead of a
    /// magic-set rewrite stays visible.
    pub magic_probes: u64,
    /// Probes answered by batched kernels from a block-local memo (the
    /// previous delta tuple bound the same key) instead of a fresh index
    /// operation. Batching turns `join_probes` into `block_probes`; the sum
    /// of the two is comparable to the unbatched `join_probes`.
    pub block_probes: u64,
    /// Comparison steps taken by galloping sorted-intersection searches
    /// ([`gallop`] / [`gallop_intersect`]).
    pub gallop_steps: u64,
    /// Rule evaluations executed by the worst-case-optimal generic join
    /// lowering instead of the binary kernel pipeline.
    pub wcoj_rules: u64,
    /// Stages executed.
    pub stages: u64,
}

impl EvalStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.tuples_interned += other.tuples_interned;
        self.duplicate_derivations += other.duplicate_derivations;
        self.join_probes += other.join_probes;
        self.magic_probes += other.magic_probes;
        self.block_probes += other.block_probes;
        self.gallop_steps += other.gallop_steps;
        self.wcoj_rules += other.wcoj_rules;
        self.stages += other.stages;
    }
}

/// Optional budgets for store-backed evaluators. Exceeding a budget makes
/// the evaluator return a graceful [`LimitExceeded`] instead of growing
/// without bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of tuples interned across all result relations.
    pub max_tuples: Option<u64>,
    /// Maximum number of stages.
    pub max_stages: Option<u64>,
}

impl Limits {
    /// No limits at all — evaluation runs to its natural fixpoint.
    pub const fn unlimited() -> Self {
        Limits {
            max_tuples: None,
            max_stages: None,
        }
    }
}

/// A budget from [`Limits`] (or a [`crate::govern::Budget`]) was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitExceeded {
    /// The tuple budget was exceeded.
    Tuples {
        /// The configured budget.
        limit: u64,
        /// How many tuples had been interned when evaluation stopped.
        reached: u64,
    },
    /// The stage budget was exceeded.
    Stages {
        /// The configured budget.
        limit: u64,
    },
    /// The abstract step budget was exceeded.
    Steps {
        /// The configured budget.
        limit: u64,
    },
    /// The game-position budget was exceeded.
    Positions {
        /// The configured budget.
        limit: u64,
        /// How many positions had been generated when the solver stopped.
        reached: u64,
    },
    /// The byte budget was exceeded.
    Bytes {
        /// The configured budget.
        limit: u64,
        /// How many bytes had been charged when the solver stopped.
        reached: u64,
    },
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitExceeded::Tuples { limit, reached } => {
                write!(
                    f,
                    "tuple budget exceeded: {reached} interned, limit {limit}"
                )
            }
            LimitExceeded::Stages { limit } => {
                write!(f, "stage budget exceeded: limit {limit}")
            }
            LimitExceeded::Steps { limit } => {
                write!(f, "step budget exceeded: limit {limit}")
            }
            LimitExceeded::Positions { limit, reached } => {
                write!(
                    f,
                    "position budget exceeded: {reached} generated, limit {limit}"
                )
            }
            LimitExceeded::Bytes { limit, reached } => {
                write!(f, "byte budget exceeded: {reached} charged, limit {limit}")
            }
        }
    }
}

impl std::error::Error for LimitExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_remove_keeps_probe_chains_intact() {
        // Enough tuples to force several table growths and long collision
        // chains; remove half in a scattered order and verify every
        // survivor (old and relocated) still resolves by lookup.
        let mut s = TupleStore::new(2);
        let n: u32 = 500;
        for e in 0..n {
            s.intern(&[e % 17, e]);
        }
        let mut expect: Vec<Vec<Element>> = (0..n).map(|e| vec![e % 17, e]).collect();
        let mut k = 0u32;
        while s.len() > (n / 2) as usize {
            let id = TupleId((k * 7 + 3) % s.len() as u32);
            let gone = s.get(id).to_vec();
            s.swap_remove(id);
            expect.retain(|t| *t != gone);
            assert_eq!(s.lookup(&gone), None);
            k += 1;
        }
        assert_eq!(s.len(), expect.len());
        for t in &expect {
            let id = s.lookup(t).expect("survivor must stay interned");
            assert_eq!(s.get(id), &t[..]);
        }
    }

    #[test]
    fn intern_assigns_dense_ids() {
        let mut s = TupleStore::new(2);
        assert_eq!(s.intern(&[0, 1]), (TupleId(0), true));
        assert_eq!(s.intern(&[1, 2]), (TupleId(1), true));
        assert_eq!(s.intern(&[0, 1]), (TupleId(0), false));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(TupleId(1)), &[1, 2]);
        assert_eq!(s.lookup(&[1, 2]), Some(TupleId(1)));
        assert_eq!(s.lookup(&[2, 1]), None);
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut s = TupleStore::new(1);
        for e in [5u32, 3, 9, 3, 5, 0] {
            s.intern(&[e]);
        }
        let rows: Vec<Vec<Element>> = s.iter().map(<[Element]>::to_vec).collect();
        assert_eq!(rows, vec![vec![5], vec![3], vec![9], vec![0]]);
    }

    #[test]
    fn survives_table_growth() {
        let mut s = TupleStore::new(2);
        for i in 0..1000u32 {
            let (id, fresh) = s.intern(&[i, i.wrapping_mul(7)]);
            assert!(fresh);
            assert_eq!(id.0, i);
        }
        for i in 0..1000u32 {
            assert_eq!(s.lookup(&[i, i.wrapping_mul(7)]), Some(TupleId(i)));
        }
        assert!(!s.contains(&[1000, 1]));
    }

    #[test]
    fn nullary_tuples() {
        let mut s = TupleStore::new(0);
        assert!(!s.contains(&[]));
        assert_eq!(s.intern(&[]), (TupleId(0), true));
        assert_eq!(s.intern(&[]), (TupleId(0), false));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(TupleId(0)), &[] as &[Element]);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn views_are_prefixes() {
        let mut s = TupleStore::new(1);
        for e in 0..10u32 {
            s.intern(&[e]);
        }
        let v = s.view(4);
        assert_eq!(v.len(), 4);
        assert!(v.contains(&[3]));
        assert!(!v.contains(&[4])); // interned, but after the mark
        assert!(s.contains(&[4]));
        assert_eq!(v.iter().count(), 4);
    }

    #[test]
    fn set_eq_ignores_order() {
        let mut a = TupleStore::new(2);
        let mut b = TupleStore::new(2);
        a.intern(&[0, 1]);
        a.intern(&[2, 3]);
        b.intern(&[2, 3]);
        b.intern(&[0, 1]);
        assert!(a.set_eq(&b));
        assert_eq!(a, b);
        b.intern(&[4, 5]);
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn pos_index_incremental_and_ranged() {
        let mut s = TupleStore::new(2);
        s.intern(&[1, 10]);
        s.intern(&[2, 20]);
        s.intern(&[1, 30]);
        let mut ix = PosIndex::new(0);
        ix.update(&s);
        assert_eq!(ix.probe(1, s.id_range()), &[0, 2]);
        s.intern(&[1, 40]);
        s.intern(&[3, 50]);
        ix.update(&s);
        assert_eq!(ix.probe(1, s.id_range()), &[0, 2, 3]);
        // Range restriction: only the delta [3, 5).
        let delta = IdRange { start: 3, end: 5 };
        assert_eq!(ix.probe(1, delta), &[3]);
        assert_eq!(ix.probe(3, delta), &[4]);
        assert_eq!(ix.probe(2, delta), &[] as &[u32]);
    }

    #[test]
    fn id_range_basics() {
        let r = IdRange { start: 2, end: 5 };
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.contains(TupleId(2)));
        assert!(!r.contains(TupleId(5)));
        assert!(IdRange::EMPTY.is_empty());
        assert_eq!(r.iter().count(), 3);
    }

    #[test]
    fn limits_display() {
        let t = LimitExceeded::Tuples {
            limit: 10,
            reached: 12,
        };
        assert!(t.to_string().contains("limit 10"));
        let s = LimitExceeded::Stages { limit: 3 };
        assert!(s.to_string().contains("stage"));
    }

    #[test]
    fn card_stats_track_distinct_values_per_position() {
        let mut s = TupleStore::new(2);
        s.intern(&[1, 10]);
        s.intern(&[1, 20]);
        s.intern(&[2, 10]);
        s.intern(&[1, 10]); // duplicate: must not perturb the counters
        let stats = s.card_stats();
        assert_eq!(stats.len, 3);
        assert_eq!(stats.distinct, vec![2, 2]);
        // 3 tuples / 2 distinct values at position 0 => 1.5 expected matches.
        assert!((stats.estimate_matches(&[0]) - 1.5).abs() < 1e-9);
        assert!((stats.estimate_matches(&[0, 1]) - 0.75).abs() < 1e-9);
        assert!((stats.estimate_matches(&[]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn card_stats_survive_many_inserts() {
        let mut s = TupleStore::new(1);
        for i in 0..500u32 {
            s.intern(&[i % 37]);
        }
        assert_eq!(s.card_stats().distinct, vec![37]);
        assert_eq!(s.card_stats().len, 37);
    }

    #[test]
    fn pos_index_reports_distinct() {
        let mut s = TupleStore::new(2);
        s.intern(&[1, 10]);
        s.intern(&[2, 10]);
        s.intern(&[1, 30]);
        let mut ix = PosIndex::new(1);
        ix.update(&s);
        assert_eq!(ix.distinct(), 2);
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bloom = TupleBloom::with_capacity(64);
        let hashes: Vec<u64> = (0..64u32).map(|i| tuple_hash(&[i, i + 1])).collect();
        for &h in &hashes {
            bloom.insert(h);
        }
        for &h in &hashes {
            assert!(bloom.maybe_contains(h));
        }
        // Not a soundness property, but on this tiny load the filter should
        // reject the bulk of absent probes.
        let misses = (1000..2000u32)
            .filter(|&i| !bloom.maybe_contains(tuple_hash(&[i, i])))
            .count();
        assert!(misses > 800, "bloom rejected only {misses}/1000 absentees");
    }

    #[test]
    fn empty_bloom_rejects_everything() {
        let bloom = TupleBloom::default();
        assert!(!bloom.maybe_contains(tuple_hash(&[1, 2])));
        assert_eq!(bloom.items(), 0);
        assert!(!bloom.should_grow());
    }

    #[test]
    fn stats_merge() {
        let mut a = EvalStats {
            tuples_interned: 1,
            duplicate_derivations: 2,
            join_probes: 3,
            magic_probes: 5,
            block_probes: 6,
            gallop_steps: 7,
            wcoj_rules: 8,
            stages: 4,
        };
        a.merge(&EvalStats {
            tuples_interned: 10,
            duplicate_derivations: 20,
            join_probes: 30,
            magic_probes: 50,
            block_probes: 60,
            gallop_steps: 70,
            wcoj_rules: 80,
            stages: 40,
        });
        assert_eq!(a.tuples_interned, 11);
        assert_eq!(a.join_probes, 33);
        assert_eq!(a.magic_probes, 55);
        assert_eq!(a.block_probes, 66);
        assert_eq!(a.gallop_steps, 77);
        assert_eq!(a.wcoj_rules, 88);
    }

    #[test]
    fn gallop_finds_first_geq() {
        let list: Vec<u32> = vec![2, 3, 5, 8, 13, 21, 34, 55];
        let mut steps = 0u64;
        for target in 0..60u32 {
            let expect = list.partition_point(|&x| x < target);
            assert_eq!(gallop(&list, target, &mut steps), expect, "target {target}");
        }
        assert!(steps > 0);
        // Degenerate inputs.
        assert_eq!(gallop(&[], 7, &mut steps), 0);
        assert_eq!(gallop(&[9], 7, &mut steps), 0);
        assert_eq!(gallop(&[9], 9, &mut steps), 0);
        assert_eq!(gallop(&[9], 10, &mut steps), 1);
    }

    #[test]
    fn gallop_unrolled_matches_scalar_differential() {
        use crate::rng::SplitMix64;
        for seed in 0..8u64 {
            let mut rng = SplitMix64::seed_from_u64(0x0BAD_C0DE + seed);
            for _ in 0..500 {
                let n = (rng.next_u64() % 256) as usize;
                let mut list: Vec<u32> = (0..n).map(|_| (rng.next_u64() % 1024) as u32).collect();
                list.sort_unstable();
                list.dedup();
                let target = (rng.next_u64() % 1100) as u32;
                let (mut unrolled_steps, mut scalar_steps) = (0u64, 0u64);
                let got = gallop(&list, target, &mut unrolled_steps);
                let want = gallop_scalar(&list, target, &mut scalar_steps);
                assert_eq!(got, want, "result diverged on {list:?} / {target}");
                assert_eq!(
                    unrolled_steps, scalar_steps,
                    "step count diverged on {list:?} / {target}"
                );
                assert_eq!(got, list.partition_point(|&x| x < target));
            }
        }
    }

    #[test]
    fn extend_block_matches_per_tuple_intern() {
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(0x1DEA);
        for arity in [1usize, 2, 3] {
            let mut blocked = TupleStore::new(arity);
            let mut scalar = TupleStore::new(arity);
            for _ in 0..20 {
                let tuples = (rng.next_u64() % 100) as usize;
                let block: Vec<Element> = (0..tuples * arity)
                    .map(|_| (rng.next_u64() % 12) as Element)
                    .collect();
                let mut want_fresh = 0usize;
                for t in block.chunks_exact(arity) {
                    if scalar.intern(t).1 {
                        want_fresh += 1;
                    }
                }
                assert_eq!(blocked.extend_block(&block), want_fresh);
                assert_eq!(blocked.len(), scalar.len());
            }
            // Identical id assignment, not just set equality.
            for id in 0..blocked.len() as u32 {
                assert_eq!(blocked.get(TupleId(id)), scalar.get(TupleId(id)));
            }
        }
    }

    /// Reference intersection via hashing, for differential testing.
    fn naive_intersect(lists: &[&[u32]]) -> Vec<u32> {
        use std::collections::HashSet;
        let Some((first, rest)) = lists.split_first() else {
            return Vec::new();
        };
        let mut acc: HashSet<u32> = first.iter().copied().collect();
        for list in rest {
            let next: HashSet<u32> = list.iter().copied().collect();
            acc.retain(|x| next.contains(x));
        }
        let mut out: Vec<u32> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn gallop_intersect_edge_cases() {
        let mut out = Vec::new();
        let mut steps = 0u64;
        // No lists at all.
        gallop_intersect(&[], &mut out, &mut steps);
        assert!(out.is_empty());
        // Any empty list annihilates the intersection.
        gallop_intersect(&[&[1, 2, 3], &[]], &mut out, &mut steps);
        assert!(out.is_empty());
        // A single list intersects to itself.
        gallop_intersect(&[&[4, 7, 9]], &mut out, &mut steps);
        assert_eq!(out, vec![4, 7, 9]);
        // Singletons: hit and miss.
        gallop_intersect(&[&[5], &[1, 5, 9]], &mut out, &mut steps);
        assert_eq!(out, vec![5]);
        gallop_intersect(&[&[6], &[1, 5, 9]], &mut out, &mut steps);
        assert!(out.is_empty());
        // Fully disjoint (interleaved) lists.
        gallop_intersect(&[&[0, 2, 4, 6], &[1, 3, 5, 7]], &mut out, &mut steps);
        assert!(out.is_empty());
        // All-equal lists intersect to themselves, regardless of k.
        let same: &[u32] = &[3, 6, 9, 12];
        gallop_intersect(&[same, same, same, same], &mut out, &mut steps);
        assert_eq!(out, same);
        // `out` is cleared on every call, not accumulated into.
        gallop_intersect(&[&[1], &[2]], &mut out, &mut steps);
        assert!(out.is_empty());
    }

    #[test]
    fn gallop_intersect_differential_vs_hashset() {
        use crate::rng::SplitMix64;
        let mut out = Vec::new();
        for seed in 0..40u64 {
            let mut rng = SplitMix64::seed_from_u64(0xC0FFEE + seed);
            let k = rng.gen_range(1usize..5);
            let lists: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let len = rng.gen_range(0usize..40);
                    let mut l: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..60)).collect();
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            let mut steps = 0u64;
            gallop_intersect(&refs, &mut out, &mut steps);
            assert_eq!(out, naive_intersect(&refs), "seed {seed}: lists {lists:?}");
            assert!(out.windows(2).all(|w| w[0] < w[1]), "seed {seed}: unsorted");
        }
    }

    #[test]
    fn gallop_intersect2_differential_vs_hashset_and_kway() {
        use crate::rng::SplitMix64;
        use std::collections::HashSet;
        let mut fast = Vec::new();
        let mut kway = Vec::new();
        for seed in 0..120u64 {
            let mut rng = SplitMix64::seed_from_u64(0x8B10C5 + seed);
            // Skewed lengths exercise both the block path (dense
            // interleave) and the gallop fallback (sparse driver).
            let la = rng.gen_range(0usize..120);
            let lb = rng.gen_range(0usize..120);
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(0u32..160)).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(0u32..160)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut fast_steps = 0u64;
            gallop_intersect2(&a, &b, &mut fast, &mut fast_steps);
            // HashSet oracle.
            let sa: HashSet<u32> = a.iter().copied().collect();
            let mut oracle: Vec<u32> = b.iter().copied().filter(|v| sa.contains(v)).collect();
            oracle.sort_unstable();
            assert_eq!(fast, oracle, "seed {seed}: a {a:?} b {b:?}");
            assert!(fast.windows(2).all(|w| w[0] < w[1]), "seed {seed}: sorted");
            // The k-way driver routes 2-list calls here: byte-identical.
            let mut kway_steps = 0u64;
            gallop_intersect(&[&a, &b], &mut kway, &mut kway_steps);
            assert_eq!(fast, kway, "seed {seed}: routed path diverged");
            assert_eq!(fast_steps, kway_steps, "seed {seed}: step counts");
            // Work is bounded: one block compare per driver element plus
            // logarithmic long jumps can never exceed the scalar bound of
            // both lists' lengths combined (each comparison advances
            // either the driver or the cursor by at least one).
            if !a.is_empty() && !b.is_empty() {
                assert!(
                    fast_steps <= (a.len() + b.len() + 2) as u64 * 2,
                    "seed {seed}: {fast_steps} steps for |a|={} |b|={}",
                    a.len(),
                    b.len()
                );
            }
        }
    }

    #[test]
    fn gallop_intersect2_edge_cases() {
        let mut out = vec![99];
        let mut steps = 0u64;
        gallop_intersect2(&[], &[1, 2], &mut out, &mut steps);
        assert!(out.is_empty(), "cleared on empty input");
        gallop_intersect2(&[5], &[5], &mut out, &mut steps);
        assert_eq!(out, vec![5]);
        gallop_intersect2(&[3], &[1, 2, 3, 4, 5, 6, 7, 8, 9], &mut out, &mut steps);
        assert_eq!(out, vec![3]);
        // Driver far beyond the other list: the cursor exhausts and the
        // loop returns early.
        gallop_intersect2(&[100, 200], &[1, 2, 3], &mut out, &mut steps);
        assert!(out.is_empty());
        // Long dense identical lists resolve via whole blocks.
        let dense: Vec<u32> = (0..64).collect();
        gallop_intersect2(&dense, &dense, &mut out, &mut steps);
        assert_eq!(out, dense);
    }

    #[test]
    fn range_slice_is_columnar_prefix() {
        let mut s = TupleStore::new(2);
        for i in 0..5u32 {
            s.intern(&[i, 10 * i]);
        }
        assert_eq!(s.range_slice(IdRange { start: 1, end: 3 }), &[1, 10, 2, 20]);
        assert_eq!(s.range_slice(IdRange::EMPTY), &[] as &[Element]);
        assert_eq!(s.range_slice(s.id_range()).len(), 10);
        // Batched scans chunk the slice by arity.
        let rows: Vec<&[Element]> = s.range_slice(s.id_range()).chunks_exact(2).collect();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], &[4, 40]);
    }
}
