//! Finite structures: a universe together with interpretations of every
//! symbol of a [`Vocabulary`].

use crate::store::{TupleId, TupleStore};
use crate::vocabulary::{ConstId, RelId, Vocabulary};
use std::fmt;
use std::sync::Arc;

/// An element of a structure's universe. Universes are always `{0, …, n-1}`.
pub type Element = u32;

/// A tuple of elements (one row of a relation), in owned/boxed form.
///
/// Storage no longer boxes tuples — relations intern rows into a
/// [`TupleStore`] arena — but the boxed form remains the convenient owned
/// representation for sorting, error reporting, and test fixtures.
pub type Tuple = Box<[Element]>;

/// The interpretation of one relation symbol: a set of tuples of the symbol's
/// arity, interned in a [`TupleStore`].
///
/// Iteration yields borrowed `&[Element]` slices in insertion (id) order;
/// equality is *set* equality, independent of insertion order. The
/// underlying store is exposed ([`store`](Self::store)) so evaluators can
/// index and join the relation without copying its tuples.
#[derive(Debug, Clone, Default, Eq)]
pub struct Relation {
    store: TupleStore,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            store: TupleStore::new(arity),
        }
    }

    /// Wraps an existing store as a relation.
    pub fn from_store(store: TupleStore) -> Self {
        Self { store }
    }

    /// The arity of this relation.
    pub fn arity(&self) -> usize {
        self.store.arity()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple length does not match the arity.
    pub fn insert(&mut self, tuple: &[Element]) -> bool {
        self.store.intern(tuple).1
    }

    /// Tests membership.
    pub fn contains(&self, tuple: &[Element]) -> bool {
        self.store.contains(tuple)
    }

    /// The dense id of a tuple within this relation's store, if present.
    pub fn id_of(&self, tuple: &[Element]) -> Option<TupleId> {
        self.store.lookup(tuple)
    }

    /// Iterates over the tuples in insertion (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &[Element]> {
        self.store.iter()
    }

    /// The backing interned store.
    pub fn store(&self) -> &TupleStore {
        &self.store
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// The backing arena is append-only (that is what makes delta views id
    /// ranges), so removal rebuilds the store without the tuple — O(n).
    /// No hot path removes tuples; this exists for test fixtures and
    /// ad-hoc structure surgery.
    pub fn remove(&mut self, tuple: &[Element]) -> bool {
        if !self.store.contains(tuple) {
            return false;
        }
        let mut rebuilt = TupleStore::new(self.store.arity());
        for t in self.store.iter().filter(|t| *t != tuple) {
            rebuilt.intern(t);
        }
        self.store = rebuilt;
        true
    }

    /// Returns the tuples as a sorted vector (deterministic order, for
    /// display and hashing-independent comparisons).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.store.iter().map(Box::from).collect();
        v.sort();
        v
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.store.set_eq(&other.store)
    }
}

/// A finite relational structure `A` over a vocabulary `σ`.
///
/// The universe is `{0, …, n-1}`; every relation symbol of `σ` is interpreted
/// by a [`Relation`] and every constant symbol by an element.
///
/// The vocabulary is held behind an [`Arc`] so that the many structures built
/// during game solving and reductions share it cheaply.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    vocabulary: Arc<Vocabulary>,
    universe: usize,
    relations: Vec<Relation>,
    constants: Vec<Element>,
}

impl Structure {
    /// Creates a structure with an empty interpretation of every relation
    /// symbol and all constants interpreted as element `0`.
    ///
    /// # Panics
    /// Panics if `universe == 0` but the vocabulary has constant symbols
    /// (constants need somewhere to point).
    pub fn new(vocabulary: Arc<Vocabulary>, universe: usize) -> Self {
        assert!(
            universe > 0 || vocabulary.constant_count() == 0,
            "empty universe cannot interpret constant symbols"
        );
        let relations = vocabulary
            .relations()
            .map(|r| Relation::new(vocabulary.arity(r)))
            .collect();
        let constants = vec![0; vocabulary.constant_count()];
        Self {
            vocabulary,
            universe,
            relations,
            constants,
        }
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocabulary
    }

    /// Universe size `n`; the universe is `{0, …, n-1}`.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Iterates over all elements of the universe.
    pub fn elements(&self) -> impl Iterator<Item = Element> {
        0..self.universe as Element
    }

    /// The interpretation of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.0]
    }

    /// Mutable access to the interpretation of relation `rel`.
    pub fn relation_mut(&mut self, rel: RelId) -> &mut Relation {
        &mut self.relations[rel.0]
    }

    /// Inserts a tuple into relation `rel`; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics on arity mismatch or if a tuple component is outside the
    /// universe.
    pub fn insert(&mut self, rel: RelId, tuple: &[Element]) -> bool {
        assert!(
            tuple.iter().all(|&e| (e as usize) < self.universe),
            "tuple {tuple:?} outside universe of size {}",
            self.universe
        );
        self.relations[rel.0].insert(tuple)
    }

    /// Tests whether `tuple` is in relation `rel`.
    pub fn contains(&self, rel: RelId, tuple: &[Element]) -> bool {
        self.relations[rel.0].contains(tuple)
    }

    /// The interpretation of constant `c`.
    pub fn constant(&self, c: ConstId) -> Element {
        self.constants[c.0]
    }

    /// Sets the interpretation of constant `c`.
    ///
    /// # Panics
    /// Panics if `value` is outside the universe.
    pub fn set_constant(&mut self, c: ConstId, value: Element) {
        assert!(
            (value as usize) < self.universe,
            "constant outside universe"
        );
        self.constants[c.0] = value;
    }

    /// All constant interpretations, in `ConstId` order.
    pub fn constant_values(&self) -> &[Element] {
        &self.constants
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Grows the universe by `extra` fresh elements and returns the first new
    /// element. Relations and constants are unchanged.
    pub fn grow(&mut self, extra: usize) -> Element {
        let first = self.universe as Element;
        self.universe += extra;
        first
    }

    /// Checks the structure for internal consistency (tuples within the
    /// universe, arities correct, constants within the universe). Used by
    /// tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for rel in self.vocabulary.relations() {
            let r = &self.relations[rel.0];
            if r.arity() != self.vocabulary.arity(rel) {
                return Err(format!(
                    "relation {} has arity {} but vocabulary says {}",
                    self.vocabulary.relation_name(rel),
                    r.arity(),
                    self.vocabulary.arity(rel)
                ));
            }
            for t in r.iter() {
                if t.iter().any(|&e| e as usize >= self.universe) {
                    return Err(format!(
                        "tuple {t:?} of {} outside universe of size {}",
                        self.vocabulary.relation_name(rel),
                        self.universe
                    ));
                }
            }
        }
        for (i, &c) in self.constants.iter().enumerate() {
            if c as usize >= self.universe {
                return Err(format!(
                    "constant {} = {c} outside universe of size {}",
                    self.vocabulary.constant_name(ConstId(i)),
                    self.universe
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure with |A| = {}", self.universe)?;
        for rel in self.vocabulary.relations() {
            let name = self.vocabulary.relation_name(rel);
            let rows = self.relations[rel.0].sorted();
            write!(f, "  {name} = {{")?;
            for (i, t) in rows.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, e) in t.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        for c in self.vocabulary.constants() {
            writeln!(
                f,
                "  {} = {}",
                self.vocabulary.constant_name(c),
                self.constants[c.0]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_vocab() -> Arc<Vocabulary> {
        Arc::new(Vocabulary::graph())
    }

    #[test]
    fn empty_structure() {
        let s = Structure::new(graph_vocab(), 3);
        assert_eq!(s.universe_size(), 3);
        assert_eq!(s.tuple_count(), 0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn insert_and_contains() {
        let mut s = Structure::new(graph_vocab(), 3);
        let e = RelId(0);
        assert!(s.insert(e, &[0, 1]));
        assert!(!s.insert(e, &[0, 1]));
        assert!(s.insert(e, &[1, 2]));
        assert!(s.contains(e, &[0, 1]));
        assert!(!s.contains(e, &[1, 0]));
        assert_eq!(s.tuple_count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = Structure::new(graph_vocab(), 2);
        s.insert(RelId(0), &[0, 5]);
    }

    #[test]
    fn constants_roundtrip() {
        let v = Arc::new(Vocabulary::graph_with_constants(2));
        let mut s = Structure::new(v, 4);
        s.set_constant(ConstId(0), 1);
        s.set_constant(ConstId(1), 3);
        assert_eq!(s.constant(ConstId(0)), 1);
        assert_eq!(s.constant(ConstId(1)), 3);
        assert_eq!(s.constant_values(), &[1, 3]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn grow_adds_elements() {
        let mut s = Structure::new(graph_vocab(), 2);
        let first = s.grow(3);
        assert_eq!(first, 2);
        assert_eq!(s.universe_size(), 5);
        assert!(s.insert(RelId(0), &[4, 0]));
    }

    #[test]
    fn validate_rejects_bad_constant() {
        let v = Arc::new(Vocabulary::graph_with_constants(1));
        let mut s = Structure::new(v, 3);
        s.set_constant(ConstId(0), 2);
        // Shrink behind validate's back is impossible through the API, so
        // build the error by hand via a cloned structure with fewer elements.
        s.universe = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn relation_sorted_is_deterministic() {
        let mut r = Relation::new(2);
        r.insert(&[2, 0]);
        r.insert(&[0, 1]);
        r.insert(&[1, 1]);
        let rows = r.sorted();
        assert_eq!(
            rows,
            vec![
                vec![0u32, 1].into_boxed_slice(),
                vec![1u32, 1].into_boxed_slice(),
                vec![2u32, 0].into_boxed_slice(),
            ]
        );
    }

    #[test]
    fn display_contains_relations_and_constants() {
        let v = Arc::new(Vocabulary::graph_with_constants(1));
        let mut s = Structure::new(v, 2);
        s.insert(RelId(0), &[0, 1]);
        s.set_constant(ConstId(0), 1);
        let text = s.to_string();
        assert!(text.contains("E = {(0,1)}"));
        assert!(text.contains("s1 = 1"));
    }
}
