//! Vocabularies: finite collections of relation and constant symbols.
//!
//! The paper's Proviso (Section 3) restricts attention to finite
//! vocabularies, so a [`Vocabulary`] is a plain in-memory table. Symbols are
//! referred to by the dense indices [`RelId`] and [`ConstId`]; names are kept
//! for parsing and display only.

use std::fmt;

/// Index of a relation symbol within a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

/// Index of a constant symbol within a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(pub usize);

/// A finite vocabulary `σ` of relation symbols (each with an arity) and
/// constant symbols.
///
/// Constant symbols are the vehicle by which the paper equips input graphs
/// with *distinguished nodes* (e.g. the sources/sinks `s_1, …, s_4` of the
/// fixed subgraph homeomorphism queries in Section 6).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Vocabulary {
    relations: Vec<(String, usize)>,
    constants: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation symbol with the given `arity` and returns its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists.
    pub fn add_relation(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        let name = name.into();
        assert!(
            self.relation_by_name(&name).is_none(),
            "duplicate relation symbol {name:?}"
        );
        self.relations.push((name, arity));
        RelId(self.relations.len() - 1)
    }

    /// Adds a constant symbol and returns its id.
    ///
    /// # Panics
    /// Panics if a constant with the same name already exists.
    pub fn add_constant(&mut self, name: impl Into<String>) -> ConstId {
        let name = name.into();
        assert!(
            self.constant_by_name(&name).is_none(),
            "duplicate constant symbol {name:?}"
        );
        self.constants.push(name);
        ConstId(self.constants.len() - 1)
    }

    /// Number of relation symbols.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Number of constant symbols.
    pub fn constant_count(&self) -> usize {
        self.constants.len()
    }

    /// The arity of relation symbol `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.relations[rel.0].1
    }

    /// The name of relation symbol `rel`.
    pub fn relation_name(&self, rel: RelId) -> &str {
        &self.relations[rel.0].0
    }

    /// The name of constant symbol `c`.
    pub fn constant_name(&self, c: ConstId) -> &str {
        &self.constants[c.0]
    }

    /// Looks a relation symbol up by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelId> {
        self.relations
            .iter()
            .position(|(n, _)| n == name)
            .map(RelId)
    }

    /// Looks a constant symbol up by name.
    pub fn constant_by_name(&self, name: &str) -> Option<ConstId> {
        self.constants.iter().position(|n| n == name).map(ConstId)
    }

    /// Iterates over all relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len()).map(RelId)
    }

    /// Iterates over all constant ids.
    pub fn constants(&self) -> impl Iterator<Item = ConstId> + '_ {
        (0..self.constants.len()).map(ConstId)
    }

    /// The vocabulary of plain directed graphs: a single binary relation `E`.
    pub fn graph() -> Self {
        let mut v = Self::new();
        v.add_relation("E", 2);
        v
    }

    /// The vocabulary of directed graphs with `k` distinguished nodes named
    /// `s1, …, sk` (matching the paper's Section 6 conventions).
    pub fn graph_with_constants(k: usize) -> Self {
        let mut v = Self::graph();
        for i in 1..=k {
            v.add_constant(format!("s{i}"));
        }
        v
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ = {{")?;
        let mut first = true;
        for (name, arity) in &self.relations {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name}/{arity}")?;
        }
        for name in &self.constants {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_relations() {
        let mut v = Vocabulary::new();
        let e = v.add_relation("E", 2);
        let t = v.add_relation("T", 3);
        assert_eq!(v.arity(e), 2);
        assert_eq!(v.arity(t), 3);
        assert_eq!(v.relation_by_name("E"), Some(e));
        assert_eq!(v.relation_by_name("T"), Some(t));
        assert_eq!(v.relation_by_name("X"), None);
        assert_eq!(v.relation_count(), 2);
    }

    #[test]
    fn add_and_lookup_constants() {
        let mut v = Vocabulary::new();
        let s = v.add_constant("s");
        let t = v.add_constant("t");
        assert_eq!(v.constant_by_name("s"), Some(s));
        assert_eq!(v.constant_by_name("t"), Some(t));
        assert_eq!(v.constant_name(s), "s");
        assert_eq!(v.constant_count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn duplicate_relation_panics() {
        let mut v = Vocabulary::new();
        v.add_relation("E", 2);
        v.add_relation("E", 2);
    }

    #[test]
    #[should_panic(expected = "duplicate constant")]
    fn duplicate_constant_panics() {
        let mut v = Vocabulary::new();
        v.add_constant("s");
        v.add_constant("s");
    }

    #[test]
    fn graph_vocabulary() {
        let v = Vocabulary::graph_with_constants(4);
        assert_eq!(v.relation_count(), 1);
        assert_eq!(v.constant_count(), 4);
        assert_eq!(v.arity(RelId(0)), 2);
        assert_eq!(v.constant_name(ConstId(2)), "s3");
    }

    #[test]
    fn display_is_readable() {
        let v = Vocabulary::graph_with_constants(2);
        assert_eq!(v.to_string(), "σ = {E/2, s1, s2}");
    }
}
