//! Property and fuzz tests for the durable storage substrate: mutable
//! store compaction edge cases, serialization round-trips, and loader
//! robustness against arbitrary byte damage (bit flips, truncation,
//! trailing garbage). Driven by the in-tree [`SplitMix64`] generator —
//! seed-deterministic and offline, like `properties.rs`.

use kv_structures::persist::{
    self, checksum64, decode_mutable_store, encode_mutable_store, frame_record, ByteReader,
    Manifest, RecoveryError, SegmentedLog,
};
use kv_structures::rng::SplitMix64;
use kv_structures::{Element, MutableStore, TupleStore};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kv-structures-durability-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A random mutable-store history: inserts, retracts, kills, and epoch
/// commits, leaving a mix of live, decremented, and dead tuples.
fn random_store(seed: u64, arity: usize, ops: usize) -> MutableStore {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut m = MutableStore::new(arity);
    for _ in 0..ops {
        let roll = rng.next_u64() % 10;
        let tuple: Vec<Element> = (0..arity).map(|_| rng.gen_range(0u32..6)).collect();
        if roll < 5 {
            m.insert(&tuple);
        } else if roll < 8 {
            m.retract(&tuple);
        } else if roll < 9 {
            if let Some(id) = m.lookup(&tuple) {
                m.kill(id);
            }
        } else {
            m.commit_epoch();
        }
    }
    m
}

/// The live content of a store as a sorted multiset of (tuple, support).
fn live_content(m: &MutableStore) -> Vec<(Vec<Element>, u32)> {
    let mut rows: Vec<(Vec<Element>, u32)> = m
        .live_iter()
        .map(|t| {
            let sup = m.lookup(t).map(|id| m.support(id)).unwrap_or(0);
            (t.to_vec(), sup)
        })
        .collect();
    rows.sort();
    rows
}

// ---------------------------------------------------------------------
// Compaction properties.
// ---------------------------------------------------------------------

/// `compact` and `compact_in_place` preserve exactly the live content
/// (tuples and support counts); both leave a contiguous fully-live
/// arena and a cleared mark generation.
#[test]
fn compaction_strategies_preserve_live_content() {
    for seed in 0..48u64 {
        for arity in [1usize, 2, 3] {
            let base = random_store(seed * 31 + arity as u64, arity, 60);
            let expect = live_content(&base);

            let mut ordered = base.clone();
            let remap = ordered.compact();
            assert_eq!(live_content(&ordered), expect, "compact seed={seed}");
            assert_eq!(ordered.len(), ordered.live_len(), "compact left tombstones");
            assert_eq!(remap.len(), base.len());
            // The remap is exactly the live survivors, in id order.
            assert_eq!(
                remap.iter().filter(|r| r.is_some()).count(),
                expect.len(),
                "remap live count"
            );

            let mut swapped = base.clone();
            swapped.compact_in_place();
            assert_eq!(live_content(&swapped), expect, "in-place seed={seed}");
            assert_eq!(
                swapped.len(),
                swapped.live_len(),
                "in-place left tombstones"
            );
            // Both compactions agree with each other (id order may differ).
            assert_eq!(live_content(&ordered), live_content(&swapped));
            // Marks are cleared: no epoch views survive compaction.
            assert!(ordered.epoch_marks().is_empty());
            assert!(swapped.epoch_marks().is_empty());
        }
    }
}

/// Edge case: compacting a store with zero live tuples (everything
/// retracted or killed) empties the arena without panicking.
#[test]
fn compacting_zero_live_tuples() {
    for kill_all in [false, true] {
        let mut m = MutableStore::new(2);
        for i in 0..10u32 {
            m.insert(&[i, i + 1]);
            m.commit_epoch();
        }
        for i in 0..10u32 {
            if kill_all {
                let id = m.lookup(&[i, i + 1]).expect("interned");
                m.kill(id);
            } else {
                m.retract(&[i, i + 1]);
            }
        }
        assert_eq!(m.live_len(), 0);
        assert_eq!(m.len(), 10);
        let mut in_place = m.clone();
        in_place.compact_in_place();
        assert_eq!(in_place.len(), 0);
        assert_eq!(in_place.live_len(), 0);
        let remap = m.compact();
        assert_eq!(m.len(), 0);
        assert!(remap.iter().all(|r| r.is_none()));
        // The emptied store is still usable.
        m.insert(&[3, 4]);
        assert!(m.contains_live(&[3, 4]));
    }
}

/// Edge case: an all-dead contiguous run in the middle of the arena
/// (the swap-fill path must walk through it without skipping holes).
#[test]
fn compacting_all_dead_middle_segment() {
    let mut m = MutableStore::new(1);
    for i in 0..30u32 {
        m.insert(&[i]);
    }
    // Kill a long middle run [5, 25).
    for i in 5..25u32 {
        m.retract(&[i]);
    }
    let expect = live_content(&m);
    m.compact_in_place();
    assert_eq!(live_content(&m), expect);
    assert_eq!(m.len(), 10);
    // Every survivor is findable at its new id.
    for (t, sup) in expect {
        let id = m.lookup(&t).expect("survivor");
        assert_eq!(m.support(id), sup);
    }
}

/// Interleaved epoch marks: views of committed epochs are coherent
/// prefixes until a compaction clears the generation, and
/// [`MutableStore::epoch_view`] refuses stale epochs afterwards.
#[test]
fn interleaved_epoch_marks_and_compaction() {
    let mut m = MutableStore::new(1);
    let mut committed = Vec::new();
    for i in 0..12u32 {
        m.insert(&[i]);
        if i % 3 == 2 {
            committed.push((m.commit_epoch(), m.len() as u32));
        }
    }
    for (epoch, upto) in &committed {
        let view = m.epoch_view(*epoch).expect("committed epoch view");
        assert_eq!(view.len(), *upto as usize, "epoch {epoch} prefix");
    }
    // Kill some tuples: views still cover the arena prefix (tombstones
    // included — marks count arena slots, not live tuples).
    m.retract(&[1]);
    m.retract(&[4]);
    assert!(m.epoch_view(committed[0].0).is_some());
    m.compact_in_place();
    // The old generation is gone; ids were permuted.
    for (epoch, _) in &committed {
        assert!(m.epoch_view(*epoch).is_none(), "stale epoch {epoch} served");
    }
    // New commits start a fresh generation after compaction.
    let e = m.commit_epoch();
    assert_eq!(m.epoch_view(e).expect("fresh epoch").len(), m.len());
}

/// `TupleStore::swap_remove` across every position of a store,
/// including the final-slot special case: the dense invariant holds
/// and lookups stay exact.
#[test]
fn swap_remove_every_position() {
    for remove_at in 0..6u32 {
        let mut s = TupleStore::new(2);
        for i in 0..6u32 {
            s.intern(&[i, 10 + i]);
        }
        s.swap_remove(kv_structures::TupleId(remove_at));
        assert_eq!(s.len(), 5);
        // The removed tuple is gone; everything else is findable.
        assert!(s.lookup(&[remove_at, 10 + remove_at]).is_none());
        for i in 0..6u32 {
            if i != remove_at {
                let id = s.lookup(&[i, 10 + i]).expect("survivor");
                assert_eq!(s.get(id), &[i, 10 + i][..]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Serialization round-trips.
// ---------------------------------------------------------------------

/// `encode_mutable_store`/`decode_mutable_store` round-trip arbitrary
/// histories exactly: same arena order, supports, epoch, and marks.
#[test]
fn mutable_store_codec_roundtrip() {
    let path = PathBuf::from("roundtrip-test");
    for seed in 0..64u64 {
        for arity in [0usize, 1, 2, 3] {
            let m = random_store(seed * 7 + 1, arity.max(1), 50);
            // Nullary stores get their own tiny history (random_store
            // needs distinct tuples, a nullary store has only one).
            let m = if arity == 0 {
                let mut n = MutableStore::new(0);
                if seed % 2 == 0 {
                    n.insert(&[]);
                    n.commit_epoch();
                }
                n
            } else {
                m
            };
            let mut buf = Vec::new();
            encode_mutable_store(&mut buf, &m);
            let mut r = ByteReader::new(&buf);
            let back = decode_mutable_store(&mut r, &path).expect("round-trip decodes");
            assert!(r.is_exhausted(), "trailing bytes");
            assert_eq!(back.len(), m.len());
            assert_eq!(back.epoch(), m.epoch());
            assert_eq!(back.epoch_marks(), m.epoch_marks());
            assert_eq!(back.support_counts(), m.support_counts());
            assert_eq!(live_content(&back), live_content(&m));
            // Arena id order is reproduced exactly (stage identity).
            for (a, b) in m.store().iter().zip(back.store().iter()) {
                assert_eq!(a, b, "arena order diverged");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Loader fuzz: damage must decode to typed errors, never panics.
// ---------------------------------------------------------------------

/// A small healthy two-record log on disk, returned as (dir, bytes of
/// segment 0).
fn healthy_log(tag: &str) -> (PathBuf, PathBuf, Vec<u8>) {
    let dir = temp_dir(tag);
    let mut log = SegmentedLog::create(&dir, "fuzz", 1 << 20).expect("create log");
    log.append(&[1, 2, 3, 4, 5]).expect("append");
    log.append(&[0xAA; 33]).expect("append");
    log.sync().expect("sync");
    drop(log);
    let seg = persist::segment_path(&dir, "fuzz", 0);
    let bytes = std::fs::read(&seg).expect("read segment");
    (dir, seg, bytes)
}

/// Bit-flip every byte of a segment file (three masks each): the loader
/// either returns a typed error, or succeeds having truncated a torn
/// *tail* — it never panics and never invents records.
#[test]
fn segment_loader_survives_every_bitflip() {
    let (dir, seg, bytes) = healthy_log("bitflip");
    for i in 0..bytes.len() {
        for mask in [0x01u8, 0x10, 0x80] {
            let mut bad = bytes.clone();
            bad[i] ^= mask;
            std::fs::write(&seg, &bad).expect("write damaged");
            match SegmentedLog::load(&dir, "fuzz") {
                Ok(loaded) => {
                    // Damage in the second record is tail-truncatable;
                    // damage in the first must fail the whole load (it
                    // is not the tail). Either way, no more records
                    // than were written, and surviving records intact.
                    assert!(loaded.records.len() <= 2, "invented records at byte {i}");
                    if let Some(first) = loaded.records.first() {
                        if loaded.records.len() == 2 || loaded.torn_tail || i >= 21 {
                            assert_eq!(first, &vec![1u8, 2, 3, 4, 5], "record 0 damaged at {i}");
                        }
                    }
                }
                Err(RecoveryError::Corrupt { .. }) | Err(RecoveryError::Mismatch { .. }) => {}
                Err(e) => panic!("unexpected error class at byte {i}: {e}"),
            }
        }
    }
    std::fs::write(&seg, &bytes).expect("restore");
    let loaded = SegmentedLog::load(&dir, "fuzz").expect("restored loads");
    assert_eq!(loaded.records.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncate the segment at every possible length: the loader keeps the
/// longest valid record prefix and flags (or errors on) the rest.
#[test]
fn segment_loader_survives_every_truncation() {
    let (dir, seg, bytes) = healthy_log("truncate");
    let rec0_end = 16 + 5; // frame overhead + payload of record 0
    for len in 0..bytes.len() {
        std::fs::write(&seg, &bytes[..len]).expect("write truncated");
        let loaded = SegmentedLog::load(&dir, "fuzz").expect("truncation is always tolerable");
        if len < rec0_end {
            assert_eq!(loaded.records.len(), 0, "len={len}");
            assert_eq!(loaded.torn_tail, len > 0, "len={len}");
        } else if len < bytes.len() {
            assert_eq!(loaded.records.len(), 1, "len={len}");
            assert_eq!(loaded.records[0], vec![1, 2, 3, 4, 5]);
            assert_eq!(loaded.torn_tail, len > rec0_end, "len={len}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Append garbage after the last valid record: tolerated (truncated) on
/// the final segment, rejected as corruption on a non-final one.
#[test]
fn trailing_garbage_tolerated_only_on_final_segment() {
    let (dir, seg, bytes) = healthy_log("garbage");
    let mut rng = SplitMix64::seed_from_u64(99);
    for glen in [1usize, 7, 16, 64] {
        let mut bad = bytes.clone();
        for _ in 0..glen {
            bad.push(rng.next_u64() as u8);
        }
        std::fs::write(&seg, &bad).expect("write garbage");
        let loaded = SegmentedLog::load(&dir, "fuzz").expect("final-segment garbage tolerated");
        assert_eq!(loaded.records.len(), 2, "glen={glen}");
        assert!(loaded.torn_tail, "glen={glen}");
        // Reopen truncates the garbage and appending works again.
        let mut log = SegmentedLog::reopen(&dir, "fuzz", 1 << 20).expect("reopen");
        log.append(&[9, 9]).expect("append after truncation");
        drop(log);
        let healed = SegmentedLog::load(&dir, "fuzz").expect("healed log");
        assert_eq!(healed.records.len(), 3);
        assert!(!healed.torn_tail);
        std::fs::write(&seg, &bytes).expect("restore");
    }
    // Same garbage on a NON-final segment is committed-data loss: typed
    // corruption, not silent truncation.
    let mut bad = bytes.clone();
    bad.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
    std::fs::write(&seg, &bad).expect("write garbage");
    let seg1 = persist::segment_path(&dir, "fuzz", 1);
    let mut frame = Vec::new();
    frame_record(&mut frame, &[7, 7, 7]);
    std::fs::write(&seg1, &frame).expect("write segment 1");
    match SegmentedLog::load(&dir, "fuzz") {
        Err(RecoveryError::Corrupt { .. }) => {}
        other => panic!("mid-log garbage must be Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Manifest fuzz: bit-flip every byte, truncate at every length, append
/// garbage — a damaged manifest is always a typed error (the root
/// pointer is never guess-repaired), and the atomic rewrite heals it.
#[test]
fn manifest_fuzz_is_typed_and_atomic() {
    let dir = temp_dir("manifest");
    let manifest = Manifest {
        generation: 3,
        checkpoint_epoch: 17,
        fingerprint: 0xFEED_BEEF_CAFE_0001,
    };
    persist::write_manifest(&dir, &manifest, false).expect("write manifest");
    let path = dir.join(persist::MANIFEST_NAME);
    let bytes = std::fs::read(&path).expect("read manifest");
    let back = persist::read_manifest(&dir)
        .expect("read back")
        .expect("present");
    assert_eq!(back.generation, 3);
    assert_eq!(back.checkpoint_epoch, 17);

    for i in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut bad = bytes.clone();
            bad[i] ^= mask;
            std::fs::write(&path, &bad).expect("write damaged");
            match persist::read_manifest(&dir) {
                Err(RecoveryError::Corrupt { .. }) | Err(RecoveryError::Mismatch { .. }) => {}
                other => panic!("flip at {i}: manifest damage must be typed, got {other:?}"),
            }
        }
    }
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).expect("write truncated");
        assert!(
            persist::read_manifest(&dir).is_err(),
            "truncated manifest at {len} must not decode"
        );
    }
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0x5A; 9]);
    std::fs::write(&path, &padded).expect("write padded");
    assert!(
        persist::read_manifest(&dir).is_err(),
        "manifest trailing garbage must not decode"
    );
    // The write-temp-then-rename path heals any damage atomically.
    persist::write_manifest(&dir, &manifest, true).expect("rewrite");
    let healed = persist::read_manifest(&dir)
        .expect("healed")
        .expect("present");
    assert_eq!(healed.fingerprint, manifest.fingerprint);
    std::fs::remove_dir_all(&dir).ok();
}

/// Damaged store payloads inside an intact frame: every bit flip of an
/// encoded `MutableStore` either round-trips (benign counter flip) or
/// fails typed — never panics, never violates `from_parts` invariants.
#[test]
fn mutable_store_decoder_survives_every_bitflip() {
    let path = PathBuf::from("decoder-fuzz");
    let m = random_store(5, 2, 40);
    let mut buf = Vec::new();
    encode_mutable_store(&mut buf, &m);
    for i in 0..buf.len() {
        for mask in [0x01u8, 0xFF] {
            let mut bad = buf.clone();
            bad[i] ^= mask;
            let mut r = ByteReader::new(&bad);
            if let Ok(decoded) = decode_mutable_store(&mut r, &path) {
                // Whatever decoded satisfies the structural invariants.
                assert_eq!(decoded.support_counts().len(), decoded.len());
                assert!(decoded.epoch_marks().len() as u64 <= decoded.epoch());
            }
        }
    }
    for len in 0..buf.len() {
        let mut r = ByteReader::new(&buf[..len]);
        assert!(
            decode_mutable_store(&mut r, &path).is_err(),
            "truncated store at {len} must not decode"
        );
    }
    // Checksum sanity: the codec content hashes stably.
    assert_eq!(checksum64(&buf), checksum64(&buf));
    assert_ne!(checksum64(&buf), checksum64(&buf[..buf.len() - 1]));
}
