//! Randomized property tests for the core data structures, driven by the
//! in-tree [`SplitMix64`] generator (seed-deterministic, offline).

use kv_structures::hom::{extension_ok, find_homomorphism, is_partial_hom, TupleIndex};
use kv_structures::rng::SplitMix64;
use kv_structures::{
    disjoint_union, induced_substructure, quotient, Digraph, Element, HomKind, PartialMap,
};

/// A random digraph with `2..=max_n` nodes and a bounded edge count.
fn random_case_digraph(max_n: usize, max_edges: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(2usize..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..max_edges + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        g.add_edge(u, v);
    }
    g
}

/// A random partial map as a pair list (deduplicated by domain).
fn random_map_pairs(rng: &mut SplitMix64) -> Vec<(Element, Element)> {
    let len = rng.gen_range(0usize..8);
    let mut pairs: Vec<(Element, Element)> = (0..len)
        .map(|_| (rng.gen_range(0u32..12), rng.gen_range(0u32..12)))
        .collect();
    pairs.sort_by_key(|&(a, _)| a);
    pairs.dedup_by_key(|&mut (a, _)| a);
    pairs
}

/// PartialMap: insert/get/remove behave like a map of pairs.
#[test]
fn partial_map_semantics() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let pairs = random_map_pairs(&mut rng);
        let map = PartialMap::from_pairs(pairs.clone());
        assert_eq!(map.len(), pairs.len());
        for &(a, b) in &pairs {
            assert_eq!(map.get(a), Some(b));
            assert!(map.contains_domain(a));
            assert!(map.contains_range(b));
        }
        // Removal really removes, and only the targeted key.
        if let Some(&(a0, _)) = pairs.first() {
            let mut m2 = map.clone();
            m2.remove(a0);
            assert_eq!(m2.get(a0), None);
            assert_eq!(m2.len(), map.len() - 1);
            assert!(m2.is_subfunction_of(&map));
        }
    }
}

/// Subfunction is a partial order compatible with extension.
#[test]
fn subfunction_partial_order() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(100 + seed);
        let pairs = random_map_pairs(&mut rng);
        let a = rng.gen_range(20u32..30);
        let b = rng.gen_range(0u32..12);
        let map = PartialMap::from_pairs(pairs);
        let ext = map.extended(a, b);
        assert!(map.is_subfunction_of(&ext));
        assert!(ext.is_subfunction_of(&ext));
        assert!(!ext.is_subfunction_of(&map));
        assert!(ext.without(a).is_subfunction_of(&map));
    }
}

/// The identity map is always a partial homomorphism; subfunctions of
/// partial homomorphisms are partial homomorphisms.
#[test]
fn identity_and_subfunction_homs() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(200 + seed);
        let g = random_case_digraph(6, 24, &mut rng);
        let s = g.to_structure();
        let full = PartialMap::from_pairs((0..s.universe_size() as u32).map(|i| (i, i)));
        assert!(is_partial_hom(&full, &s, &s, HomKind::OneToOne));
        for drop in 0..s.universe_size() as u32 {
            let sub = full.without(drop);
            assert!(is_partial_hom(&sub, &s, &s, HomKind::OneToOne));
        }
    }
}

/// extension_ok agrees with the full homomorphism check.
#[test]
fn incremental_matches_full_check() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(300 + seed);
        let g = random_case_digraph(5, 12, &mut rng);
        let h = random_case_digraph(5, 12, &mut rng);
        let x = rng.gen_range(0u32..5);
        let y = rng.gen_range(0u32..5);
        let a = g.to_structure();
        let b = h.to_structure();
        if (x as usize) < a.universe_size() && (y as usize) < b.universe_size() {
            let index = TupleIndex::build(&a);
            let empty = PartialMap::new();
            let incremental = extension_ok(&empty, x, y, &index, &b, HomKind::OneToOne);
            let full = is_partial_hom(&PartialMap::from_pairs([(x, y)]), &a, &b, HomKind::OneToOne);
            assert_eq!(incremental, full, "seed {seed}: ({x}, {y})");
        }
    }
}

/// A found homomorphism really is one.
#[test]
fn found_homomorphisms_verify() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(400 + seed);
        let g = random_case_digraph(4, 10, &mut rng);
        let h = random_case_digraph(5, 12, &mut rng);
        let a = g.to_structure();
        let b = h.to_structure();
        for kind in [HomKind::Homomorphism, HomKind::OneToOne] {
            if let Some(hom) = find_homomorphism(&a, &b, kind, false) {
                let map =
                    PartialMap::from_pairs(hom.iter().enumerate().map(|(i, &v)| (i as u32, v)));
                assert!(is_partial_hom(&map, &a, &b, kind), "seed {seed}, {kind:?}");
            }
        }
    }
}

/// Quotients preserve tuple *images*: every original tuple maps into the
/// quotient.
#[test]
fn quotient_preserves_tuples() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(500 + seed);
        let g = random_case_digraph(6, 24, &mut rng);
        let s = g.to_structure();
        let n = s.universe_size() as u32;
        let mut a = rng.gen_range(0u32..6) % n;
        let mut b = rng.gen_range(0u32..6) % n;
        if a == b {
            continue;
        }
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let class_of: Vec<Element> = (0..n)
            .map(|e| {
                if e == b {
                    a
                } else if e > b {
                    e - 1
                } else {
                    e
                }
            })
            .collect();
        let q = quotient(&s, &class_of);
        for rel in s.vocabulary().relations() {
            for t in s.relation(rel).iter() {
                let image: Vec<Element> = t.iter().map(|&e| class_of[e as usize]).collect();
                assert!(q.contains(rel, &image), "seed {seed}");
            }
        }
        assert_eq!(q.universe_size() + 1, s.universe_size());
    }
}

/// Disjoint unions contain both halves and nothing else.
#[test]
fn disjoint_union_counts() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(600 + seed);
        let g = random_case_digraph(5, 12, &mut rng);
        let h = random_case_digraph(5, 12, &mut rng);
        let a = g.to_structure();
        let b = h.to_structure();
        let u = disjoint_union(&a, &b);
        assert_eq!(u.universe_size(), a.universe_size() + b.universe_size());
        assert_eq!(u.tuple_count(), a.tuple_count() + b.tuple_count());
        // The embedded copies are induced substructures isomorphic to the
        // originals (checked by direct containment).
        let left: Vec<Element> = (0..a.universe_size() as u32).collect();
        let sub = induced_substructure(&u, &left);
        assert_eq!(sub.tuple_count(), a.tuple_count());
    }
}

/// Structure ⇄ digraph bridge is lossless.
#[test]
fn digraph_roundtrip() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(700 + seed);
        let g = random_case_digraph(7, 24, &mut rng);
        let s = g.to_structure();
        let g2 = Digraph::from_structure(&s);
        assert_eq!(g, g2, "seed {seed}");
    }
}

/// io: parse ∘ render is the identity on random digraphs (with and
/// without distinguished nodes).
#[test]
fn io_text_roundtrip() {
    use kv_structures::{parse_digraph, write_digraph};
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(800 + seed);
        let mut g = random_case_digraph(9, 30, &mut rng);
        if seed % 2 == 0 {
            let n = g.node_count() as u32;
            let picks = rng.gen_range(0usize..4);
            let d: Vec<u32> = (0..picks).map(|_| rng.gen_range(0u32..n)).collect();
            g.set_distinguished(d);
        }
        let text = write_digraph(&g);
        let g2 = parse_digraph(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(g, g2, "seed {seed}");
        // Render is canonical: a second round-trip reproduces the text.
        assert_eq!(write_digraph(&g2), text, "seed {seed}");
    }
}

/// io: the parser is total — arbitrary garbage yields Err with position
/// context, never a panic.
#[test]
fn io_parser_total_on_arbitrary_input() {
    use kv_structures::parse_digraph;
    for seed in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(900 + seed);
        let len = rng.gen_range(0usize..120);
        let src: String = (0..len)
            .map(|_| match rng.gen_range(0u32..24) {
                0 => '\n',
                1 => '#',
                2 => ' ',
                3 => 'π',
                _ => char::from(rng.gen_range(0x20u8..0x7f)),
            })
            .collect();
        if let Err(e) = parse_digraph(&src) {
            let _ = e.to_string();
        }
    }
}

/// io: the parser is total on token-soup from its own vocabulary.
#[test]
fn io_parser_total_on_token_soup() {
    use kv_structures::parse_digraph;
    const TOKENS: [&str; 9] = [
        "nodes",
        "distinguished",
        "0",
        "1",
        "7",
        "-3",
        "#",
        "\n",
        "x",
    ];
    for seed in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let len = rng.gen_range(0usize..16);
        let src = (0..len)
            .map(|_| TOKENS[rng.gen_range(0usize..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_digraph(&src);
    }
}
