//! Property-based tests for the core data structures.

use kv_structures::hom::{extension_ok, find_homomorphism, is_partial_hom, TupleIndex};
use kv_structures::{
    disjoint_union, induced_substructure, quotient, Digraph, Element, HomKind, PartialMap,
};
use proptest::prelude::*;

/// Strategy: a small digraph as (node count, edge list).
fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * n).min(24)).prop_map(
            move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    g.add_edge(u, v);
                }
                g
            },
        )
    })
}

/// Strategy: a partial map as a pair list (deduplicated by domain).
fn map_strategy() -> impl Strategy<Value = Vec<(Element, Element)>> {
    proptest::collection::vec((0u32..12, 0u32..12), 0..8).prop_map(|mut pairs| {
        pairs.sort_by_key(|&(a, _)| a);
        pairs.dedup_by_key(|&mut (a, _)| a);
        pairs
    })
}

proptest! {
    /// PartialMap: insert/get/remove behave like a map of pairs.
    #[test]
    fn partial_map_semantics(pairs in map_strategy()) {
        let map = PartialMap::from_pairs(pairs.clone());
        prop_assert_eq!(map.len(), pairs.len());
        for &(a, b) in &pairs {
            prop_assert_eq!(map.get(a), Some(b));
            prop_assert!(map.contains_domain(a));
            prop_assert!(map.contains_range(b));
        }
        // Removal really removes, and only the targeted key.
        if let Some(&(a0, _)) = pairs.first() {
            let mut m2 = map.clone();
            m2.remove(a0);
            prop_assert_eq!(m2.get(a0), None);
            prop_assert_eq!(m2.len(), map.len() - 1);
            prop_assert!(m2.is_subfunction_of(&map));
        }
    }

    /// Subfunction is a partial order compatible with extension.
    #[test]
    fn subfunction_partial_order(pairs in map_strategy(), a in 20u32..30, b in 0u32..12) {
        let map = PartialMap::from_pairs(pairs);
        let ext = map.extended(a, b);
        prop_assert!(map.is_subfunction_of(&ext));
        prop_assert!(ext.is_subfunction_of(&ext));
        prop_assert!(!ext.is_subfunction_of(&map));
        prop_assert!(ext.without(a).is_subfunction_of(&map));
    }

    /// The identity map is always a partial homomorphism; subfunctions of
    /// partial homomorphisms are partial homomorphisms.
    #[test]
    fn identity_and_subfunction_homs(g in digraph_strategy(6)) {
        let s = g.to_structure();
        let full = PartialMap::from_pairs((0..s.universe_size() as u32).map(|i| (i, i)));
        prop_assert!(is_partial_hom(&full, &s, &s, HomKind::OneToOne));
        for drop in 0..s.universe_size() as u32 {
            let sub = full.without(drop);
            prop_assert!(is_partial_hom(&sub, &s, &s, HomKind::OneToOne));
        }
    }

    /// extension_ok agrees with the full homomorphism check.
    #[test]
    fn incremental_matches_full_check(
        g in digraph_strategy(5),
        h in digraph_strategy(5),
        x in 0u32..5,
        y in 0u32..5,
    ) {
        let a = g.to_structure();
        let b = h.to_structure();
        if (x as usize) < a.universe_size() && (y as usize) < b.universe_size() {
            let index = TupleIndex::build(&a);
            let empty = PartialMap::new();
            let incremental = extension_ok(&empty, x, y, &index, &b, HomKind::OneToOne);
            let full = is_partial_hom(
                &PartialMap::from_pairs([(x, y)]),
                &a,
                &b,
                HomKind::OneToOne,
            );
            prop_assert_eq!(incremental, full);
        }
    }

    /// A found homomorphism really is one.
    #[test]
    fn found_homomorphisms_verify(g in digraph_strategy(4), h in digraph_strategy(5)) {
        let a = g.to_structure();
        let b = h.to_structure();
        for kind in [HomKind::Homomorphism, HomKind::OneToOne] {
            if let Some(hom) = find_homomorphism(&a, &b, kind, false) {
                let map = PartialMap::from_pairs(
                    hom.iter().enumerate().map(|(i, &v)| (i as u32, v)),
                );
                prop_assert!(is_partial_hom(&map, &a, &b, kind));
            }
        }
    }

    /// Quotients preserve tuple *images*: every original tuple maps into
    /// the quotient.
    #[test]
    fn quotient_preserves_tuples(g in digraph_strategy(6), merge in (0u32..6, 0u32..6)) {
        let s = g.to_structure();
        let n = s.universe_size() as u32;
        let (mut a, mut b) = merge;
        a %= n;
        b %= n;
        if a == b {
            return Ok(());
        }
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let class_of: Vec<Element> = (0..n)
            .map(|e| if e == b { a } else if e > b { e - 1 } else { e })
            .collect();
        let q = quotient(&s, &class_of);
        for rel in s.vocabulary().relations() {
            for t in s.relation(rel).iter() {
                let image: Vec<Element> = t.iter().map(|&e| class_of[e as usize]).collect();
                prop_assert!(q.contains(rel, &image));
            }
        }
        prop_assert_eq!(q.universe_size() + 1, s.universe_size());
    }

    /// Disjoint unions contain both halves and nothing else.
    #[test]
    fn disjoint_union_counts(g in digraph_strategy(5), h in digraph_strategy(5)) {
        let a = g.to_structure();
        let b = h.to_structure();
        let u = disjoint_union(&a, &b);
        prop_assert_eq!(u.universe_size(), a.universe_size() + b.universe_size());
        prop_assert_eq!(u.tuple_count(), a.tuple_count() + b.tuple_count());
        // The embedded copies are induced substructures isomorphic to the
        // originals (checked by direct containment).
        let left: Vec<Element> = (0..a.universe_size() as u32).collect();
        let sub = induced_substructure(&u, &left);
        prop_assert_eq!(sub.tuple_count(), a.tuple_count());
    }

    /// Structure ⇄ digraph bridge is lossless.
    #[test]
    fn digraph_roundtrip(g in digraph_strategy(7)) {
        let s = g.to_structure();
        let g2 = Digraph::from_structure(&s);
        prop_assert_eq!(g, g2);
    }
}
