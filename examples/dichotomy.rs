//! The case study end-to-end: classify pattern graphs, generate the
//! Datalog(≠) programs for the positive side, and build + check the
//! inexpressibility witnesses for the negative side — both FHW dichotomies
//! made executable.
//!
//! ```sh
//! cargo run --example dichotomy
//! ```

use datalog_expressiveness::homeo::PatternSpec;
use datalog_expressiveness::pebble::play::{play_game, RandomSpoiler};
use datalog_expressiveness::pebble::Winner;
use datalog_expressiveness::reduction::variants::LiftedDuplicator;
use datalog_expressiveness::structures::{Digraph, HomKind};
use datalog_expressiveness::{classify_and_report, negative_witness, Expressibility};

fn main() {
    let patterns: Vec<(&str, PatternSpec)> = vec![
        (
            "out-star K1,3",
            PatternSpec {
                node_count: 4,
                edges: vec![(0, 1), (0, 2), (0, 3)],
            },
        ),
        (
            "in-star with self-loop",
            PatternSpec {
                node_count: 3,
                edges: vec![(0, 0), (1, 0), (2, 0)],
            },
        ),
        ("H1 (two disjoint edges)", PatternSpec::two_disjoint_edges()),
        ("H2 (path of length 2)", PatternSpec::path_length_two()),
        ("H3 (2-cycle)", PatternSpec::two_cycle()),
        (
            "H1 + bridge edge",
            PatternSpec {
                node_count: 4,
                edges: vec![(0, 1), (2, 3), (1, 2)],
            },
        ),
    ];

    for (name, pattern) in &patterns {
        let report = classify_and_report(pattern);
        print!("{name:<26} → ");
        match report.verdict {
            Expressibility::ExpressibleEverywhere(program) => {
                println!(
                    "class C: Datalog(≠)-expressible everywhere ({} IDBs, {} rules)",
                    program.idb_count(),
                    program.rules().len()
                );
            }
            Expressibility::InexpressibleGeneral {
                generator,
                acyclic_program,
            } => {
                println!(
                    "class C̄ via {generator:?}: NOT L^ω-expressible; acyclic-input program has {} IDBs",
                    acyclic_program.idb_count()
                );
            }
            Expressibility::Degenerate => println!("degenerate"),
        }
    }

    // Build and attack a negative witness for H1 at k = 2.
    println!("\n— negative witness for H1 at k = 2 (Theorem 6.6) —");
    let w = negative_witness(&PatternSpec::two_disjoint_edges(), 2);
    println!(
        "A_2: {} elements (two disjoint paths, satisfies the query)",
        w.lift.a.universe_size()
    );
    println!(
        "B_2 = G_(φ_2): {} elements (no disjoint paths — φ_2 is unsatisfiable)",
        w.lift.b.universe_size()
    );
    let mut survived = 0;
    for seed in 0..10 {
        let mut spoiler = RandomSpoiler::new(w.lift.a.universe_size(), seed);
        let mut duplicator = LiftedDuplicator {
            lift: &w.lift,
            inner: w.base.duplicator(),
        };
        let outcome = play_game(
            &w.lift.a,
            &w.lift.b,
            2,
            HomKind::OneToOne,
            &mut spoiler,
            &mut duplicator,
            400,
        );
        if outcome == Winner::Duplicator {
            survived += 1;
        }
    }
    println!("simulation strategy survived {survived}/10 random Spoilers over 400 rounds each ✓");

    // Show the witness separates the query concretely (k = 1 for brute force).
    let w1 = negative_witness(&PatternSpec::two_disjoint_edges(), 1);
    let ga = Digraph::from_structure(&w1.lift.a);
    let gb = Digraph::from_structure(&w1.lift.b);
    let da = w1.lift.a.constant_values().to_vec();
    let db = w1.lift.b.constant_values().to_vec();
    let yes = datalog_expressiveness::homeo::brute_force_homeomorphism(&w1.lift.pattern, &ga, &da);
    let no = datalog_expressiveness::homeo::brute_force_homeomorphism(&w1.lift.pattern, &gb, &db);
    println!("query separation at k = 1: A ⊨ Q = {yes}, B ⊨ Q = {no} (expected true / false)");
}
