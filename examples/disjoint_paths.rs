//! Theorem 6.1 end-to-end: the two node-disjoint paths query solved three
//! ways — by the generated Datalog(≠) program `Q_{2,0}`, by
//! node-capacitated max flow (Menger), and by brute force — on a batch of
//! random graphs.
//!
//! ```sh
//! cargo run --example disjoint_paths
//! ```

use datalog_expressiveness::datalog::programs::q_kl;
use datalog_expressiveness::datalog::Evaluator;
use datalog_expressiveness::graphalg::disjoint::{disjoint_fan, DisjointFan};
use datalog_expressiveness::homeo::{brute_force_homeomorphism, PatternSpec};
use datalog_expressiveness::structures::generators::random_digraph;

fn main() {
    let program = q_kl(2, 0);
    println!("Theorem 6.1 program Q_2,0:\n{program}");

    let star = PatternSpec {
        node_count: 3,
        edges: vec![(0, 1), (0, 2)],
    };
    let mut agreements = 0usize;
    let mut positives = 0usize;
    for seed in 0..20 {
        let g = random_digraph(8, 0.28, seed);
        let s = g.to_structure();
        let relation = Evaluator::new(&program).goal(&s);
        let (src, t1, t2) = (0u32, 1u32, 2u32);

        let by_program = relation.contains(&[src, t1, t2][..]);
        let by_flow = matches!(disjoint_fan(&g, src, &[t1, t2], &[]), DisjointFan::Paths(_));
        let by_brute = brute_force_homeomorphism(&star, &g, &[src, t1, t2]);
        assert_eq!(by_program, by_flow, "seed {seed}");
        assert_eq!(by_program, by_brute, "seed {seed}");
        agreements += 1;
        if by_program {
            positives += 1;
            if let DisjointFan::Paths(paths) = disjoint_fan(&g, src, &[t1, t2], &[]) {
                println!(
                    "seed {seed:>2}: disjoint paths {:?} and {:?}",
                    paths[0], paths[1]
                );
            }
        } else if let DisjointFan::Cut(cut) = disjoint_fan(&g, src, &[t1, t2], &[]) {
            println!("seed {seed:>2}: no fan — Menger cut {cut:?}");
        }
    }
    println!("\nall three methods agreed on {agreements} instances ({positives} positive) ✓");
}
