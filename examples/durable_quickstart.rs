//! Persistence quick-start (README §"Persistence quick-start"): maintain
//! a reachability query durably, mutate it through the WAL, and show that
//! re-opening the directory recovers the exact state — no shutdown hook.
//!
//! Run with: `cargo run --example durable_quickstart`

use datalog_expressiveness::datalog::programs::transitive_closure;
use datalog_expressiveness::structures::generators::directed_path;
use datalog_expressiveness::structures::govern::Governor;
use datalog_expressiveness::structures::RelId;
use datalog_expressiveness::ProgramQuery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("tc-durable-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let edges = RelId(0);

    // First life: a fresh directory loads the template structure as
    // epoch 1, then every batch is WAL-logged before it applies.
    {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let report = q.open_durable(&directed_path(4), &dir)?;
        println!(
            "fresh open: manifest_found={} epoch={}",
            report.manifest_found, report.recovered_epoch
        );
        assert_eq!(q.incremental_holds(), Some(true));
        // Cut the middle edge; survives a kill -9 from here on.
        q.try_apply_batch_durable(&[], &[(edges, vec![1, 2])], &Governor::unlimited())?;
        assert_eq!(q.incremental_holds(), Some(false));
        let stats = q.flush_stats().expect("durable engine attached");
        println!(
            "flushed {} WAL records ({} bytes)",
            stats.wal_records, stats.wal_bytes
        );
        // Dropped without any shutdown hook — that's the point.
    }

    // Second life: the same open call now recovers checkpoint + WAL.
    let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
    let report = q.open_durable(&directed_path(4), &dir)?;
    println!(
        "recovered: epoch={} replayed={} torn={}",
        report.recovered_epoch, report.replayed_batches, report.torn_wal_truncated
    );
    assert_eq!(report.recovered_epoch, 2);
    assert_eq!(
        q.incremental_holds(),
        Some(false),
        "the cut edge stayed cut"
    );
    // Restore the edge durably and force a checkpoint: the next open
    // will load the snapshot and replay nothing.
    q.try_apply_batch_durable(&[(edges, vec![1, 2])], &[], &Governor::unlimited())?;
    assert_eq!(q.incremental_holds(), Some(true));
    let snapshot_bytes = q.checkpoint_now()?;
    println!("checkpointed ({snapshot_bytes} snapshot bytes); answer is back to true");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
