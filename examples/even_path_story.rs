//! Corollary 6.8 as a story: why the **even simple path** query escapes
//! `L^ω` (and hence Datalog(≠)) — from the reduction, through the doubled
//! witness, to the transported Duplicator strategy.
//!
//! ```sh
//! cargo run --example even_path_story
//! ```

use datalog_expressiveness::homeo::even_path::{even_path_patterns, even_simple_path};
use datalog_expressiveness::homeo::{brute_force_homeomorphism, PatternSpec};
use datalog_expressiveness::pebble::play::{play_game, RandomSpoiler};
use datalog_expressiveness::pebble::{ExistentialGame, Winner};
use datalog_expressiveness::reduction::even_reduction::{
    even_path_instance, transport_witness, DoubledWitness, DoublingDuplicator,
};
use datalog_expressiveness::reduction::thm66::Thm66Witness;
use datalog_expressiveness::structures::generators::random_digraph;
use datalog_expressiveness::structures::HomKind;

fn main() {
    // Act 1: the reduction G ↦ G* is exact (checked by brute force).
    println!("— Act 1: two disjoint paths ⟺ even simple path in G* —");
    let mut agree = 0;
    for seed in 0..12u64 {
        let g = random_digraph(7, 0.25, seed);
        let s = [0u32, 1, 2, 3];
        let inst = even_path_instance(&g, s);
        let left = brute_force_homeomorphism(&PatternSpec::two_disjoint_edges(), &g, &s);
        let right = even_simple_path(&inst.graph, inst.s1, inst.t);
        assert_eq!(left, right);
        agree += 1;
    }
    println!("equivalence verified on {agree} random instances ✓");

    // Act 2: double the Theorem 6.6 witness.
    println!("\n— Act 2: the doubled witness (A*, B*) —");
    let base = Thm66Witness::new(2);
    let doubled = DoubledWitness::build(&base.a, &base.b);
    println!(
        "A* has {} nodes (even path exists), B* has {} nodes (no even path:",
        doubled.a.universe_size(),
        doubled.b.universe_size()
    );
    println!("its preimage G_(φ_2) has no disjoint-path pair since φ_2 is unsatisfiable).");
    // Exhibit A*'s even path by transporting the trivial witness.
    let ga = datalog_expressiveness::structures::Digraph::from_structure(&base.a);
    let ca = base.a.constant_values();
    let inst = even_path_instance(&ga, [ca[0], ca[1], ca[2], ca[3]]);
    let top: Vec<u32> = (ca[0]..=ca[1]).collect();
    let bottom: Vec<u32> = (ca[2]..=ca[3]).collect();
    let witness_path = transport_witness(&inst, &top, &bottom);
    println!(
        "A*'s even simple path has {} nodes (length {}, even ✓)",
        witness_path.len(),
        witness_path.len() - 1
    );

    // Act 3: the transported strategy survives the k-pebble game on
    // (A*, B*), with the 2k-pebble simulation strategy running inside.
    println!("\n— Act 3: the transported Duplicator under fire —");
    for k in [1usize, 2] {
        let mut wins = 0;
        let seeds = 10;
        for seed in 0..seeds {
            let mut spoiler = RandomSpoiler::new(doubled.a.universe_size(), seed);
            let mut duplicator = DoublingDuplicator {
                witness: &doubled,
                inner: base.duplicator(),
            };
            if play_game(
                &doubled.a,
                &doubled.b,
                k,
                HomKind::OneToOne,
                &mut spoiler,
                &mut duplicator,
                300,
            ) == Winner::Duplicator
            {
                wins += 1;
            }
        }
        println!("k = {k}: survived {wins}/{seeds} random Spoilers (300 rounds each)");
    }

    // Act 4: the Proposition 5.4 procedure is fooled — concretely.
    println!("\n— Act 4: the game-based evaluator over-approximates on B* —");
    let small = Thm66Witness::new(1);
    let d1 = DoubledWitness::build(&small.a, &small.b);
    let accepted = even_path_patterns(d1.b.universe_size()).iter().any(|p| {
        ExistentialGame::solve(p, &d1.b, 1, HomKind::OneToOne).winner() == Winner::Duplicator
    });
    println!(
        "pattern ≼¹ B* for some odd-path pattern: {accepted} — yet B* has no even simple path."
    );
    println!(
        "Were the query L¹-expressible, Proposition 5.4 would make this procedure exact;\n\
         the discrepancy certifies inexpressibility, and the same argument runs for every k\n\
         (Corollary 6.8). ∎"
    );
}
