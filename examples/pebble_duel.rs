//! The existential k-pebble games of Section 4, move by move: the solver
//! decides the winner, then the extracted strategies actually play the
//! game (Examples 4.4 and 4.5).
//!
//! ```sh
//! cargo run --example pebble_duel
//! ```

use datalog_expressiveness::pebble::play::{
    play_game, FamilyDuplicator, RandomSpoiler, SolverSpoiler,
};
use datalog_expressiveness::pebble::ExistentialGame;
use datalog_expressiveness::structures::generators::{
    directed_path, two_crossing_paths, two_disjoint_paths,
};
use datalog_expressiveness::structures::HomKind;

fn main() {
    // Example 4.4: short path vs long path, both directions.
    println!("— Example 4.4: directed paths of different lengths —");
    let short = directed_path(4);
    let long = directed_path(8);
    for k in 1..=3 {
        let fwd = ExistentialGame::solve(&short, &long, k, HomKind::OneToOne);
        let bwd = ExistentialGame::solve(&long, &short, k, HomKind::OneToOne);
        println!(
            "k = {k}: (P4 → P8) winner = {:?} [{} configs], (P8 → P4) winner = {:?} [{} configs]",
            fwd.winner(),
            fwd.arena_size(),
            bwd.winner(),
            bwd.arena_size(),
        );
    }

    // Validate by play: the Duplicator's family strategy survives a random
    // Spoiler; the solver Spoiler demolishes the reverse game.
    let game = ExistentialGame::solve(&short, &long, 2, HomKind::OneToOne);
    let mut spoiler = RandomSpoiler::new(short.universe_size(), 7);
    let mut duplicator = FamilyDuplicator::new(&game);
    let outcome = play_game(
        &short,
        &long,
        2,
        HomKind::OneToOne,
        &mut spoiler,
        &mut duplicator,
        500,
    );
    println!("500 random rounds on the winnable side: {outcome:?}");

    let lost = ExistentialGame::solve(&long, &short, 2, HomKind::OneToOne);
    let mut spoiler = SolverSpoiler::new(&lost);
    let mut duplicator = FamilyDuplicator::new(&lost);
    let outcome = play_game(
        &long,
        &short,
        2,
        HomKind::OneToOne,
        &mut spoiler,
        &mut duplicator,
        64,
    );
    println!("solver Spoiler on the lost side finishes with: {outcome:?}");

    // Example 4.5: two disjoint paths vs two crossing paths.
    println!("\n— Example 4.5: disjoint vs crossing paths —");
    for n in 1..=2 {
        let a = two_disjoint_paths(n);
        let b = two_crossing_paths(n);
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
            println!(
                "n = {n}, k = {k}: winner = {:?} (family of {} maps)",
                g.winner(),
                g.family_size()
            );
        }
    }
    println!(
        "\nThe paper exhibits a Spoiler win with 3 pebbles; the solver shows 2 already \
         suffice — and that a single pebble never does."
    );
}
