//! Quickstart: parse a Datalog(≠) program, evaluate it bottom-up, and
//! inspect the stages — Examples 2.1 and 2.2 of the paper.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use datalog_expressiveness::datalog::{parse_program, EvalOptions, Evaluator};
use datalog_expressiveness::structures::generators::random_digraph;
use datalog_expressiveness::structures::Vocabulary;
use std::sync::Arc;

fn main() {
    // Example 2.1: is there a w-avoiding path from x to y?
    let source = "
        // Datalog(!=): inequalities are allowed in rule bodies.
        T(x, y, w) :- E(x, y), w != x, w != y.
        T(x, y, w) :- E(x, z), T(z, y, w), w != x.
        ?- T.
    ";
    let program = parse_program(source, Arc::new(Vocabulary::graph())).expect("parses");
    println!("program:\n{program}");

    let graph = random_digraph(8, 0.25, 42);
    let structure = graph.to_structure();
    println!(
        "input: random digraph, {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let result = Evaluator::new(&program).run(&structure, EvalOptions::default());
    println!(
        "least fixpoint reached after {} stages; |T| = {} tuples",
        result.stage_count(),
        result.idb[0].len()
    );
    println!(
        "counters: {} tuples interned, {} join probes, {} duplicate derivations",
        result.eval_stats.tuples_interned,
        result.eval_stats.join_probes,
        result.eval_stats.duplicate_derivations
    );
    for (i, stage) in result.stats.iter().enumerate() {
        println!("  stage {:>2}: +{} tuples", i + 1, stage.new_tuples[0]);
    }

    // Spot-check against the graph algorithm.
    let t = &result.idb[0];
    let mut checked = 0;
    for x in 0..8u32 {
        for y in 0..8u32 {
            for w in 0..8u32 {
                let expected = datalog_expressiveness::graphalg::avoiding_path(&graph, x, y, &[w]);
                assert_eq!(t.contains(&[x, y, w][..]), expected);
                checked += 1;
            }
        }
    }
    println!("verified all {checked} triples against BFS ✓");
}
