//! Figures 1–6 as runnable artifacts: the switch gadget and the reduction
//! graphs `G_{x1 ∨ x1}` (Figure 5) and `G_{x1 ∧ x̄1}` (Figure 6), with
//! Lemma 6.4 verified exhaustively and DOT renderings written to
//! `target/figures/`.
//!
//! ```sh
//! cargo run --example reduction_gallery
//! ```

use datalog_expressiveness::pebble::cnf::{clause, CnfFormula, Lit};
use datalog_expressiveness::reduction::{GPhi, Switch};
use std::fs;

fn main() {
    // Figure 1: the switch.
    let (graph, switch) = Switch::standalone();
    println!(
        "switch gadget: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    match Switch::verify_lemma_6_4() {
        Ok(()) => println!("Lemma 6.4 verified exhaustively over all passing-path pairs ✓"),
        Err(e) => panic!("Lemma 6.4 violated: {e}"),
    }
    let dir = std::path::Path::new("target/figures");
    fs::create_dir_all(dir).expect("create figure dir");
    let name_switch = |v: u32| -> Option<String> {
        for (label, node) in [
            ("a", switch.a()),
            ("b", switch.b()),
            ("c", switch.c()),
            ("d", switch.d()),
            ("e", switch.e()),
            ("f", switch.f()),
            ("g", switch.g()),
            ("h", switch.h()),
        ] {
            if node == v {
                return Some(label.to_string());
            }
        }
        for i in 1..=12u32 {
            if switch.plain(i) == v {
                return Some(i.to_string());
            }
            if switch.primed(i) == v {
                return Some(format!("{i}'"));
            }
        }
        None
    };
    fs::write(
        dir.join("figure1_switch.dot"),
        graph.to_dot("Figure 1: switch", &name_switch),
    )
    .expect("write dot");

    // Figure 5: G_phi for x1 ∨ x1 (satisfiable).
    let sat = CnfFormula::new(1, vec![clause([Lit::pos(0), Lit::pos(0)])]);
    let g_sat = GPhi::build(sat);
    println!(
        "\nG_(x1 ∨ x1): {} nodes, {} edges, {} switches — satisfiable, disjoint paths: {}",
        g_sat.graph.node_count(),
        g_sat.graph.edge_count(),
        g_sat.switch_count(),
        g_sat.has_two_disjoint_paths_brute()
    );
    let (p1, p2) = g_sat.witness_paths(&[true]).expect("x1 = true satisfies");
    g_sat.verify_witness(&p1, &p2).expect("witness checks");
    println!(
        "  witness: |s1→s2| = {} nodes, |s3→s4| = {} nodes",
        p1.len(),
        p2.len()
    );
    fs::write(dir.join("figure5_x1_or_x1.dot"), g_sat.to_dot("Figure 5")).expect("write dot");

    // Figure 6: G_phi for x1 ∧ x̄1 (unsatisfiable).
    let unsat = CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])]);
    let g_unsat = GPhi::build(unsat);
    println!(
        "\nG_(x1 ∧ ~x1): {} nodes, {} edges — unsatisfiable, disjoint paths: {}",
        g_unsat.graph.node_count(),
        g_unsat.graph.edge_count(),
        g_unsat.has_two_disjoint_paths_brute()
    );
    fs::write(
        dir.join("figure6_x1_and_not_x1.dot"),
        g_unsat.to_dot("Figure 6"),
    )
    .expect("write dot");
    println!("\nDOT files written to target/figures/ — render with `dot -Tsvg`");
}
