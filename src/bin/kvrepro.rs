//! `kvrepro` — command-line front end for the Kolaitis–Vardi reproduction.
//!
//! ```text
//! kvrepro run <program.dl> <graph.txt>      evaluate a Datalog(≠) program
//! kvrepro game <a.txt> <b.txt> <k>          solve the existential k-pebble game
//! kvrepro classify <edges>                  classify a pattern graph, e.g. "0-1,0-2"
//! kvrepro homeo <edges> <graph.txt>         solve a homeomorphism query
//! kvrepro gphi <cnf>                        build G_φ, e.g. "1,-2;2" = (x1∨¬x2)∧(x2)
//! ```
//!
//! Graph files use the `kv-structures` edge-list format (`nodes N`, one
//! `u v` pair per line, optional `distinguished …`). Programs use the
//! Datalog(≠) syntax of `kv-datalog` and see the graph as `E/2` with
//! constants `s1, …, sk` bound to the distinguished nodes.

use datalog_expressiveness::datalog::{parse_program, Evaluator};
use datalog_expressiveness::homeo::PatternSpec;
use datalog_expressiveness::pebble::{ExistentialGame, Winner};
use datalog_expressiveness::reduction::GPhi;
use datalog_expressiveness::structures::{parse_digraph, Digraph, HomKind, Vocabulary};
use datalog_expressiveness::{classify_and_report, Expressibility};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("game") => cmd_game(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("homeo") => cmd_homeo(&args[1..]),
        Some("gphi") => cmd_gphi(&args[1..]),
        _ => {
            eprintln!(
                "usage: kvrepro <run|game|classify|homeo|gphi> …\n\
                 \n  run <program.dl> <graph.txt>\
                 \n  game <a.txt> <b.txt> <k>\
                 \n  classify <edges e.g. 0-1,0-2>\
                 \n  homeo <edges> <graph.txt>\
                 \n  gphi <cnf e.g. '1,-2;2'>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn read_graph(path: &str) -> Result<Digraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_digraph(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let [program_path, graph_path] = args else {
        return Err("run needs <program.dl> <graph.txt>".into());
    };
    let graph = read_graph(graph_path)?;
    let vocab = Arc::new(Vocabulary::graph_with_constants(
        graph.distinguished().len(),
    ));
    let source =
        std::fs::read_to_string(program_path).map_err(|e| format!("{program_path}: {e}"))?;
    let program = parse_program(&source, Arc::clone(&vocab)).map_err(|e| e.to_string())?;
    let structure = graph.to_structure_with(vocab);
    let result = Evaluator::new(&program).run(&structure, Default::default());
    let goal = program.goal();
    println!(
        "fixpoint after {} stages; goal {} has {} tuples:",
        result.stage_count(),
        program.idb_name(goal),
        result.idb[goal.0].len()
    );
    for t in result.idb[goal.0].sorted() {
        let cells: Vec<String> = t.iter().map(u32::to_string).collect();
        println!("  ({})", cells.join(", "));
    }
    Ok(())
}

fn cmd_game(args: &[String]) -> Result<(), String> {
    let [a_path, b_path, k] = args else {
        return Err("game needs <a.txt> <b.txt> <k>".into());
    };
    let k: usize = k.parse().map_err(|e| format!("k: {e}"))?;
    let ga = read_graph(a_path)?;
    let gb = read_graph(b_path)?;
    if ga.distinguished().len() != gb.distinguished().len() {
        return Err("graphs must have the same number of distinguished nodes".into());
    }
    let vocab = Arc::new(Vocabulary::graph_with_constants(ga.distinguished().len()));
    let a = ga.to_structure_with(Arc::clone(&vocab));
    let b = gb.to_structure_with(vocab);
    let game = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
    println!(
        "existential {k}-pebble game on ({a_path} → {b_path}): {} wins",
        match game.winner() {
            Winner::Duplicator => "the Duplicator (Player II)",
            Winner::Spoiler => "the Spoiler (Player I)",
        }
    );
    println!(
        "arena: {} configurations, surviving family: {}",
        game.arena_size(),
        game.family_size()
    );
    println!(
        "hence A {} B  (every L^{k} sentence true in A {} true in B)",
        if game.winner() == Winner::Duplicator {
            "≼ᵏ"
        } else {
            "⋠ᵏ"
        },
        if game.winner() == Winner::Duplicator {
            "is"
        } else {
            "need not be"
        },
    );
    Ok(())
}

fn parse_pattern(spec: &str) -> Result<PatternSpec, String> {
    let mut edges = Vec::new();
    let mut max_node = 0usize;
    for part in spec.split(',') {
        let (i, j) = part
            .split_once('-')
            .ok_or_else(|| format!("bad edge {part:?}, expected i-j"))?;
        let i: usize = i.trim().parse().map_err(|e| format!("{part:?}: {e}"))?;
        let j: usize = j.trim().parse().map_err(|e| format!("{part:?}: {e}"))?;
        max_node = max_node.max(i).max(j);
        edges.push((i, j));
    }
    Ok(PatternSpec {
        node_count: max_node + 1,
        edges,
    })
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let [spec] = args else {
        return Err("classify needs <edges>, e.g. 0-1,0-2".into());
    };
    let pattern = parse_pattern(spec)?;
    let report = classify_and_report(&pattern);
    println!(
        "pattern: {} nodes, edges {:?}",
        pattern.node_count, pattern.edges
    );
    match report.verdict {
        Expressibility::ExpressibleEverywhere(program) => {
            println!("class C — Datalog(≠)-expressible on ALL inputs (Theorem 6.1).");
            println!("generated program:\n{program}");
        }
        Expressibility::InexpressibleGeneral {
            generator,
            acyclic_program,
        } => {
            println!("class C̄ (contains {generator:?}) —");
            println!("  • NOT expressible in L^ω on general inputs (Theorems 6.6/6.7);");
            println!("  • expressible on ACYCLIC inputs (Theorem 6.2).");
            println!("acyclic-input program:\n{acyclic_program}");
        }
        Expressibility::Degenerate => {
            println!("degenerate pattern (outside the FHW dichotomy).");
        }
    }
    Ok(())
}

fn cmd_homeo(args: &[String]) -> Result<(), String> {
    let [spec, graph_path] = args else {
        return Err("homeo needs <edges> <graph.txt>".into());
    };
    let pattern = parse_pattern(spec)?;
    let graph = read_graph(graph_path)?;
    if graph.distinguished().len() != pattern.node_count {
        return Err(format!(
            "graph must distinguish exactly {} nodes",
            pattern.node_count
        ));
    }
    let d = graph.distinguished().to_vec();
    let (answer, method) = datalog_expressiveness::homeo::solve(&pattern, &graph, &d);
    println!("H-subgraph homeomorphism: {answer} (method: {method:?})");
    Ok(())
}

fn parse_cnf(spec: &str) -> Result<datalog_expressiveness::pebble::CnfFormula, String> {
    use datalog_expressiveness::pebble::cnf::Lit;
    let mut clauses = Vec::new();
    let mut max_var = 0usize;
    for clause in spec.split(';') {
        let mut lits = Vec::new();
        for lit in clause.split(',') {
            let v: i64 = lit.trim().parse().map_err(|e| format!("{lit:?}: {e}"))?;
            if v == 0 {
                return Err("variables are 1-based; 0 is not a literal".into());
            }
            let var = (v.unsigned_abs() as usize) - 1;
            max_var = max_var.max(var);
            lits.push(if v > 0 { Lit::pos(var) } else { Lit::neg(var) });
        }
        clauses.push(lits);
    }
    Ok(datalog_expressiveness::pebble::CnfFormula::new(
        max_var + 1,
        clauses,
    ))
}

fn cmd_gphi(args: &[String]) -> Result<(), String> {
    let [spec] = args else {
        return Err("gphi needs <cnf>, e.g. '1,-2;2' = (x1∨¬x2)∧(x2)".into());
    };
    let formula = parse_cnf(spec)?;
    let sat = formula.brute_force_sat();
    println!("φ = {formula}");
    println!(
        "satisfiable: {}",
        match &sat {
            Some(model) => format!("yes, e.g. {model:?}"),
            None => "no".into(),
        }
    );
    let g = GPhi::build(formula);
    println!(
        "G_φ: {} nodes, {} edges, {} switches; s1..s4 = {}, {}, {}, {}",
        g.graph.node_count(),
        g.graph.edge_count(),
        g.switch_count(),
        g.s1,
        g.s2,
        g.s3,
        g.s4
    );
    if let Some(model) = sat {
        let (p1, p2) = g.witness_paths(&model).expect("model satisfies");
        g.verify_witness(&p1, &p2).expect("witness valid");
        println!(
            "disjoint-path witness from the model: |s1→s2| = {}, |s3→s4| = {}",
            p1.len(),
            p2.len()
        );
    }
    print!("{}", g.to_dot("G_phi"));
    Ok(())
}
