//! Subprocess harness for the kill-and-restart recovery suite
//! (`tests/recovery.rs`).
//!
//! The parent test spawns this binary to run a deterministic batch
//! stream against a [`DurableEngine`] directory, optionally arming a
//! seeded [`CrashPoint`] that aborts the process inside the commit
//! protocol (or sleeping between batches so the parent can SIGKILL it at
//! an arbitrary wall-clock moment). After the kill, the parent re-spawns
//! the harness in `dump` mode — which *recovers* the directory — and in
//! `clean` mode — which replays the same batch prefix through a fresh
//! in-memory engine — and asserts the two states are identical, tuple by
//! tuple and support count by support count.
//!
//! Everything the harness derives (fixture structure, batch stream) is a
//! pure function of `(program, seed)`, so parent and child never need to
//! exchange anything beyond this binary's CLI:
//!
//! ```text
//! recovery_harness run   --program tc --seed 7 --dir D --batches 8 \
//!     --checkpoint-every 3 --lowering generic [--crash after-wal:4] \
//!     [--sleep-ms 25] [--fresh]
//! recovery_harness dump  --program tc --seed 7 --dir D --lowering generic
//! recovery_harness clean --program tc --seed 7 --upto 5 --lowering generic
//! ```
//!
//! `run` continues from the recovered epoch, so re-running after a crash
//! is the "carry on after recovery" path. State dumps are canonical
//! (sorted) and end with `state-ok`, letting the parent distinguish a
//! clean dump from a crash mid-print.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{EvalOptions, Program};
use datalog_expressiveness::structures::generators::{random_dag, random_digraph};
use datalog_expressiveness::structures::{
    JoinLowering, PlannerMode, SplitMix64, Structure, Vocabulary,
};
use datalog_expressiveness::{
    CrashPoint, DurabilityOptions, DurableEngine, Fact, IncrementalEngine,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn program_by_name(name: &str) -> Option<Program> {
    Some(match name {
        "tc" => transitive_closure(),
        "avoiding" => avoiding_path(),
        "q_prime" => q_prime(),
        "q_kl" => q_kl(2, 1),
        "path_systems" => path_systems(),
        "tdp_acyclic" => two_disjoint_paths_acyclic(),
        "tdp_paper" => two_disjoint_paths_paper_rules(),
        _ => return None,
    })
}

/// One structure appropriate for each program's vocabulary (mirrors the
/// fixture in `tests/chaos.rs`).
fn fixture_for(program: &Program, seed: u64) -> Structure {
    let vocab = program.vocabulary();
    if vocab.constant_count() == 4 {
        let mut g = random_dag(8, 0.35, seed);
        g.set_distinguished(vec![0, 6, 1, 7]);
        g.to_structure_with(Arc::new(two_pairs_vocabulary()))
    } else if vocab.relation_count() == 2 {
        let mut v = Vocabulary::new();
        let r = v.add_relation("R", 3);
        let a = v.add_relation("A", 1);
        let mut s = Structure::new(Arc::new(v), 7);
        s.insert(a, &[0]);
        s.insert(a, &[1]);
        for &(x, y, z) in &[(2, 0, 1), (3, 2, 0), (4, 3, 2), (5, 6, 6), (6, 4, 5)] {
            s.insert(r, &[x, y, z]);
        }
        s
    } else {
        random_digraph(7, 0.3, seed).to_structure()
    }
}

/// The deterministic batch stream: batch 1 asserts the fixture's facts,
/// later batches mix inserts of random tuples, retracts of live facts,
/// and the occasional phantom retract. A pure function of
/// `(program, seed, count)` — the run/dump/clean modes all derive the
/// identical stream.
fn batch_stream(
    program: &Program,
    template: &Structure,
    seed: u64,
    count: usize,
) -> Vec<(Vec<Fact>, Vec<Fact>)> {
    let vocab = program.vocabulary();
    let universe = template.universe_size() as u32;
    let rels: Vec<_> = vocab.relations().collect();
    let mut batches = Vec::with_capacity(count);
    let mut initial: Vec<Fact> = Vec::new();
    for &r in &rels {
        for t in template.relation(r).iter() {
            initial.push((r, t.to_vec()));
        }
    }
    // The generator mirrors the engine's multiset semantics locally so
    // retract targets are (usually) live without consulting the engine.
    let mut live: Vec<Fact> = initial.clone();
    batches.push((initial, Vec::new()));
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xD1FF_0000);
    while batches.len() < count {
        let mut inserts = Vec::new();
        let mut retracts = Vec::new();
        for _ in 0..4 {
            let roll = rng.next_u64() % 10;
            if roll < 6 || live.is_empty() {
                let r = rels[rng.gen_range(0..rels.len())];
                let t: Vec<u32> = (0..vocab.arity(r))
                    .map(|_| rng.gen_range(0..universe))
                    .collect();
                live.push((r, t.clone()));
                inserts.push((r, t));
            } else if roll < 9 {
                let i = rng.gen_range(0..live.len());
                retracts.push(live.swap_remove(i));
            } else {
                // Phantom retract: likely not live — the engine must
                // treat it as a no-op.
                let r = rels[rng.gen_range(0..rels.len())];
                let t: Vec<u32> = (0..vocab.arity(r))
                    .map(|_| rng.gen_range(0..universe))
                    .collect();
                retracts.push((r, t));
            }
        }
        batches.push((inserts, retracts));
    }
    batches
}

/// Canonical state dump: epoch, sorted live EDB facts with support
/// counts, sorted live IDB facts. Recovered ≡ clean is asserted as
/// string equality of this output.
fn dump_state(engine: &IncrementalEngine, program: &Program) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "epoch {}", engine.epoch());
    let vocab = program.vocabulary();
    for r in vocab.relations() {
        let store = engine.edb_store(r);
        let mut rows: Vec<(Vec<u32>, u32)> = store
            .live_iter()
            .map(|t| {
                let sup = store.lookup(t).map(|id| store.support(id)).unwrap_or(0);
                (t.to_vec(), sup)
            })
            .collect();
        rows.sort();
        for (t, sup) in rows {
            let _ = writeln!(out, "edb {} {t:?} x{sup}", vocab.relation_name(r));
        }
    }
    for i in 0..program.idb_count() {
        let store = engine.idb_store(datalog_expressiveness::datalog::IdbId(i));
        let mut rows: Vec<Vec<u32>> = store.live_iter().map(|t| t.to_vec()).collect();
        rows.sort();
        for t in rows {
            let _ = writeln!(
                out,
                "idb {} {t:?}",
                program.idb_name(datalog_expressiveness::datalog::IdbId(i))
            );
        }
    }
    out.push_str("state-ok\n");
    out
}

struct Args {
    mode: String,
    program: String,
    seed: u64,
    dir: PathBuf,
    batches: usize,
    checkpoint_every: u64,
    lowering: JoinLowering,
    crash: Option<CrashPoint>,
    sleep_ms: u64,
    upto: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let mode = argv.next().ok_or("missing mode (run|dump|clean)")?;
    let mut args = Args {
        mode,
        program: "tc".to_string(),
        seed: 1,
        dir: PathBuf::from("."),
        batches: 8,
        checkpoint_every: 3,
        lowering: JoinLowering::Auto,
        crash: None,
        sleep_ms: 0,
        upto: 0,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--program" => args.program = value()?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--dir" => args.dir = PathBuf::from(value()?),
            "--batches" => {
                args.batches = value()?.parse().map_err(|e| format!("--batches: {e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--lowering" => {
                args.lowering = match value()?.as_str() {
                    "auto" => JoinLowering::Auto,
                    "binary" => JoinLowering::Binary,
                    "generic" => JoinLowering::Generic,
                    other => return Err(format!("unknown lowering {other}")),
                }
            }
            "--crash" => {
                let spec = value()?;
                args.crash =
                    Some(CrashPoint::parse(&spec).ok_or_else(|| format!("bad crash spec {spec}"))?)
            }
            "--sleep-ms" => {
                args.sleep_ms = value()?.parse().map_err(|e| format!("--sleep-ms: {e}"))?
            }
            "--upto" => args.upto = value()?.parse().map_err(|e| format!("--upto: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn eval_options(lowering: JoinLowering) -> EvalOptions {
    // The cost-based planner is required for non-default lowerings (the
    // textual planner ignores them), mirroring the chaos suite.
    match lowering {
        JoinLowering::Auto => EvalOptions::default(),
        other => EvalOptions::default()
            .with_planner(PlannerMode::CostBased)
            .with_lowering(other),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("recovery_harness: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(program) = program_by_name(&args.program) else {
        eprintln!("recovery_harness: unknown program {}", args.program);
        return ExitCode::from(2);
    };
    let template = fixture_for(&program, args.seed);
    let options = eval_options(args.lowering);
    let batches = batch_stream(&program, &template, args.seed, args.batches + 1);

    match args.mode.as_str() {
        "run" => {
            let durability = DurabilityOptions {
                checkpoint_every: args.checkpoint_every,
                crash: args.crash,
                ..DurabilityOptions::default()
            };
            let mut engine =
                match DurableEngine::open(&program, &template, options, &args.dir, durability) {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("recovery_harness: open failed: {e}");
                        return ExitCode::from(3);
                    }
                };
            println!("recovered-epoch {}", engine.epoch());
            while engine.epoch() < args.batches as u64 {
                let (ins, ret) = &batches[engine.epoch() as usize];
                if args.sleep_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(args.sleep_ms));
                }
                if let Err(e) = engine.apply_batch(ins, ret) {
                    eprintln!("recovery_harness: batch failed: {e}");
                    return ExitCode::from(3);
                }
            }
            println!("final-epoch {}", engine.epoch());
            ExitCode::SUCCESS
        }
        "dump" => {
            let t0 = std::time::Instant::now();
            let engine = match DurableEngine::open(
                &program,
                &template,
                options,
                &args.dir,
                DurabilityOptions {
                    checkpoint_every: 0, // recovery only: do not rewrite anything
                    ..DurabilityOptions::default()
                },
            ) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("recovery_harness: recovery failed: {e}");
                    return ExitCode::from(3);
                }
            };
            let recovery_us = t0.elapsed().as_micros();
            let r = engine.recovery();
            println!(
                "recovery manifest={} ckpt_epoch={} replayed={} torn={} us={recovery_us}",
                r.manifest_found, r.checkpoint_epoch, r.replayed_batches, r.torn_wal_truncated
            );
            print!("{}", dump_state(engine.engine(), &program));
            ExitCode::SUCCESS
        }
        "clean" => {
            let mut engine = IncrementalEngine::new(&program, &template, options);
            for (ins, ret) in batches.iter().take(args.upto as usize) {
                engine.apply_batch(ins, ret);
            }
            print!("{}", dump_state(&engine, &program));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("recovery_harness: unknown mode {other}");
            ExitCode::from(2)
        }
    }
}
