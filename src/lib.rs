//! Root facade for the Kolaitis–Vardi (PODS 1990) reproduction.
//!
//! Re-exports the full public API from [`kv_core`]; see the README for a
//! tour and `examples/` for runnable entry points.

#![warn(missing_docs)]

pub use kv_core::*;
