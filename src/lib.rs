//! Root facade for the Kolaitis–Vardi (PODS 1990) reproduction.
//!
//! Re-exports the full public API from [`kv_core`], plus the multi-tenant
//! serving layer as [`service`]; see the README for a tour and
//! `examples/` for runnable entry points.

#![warn(missing_docs)]

pub use kv_core::*;
pub use kv_service as service;
