//! Chaos and differential tests for the engine-wide governance layer.
//!
//! Two families of guarantees are exercised here, across every governed
//! solver in the workspace:
//!
//! 1. **Differential**: each `try_*` entry point under an unlimited
//!    governor produces exactly the result of its plain counterpart — for
//!    every program in `kv_datalog::programs`, every pebble game family
//!    at `k ∈ {1, 2, 3}`, every homeomorphism dispatch method, the lfp
//!    machinery, the reduction builders, and the flow/fan kernels.
//! 2. **Chaos**: under seeded fault injection ([`chaos::injection`]
//!    arms exactly one of step-budget / cancellation / expired-deadline
//!    per point), no solver panics, checkpoint counters are monotone,
//!    and `resume(interrupt(x)) ≡ run(x)` — stage by stage for Datalog,
//!    verdict by verdict for the games.
//!
//! The injection-point counts below sum to 174 distinct seeded points
//! (24 Datalog + 12 existential game + 8 CNF game + 8 acyclic game +
//! 8 lfp + 6 stage comparison + 8 homeomorphism + 8 reduction + 4 flow +
//! 12 lazy arena + 8 seeded magic evaluation + 16 cost-based sequential +
//! 8 cost-based parallel + 12 generic-join variable loop + 8 batched
//! block loop + 24 incremental maintenance), satisfying the ≥64-point
//! acceptance bar; every point runs in every `cargo test` invocation. The
//! cost-based points trip faults inside the SCC stratum scheduler
//! (stage-boundary checks), the planned join kernels (per-probe step
//! charges), the batched scan's per-block charges, and the generic join's
//! per-value variable-loop charges. The maintenance points trip faults in
//! both phases of an incremental batch — the read-only deletion planner's
//! per-probe charges and the insertion pass's stage-boundary and
//! per-stage tuple/byte charges — and assert that an interrupted batch,
//! resumed, lands counter-exactly on the uninterrupted batch.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{EvalOptions, EvalResult, Evaluator, PlannerMode, Program};
use datalog_expressiveness::graphalg::{disjoint_fan, try_disjoint_fan};
use datalog_expressiveness::homeo;
use datalog_expressiveness::logic::{
    compare_stages_on_shared_store, compute_lfp, program_to_lfp, resume_compare_stages, resume_lfp,
    try_compare_stages_on_shared_store, try_compute_lfp, FpEnv, FpFormula,
};
use datalog_expressiveness::pebble::{
    AcyclicGame, CnfFormula, CnfGame, ExistentialGame, PatternSpec,
};
use datalog_expressiveness::reduction::thm66::Thm66Witness;
use datalog_expressiveness::reduction::GPhi;
use datalog_expressiveness::structures::generators::{random_dag, random_digraph};
use datalog_expressiveness::structures::govern::chaos;
use datalog_expressiveness::structures::{
    Digraph, EvalStats, Governor, HomKind, Structure, Vocabulary,
};
use std::collections::HashMap;
use std::sync::Arc;

/// One structure appropriate for each program's vocabulary.
fn fixture_for(program: &Program, seed: u64) -> Structure {
    let vocab = program.vocabulary();
    if vocab.constant_count() == 4 {
        // The Theorem 6.2 two-pairs vocabulary: a random DAG with the
        // four distinguished nodes bound.
        let mut g = random_dag(8, 0.35, seed);
        g.set_distinguished(vec![0, 6, 1, 7]);
        g.to_structure_with(Arc::new(two_pairs_vocabulary()))
    } else if vocab.relation_count() == 2 {
        // Path systems {R/3, A/1}: a small derivability instance.
        let mut v = Vocabulary::new();
        let r = v.add_relation("R", 3);
        let a = v.add_relation("A", 1);
        let mut s = Structure::new(Arc::new(v), 7);
        s.insert(a, &[0]);
        s.insert(a, &[1]);
        for &(x, y, z) in &[(2, 0, 1), (3, 2, 0), (4, 3, 2), (5, 6, 6), (6, 4, 5)] {
            s.insert(r, &[x, y, z]);
        }
        s
    } else {
        random_digraph(7, 0.3, seed).to_structure()
    }
}

fn all_programs() -> Vec<Program> {
    vec![
        transitive_closure(),
        avoiding_path(),
        q_prime(),
        q_kl(2, 1),
        path_systems(),
        two_disjoint_paths_acyclic(),
        two_disjoint_paths_paper_rules(),
    ]
}

fn assert_results_identical(plain: &EvalResult, governed: &EvalResult, label: &str) {
    assert!(governed.same_stages(plain), "{label}: stages differ");
    assert_eq!(governed.converged, plain.converged, "{label}: convergence");
    assert_eq!(governed.eval_stats, plain.eval_stats, "{label}: eval stats");
    for (i, (a, b)) in plain.idb.iter().zip(&governed.idb).enumerate() {
        assert_eq!(a.len(), b.len(), "{label}: IDB {i} size");
        assert!(a.iter().all(|t| b.contains(t)), "{label}: IDB {i} tuples");
    }
}

fn stats_monotone(prefix: &EvalStats, total: &EvalStats) -> bool {
    prefix.tuples_interned <= total.tuples_interned
        && prefix.duplicate_derivations <= total.duplicate_derivations
        && prefix.join_probes <= total.join_probes
        && prefix.stages <= total.stages
        && prefix.block_probes <= total.block_probes
        && prefix.gallop_steps <= total.gallop_steps
        && prefix.wcoj_rules <= total.wcoj_rules
}

// ---------------------------------------------------------------------
// Differential: unlimited governor ≡ plain, for every solver.
// ---------------------------------------------------------------------

#[test]
fn datalog_unlimited_governor_matches_plain_on_every_program() {
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 4_100 + pi as u64);
        let eval = Evaluator::new(program);
        let plain = eval.run(&s, chaos_options());
        let governed = eval
            .try_run_governed(&s, chaos_options(), &Governor::unlimited())
            .unwrap_or_else(|e| panic!("program {pi}: unlimited interrupt: {e}"));
        assert_results_identical(&plain, &governed, &format!("program {pi}"));
    }
}

#[test]
fn pebble_games_unlimited_governor_matches_plain_for_k_1_2_3() {
    let formula = CnfFormula::complete(2);
    for k in 1..=3usize {
        for seed in 0..3u64 {
            let a = random_digraph(5, 0.3, 5_000 + seed).to_structure();
            let b = random_digraph(5, 0.3, 6_000 + seed).to_structure();
            let plain = ExistentialGame::solve(&a, &b, k, HomKind::Homomorphism);
            let governed = ExistentialGame::try_solve(
                &a,
                &b,
                k,
                HomKind::Homomorphism,
                &Governor::unlimited(),
            )
            .expect("unlimited");
            assert_eq!(plain.winner(), governed.winner(), "game k={k} seed={seed}");
        }
        let plain = CnfGame::solve(&formula, k);
        let governed = CnfGame::try_solve(&formula, k, &Governor::unlimited()).expect("unlimited");
        assert_eq!(plain.winner(), governed.winner(), "cnf k={k}");
    }
    let pattern = PatternSpec::two_disjoint_edges();
    for seed in 0..3u64 {
        let g = random_dag(8, 0.3, 7_000 + seed);
        let d = [0u32, 6, 1, 7];
        let plain = AcyclicGame::solve(pattern.clone(), &g, &d);
        let governed = AcyclicGame::try_solve(pattern.clone(), &g, &d, &Governor::unlimited())
            .expect("unlimited");
        assert_eq!(plain.winner(), governed.winner(), "acyclic seed={seed}");
    }
}

#[test]
fn homeomorphism_unlimited_governor_matches_plain_on_every_method() {
    for (pattern, g, d) in dispatch_cases() {
        let plain = homeo::solve(&pattern, &g, &d);
        let governed =
            homeo::try_solve(&pattern, &g, &d, &Governor::unlimited()).expect("unlimited");
        assert_eq!(plain, governed);
    }
}

#[test]
fn reduction_builders_unlimited_governor_matches_plain() {
    let plain = GPhi::build(CnfFormula::complete(2));
    let governed =
        GPhi::try_build(CnfFormula::complete(2), &Governor::unlimited()).expect("unlimited");
    assert_eq!(plain.graph.node_count(), governed.graph.node_count());
    assert_eq!(plain.graph.edge_count(), governed.graph.edge_count());
    let w_plain = Thm66Witness::new(2);
    let w_gov = Thm66Witness::try_new(2, &Governor::unlimited()).expect("unlimited");
    assert_eq!(
        w_plain.gphi.graph.node_count(),
        w_gov.gphi.graph.node_count()
    );
}

// ---------------------------------------------------------------------
// Chaos: seeded fault injection, resume ≡ run, no panics, monotone
// counters. Each solver consumes a disjoint block of injection indices.
// ---------------------------------------------------------------------

/// Seed shared by every chaos schedule. CI re-rolls the whole matrix by
/// setting `KV_CHAOS_SEED`; locally the fixed default keeps failures
/// reproducible without any environment setup.
fn chaos_seed() -> u64 {
    std::env::var("KV_CHAOS_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0x4b56_1990)
}

/// Worker-count axis for the sharded evaluator. CI re-runs the Datalog
/// chaos points with `KV_CHAOS_SHARDS` set (W ∈ {1, 4}) so interrupts
/// and resumes are driven through the hash-partition exchange seams
/// too; unset keeps the single-store path. Stage identity is
/// shard-count-free, so every assertion below holds unchanged.
fn chaos_shards() -> Option<usize> {
    std::env::var("KV_CHAOS_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

/// Default options with the chaos shards axis applied.
fn chaos_options() -> EvalOptions {
    EvalOptions::default().with_shards(chaos_shards())
}

#[test]
fn chaos_datalog_interrupt_resume_equals_run() {
    let programs = all_programs();
    for index in 0..24usize {
        let program = &programs[index % programs.len()];
        let s = fixture_for(program, 4_100 + (index % programs.len()) as u64);
        let eval = Evaluator::new(program);
        let baseline = eval.run(&s, chaos_options());
        let (label, gov) = chaos::injection(chaos_seed(), index, 60);
        match eval.try_run_governed(&s, chaos_options(), &gov) {
            Ok(done) => assert_results_identical(&baseline, &done, &label),
            Err(interrupted) => {
                let cp_stats = interrupted.checkpoint.eval_stats();
                assert!(
                    stats_monotone(&cp_stats, &baseline.eval_stats),
                    "{label}: checkpoint stats exceed the full run"
                );
                let resumed = eval
                    .resume(
                        &s,
                        chaos_options(),
                        &Governor::unlimited(),
                        interrupted.checkpoint,
                    )
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"));
                assert!(
                    stats_monotone(&cp_stats, &resumed.eval_stats),
                    "{label}: stats regressed across resume"
                );
                assert_results_identical(&baseline, &resumed, &label);
            }
        }
    }
}

#[test]
fn chaos_existential_game_interrupt_resume_equals_run() {
    for index in 0..12usize {
        let seed = 5_000 + (index % 3) as u64;
        let a = random_digraph(5, 0.3, seed).to_structure();
        let b = random_digraph(5, 0.3, 1_000 + seed).to_structure();
        let k = 1 + index % 3;
        let baseline = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne).winner();
        let (label, gov) = chaos::injection(chaos_seed(), 100 + index, 80);
        let game = match ExistentialGame::try_solve(&a, &b, k, HomKind::OneToOne, &gov) {
            Ok(game) => game,
            Err(interrupted) => ExistentialGame::resume(
                &a,
                &b,
                k,
                HomKind::OneToOne,
                interrupted.checkpoint,
                &Governor::unlimited(),
            )
            .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}")),
        };
        assert_eq!(game.winner(), baseline, "{label} (k={k}, seed={seed})");
    }
}

#[test]
fn chaos_cnf_game_interrupt_resume_equals_run() {
    let formula = CnfFormula::complete(2);
    for index in 0..8usize {
        let k = 2 + index % 2;
        let baseline = CnfGame::solve(&formula, k).winner();
        let (label, gov) = chaos::injection(chaos_seed(), 200 + index, 60);
        let game = match CnfGame::try_solve(&formula, k, &gov) {
            Ok(game) => game,
            Err(interrupted) => {
                CnfGame::resume(&formula, k, interrupted.checkpoint, &Governor::unlimited())
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"))
            }
        };
        assert_eq!(game.winner(), baseline, "{label} (k={k})");
    }
}

#[test]
fn chaos_acyclic_game_interrupt_resume_equals_run() {
    let pattern = PatternSpec::two_disjoint_edges();
    for index in 0..8usize {
        let g = random_dag(8, 0.3, 7_000 + (index % 4) as u64);
        let d = [0u32, 6, 1, 7];
        let baseline = AcyclicGame::solve(pattern.clone(), &g, &d).winner();
        let (label, gov) = chaos::injection(chaos_seed(), 300 + index, 60);
        let game = match AcyclicGame::try_solve(pattern.clone(), &g, &d, &gov) {
            Ok(game) => game,
            Err(interrupted) => AcyclicGame::resume(
                pattern.clone(),
                &g,
                &d,
                interrupted.checkpoint,
                &Governor::unlimited(),
            )
            .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}")),
        };
        assert_eq!(game.winner(), baseline, "{label}");
    }
}

#[test]
fn chaos_lfp_interrupt_resume_equals_run() {
    let FpFormula::Lfp {
        rel, vars, body, ..
    } = program_to_lfp(&transitive_closure())
    else {
        panic!("program_to_lfp returns an lfp binder");
    };
    let s = random_digraph(6, 0.3, 19_000).to_structure();
    let mut env = FpEnv {
        vars: Vec::new(),
        rels: HashMap::new(),
    };
    env.vars.resize(16, None);
    let baseline = compute_lfp(rel, &vars, &body, &s, &env);
    for index in 0..8usize {
        let (label, gov) = chaos::injection(chaos_seed(), 400 + index, 50);
        let store = match try_compute_lfp(rel, &vars, &body, &s, &env, &gov) {
            Ok(store) => store,
            Err(interrupted) => {
                assert!(
                    interrupted.checkpoint.tuples() <= baseline.len(),
                    "{label}: checkpoint overshoots the fixpoint"
                );
                resume_lfp(
                    rel,
                    &vars,
                    &body,
                    &s,
                    &env,
                    interrupted.checkpoint,
                    &Governor::unlimited(),
                )
                .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"))
            }
        };
        assert!(store.set_eq(&baseline), "{label}: fixpoint differs");
    }
}

#[test]
fn chaos_stage_comparison_interrupt_resume_equals_run() {
    let program = transitive_closure();
    let s = random_digraph(5, 0.35, 21_000).to_structure();
    let baseline = compare_stages_on_shared_store(&program, &s, None);
    for index in 0..6usize {
        let (label, gov) = chaos::injection(chaos_seed(), 500 + index, 50);
        let report = match try_compare_stages_on_shared_store(&program, &s, None, &gov) {
            Ok(report) => report,
            Err(interrupted) => resume_compare_stages(
                &program,
                &s,
                None,
                interrupted.checkpoint,
                &Governor::unlimited(),
            )
            .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}")),
        };
        assert_eq!(report.identical, baseline.identical, "{label}");
        assert_eq!(report.stages.len(), baseline.stages.len(), "{label}");
    }
}

fn dispatch_cases() -> Vec<(PatternSpec, Digraph, Vec<u32>)> {
    vec![
        // Class C → flow solver.
        (
            PatternSpec {
                node_count: 3,
                edges: vec![(0, 1), (0, 2)],
            },
            random_digraph(7, 0.3, 11),
            vec![0, 1, 2],
        ),
        // DAG input → acyclic game.
        (
            PatternSpec::two_disjoint_edges(),
            random_dag(8, 0.3, 12),
            vec![0, 6, 1, 7],
        ),
        // Cyclic input, pattern in C̄ → brute force.
        (
            PatternSpec::two_disjoint_edges(),
            {
                let mut g = random_digraph(7, 0.3, 13);
                g.add_edge(5, 0);
                g.add_edge(0, 5);
                g
            },
            vec![0, 1, 2, 3],
        ),
    ]
}

#[test]
fn chaos_homeomorphism_interrupt_restart_equals_run() {
    // The dispatcher's flow and brute-force methods are pure and use the
    // restart-resume contract: after an interrupt, re-calling with a
    // relaxed governor recomputes from scratch. The acyclic-game method
    // drops its checkpoint at this level (documented), so restart is the
    // uniform recovery for all three.
    let cases = dispatch_cases();
    for index in 0..8usize {
        let (pattern, g, d) = &cases[index % cases.len()];
        let baseline = homeo::solve(pattern, g, d);
        let (label, gov) = chaos::injection(chaos_seed(), 600 + index, 40);
        let outcome = match homeo::try_solve(pattern, g, d, &gov) {
            Ok(v) => v,
            Err(_) => homeo::try_solve(pattern, g, d, &Governor::unlimited())
                .unwrap_or_else(|e| panic!("{label}: unlimited restart interrupted: {e}")),
        };
        assert_eq!(outcome, baseline, "{label}");
    }
}

#[test]
fn chaos_reduction_builders_interrupt_restart_equals_run() {
    let baseline = GPhi::build(CnfFormula::complete(2));
    for index in 0..8usize {
        let (label, gov) = chaos::injection(chaos_seed(), 700 + index, 40);
        let built = match GPhi::try_build(CnfFormula::complete(2), &gov) {
            Ok(g) => g,
            Err(_) => GPhi::try_build(CnfFormula::complete(2), &Governor::unlimited())
                .unwrap_or_else(|e| panic!("{label}: unlimited restart interrupted: {e}")),
        };
        assert_eq!(
            built.graph.node_count(),
            baseline.graph.node_count(),
            "{label}"
        );
        assert_eq!(
            built.graph.edge_count(),
            baseline.graph.edge_count(),
            "{label}"
        );
    }
}

#[test]
fn chaos_disjoint_fan_interrupt_restart_equals_run() {
    // The fan kernel is pure: on interrupt, re-calling with a relaxed
    // governor recomputes from scratch (underneath, Edmonds–Karp treats
    // the residual capacities as its checkpoint, exercised in the
    // kv-graphalg unit tests; here we verify the restart contract).
    let g = random_digraph(9, 0.35, 31_000);
    let baseline = disjoint_fan(&g, 0, &[7, 8], &[3]);
    for index in 0..4usize {
        let (label, gov) = chaos::injection(chaos_seed(), 800 + index, 30);
        let fan = match try_disjoint_fan(&g, 0, &[7, 8], &[3], &gov) {
            Ok(fan) => fan,
            Err(_) => try_disjoint_fan(&g, 0, &[7, 8], &[3], &Governor::unlimited())
                .unwrap_or_else(|e| panic!("{label}: unlimited restart interrupted: {e}")),
        };
        assert_eq!(fan, baseline, "{label}");
    }
}

#[test]
fn chaos_lazy_arena_interrupt_resume_equals_run() {
    // The demand-driven lazy solver checkpoints through the same
    // `ArenaCheckpoint` as the eager build: resume must land on the
    // eager solver's verdict no matter where the fault trips it.
    for index in 0..12usize {
        let seed = 5_000 + (index % 3) as u64;
        let a = random_digraph(5, 0.3, seed).to_structure();
        let b = random_digraph(5, 0.3, 1_000 + seed).to_structure();
        let k = 1 + index % 3;
        let baseline = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne).winner();
        let (label, gov) = chaos::injection(chaos_seed(), 900 + index, 60);
        let game = match ExistentialGame::try_solve_lazy(&a, &b, k, HomKind::OneToOne, &gov) {
            Ok(game) => game,
            Err(interrupted) => ExistentialGame::resume(
                &a,
                &b,
                k,
                HomKind::OneToOne,
                interrupted.checkpoint,
                &Governor::unlimited(),
            )
            .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}")),
        };
        assert_eq!(game.winner(), baseline, "{label} (k={k}, seed={seed})");
    }
}

#[test]
fn chaos_planned_datalog_interrupt_resume_equals_run() {
    // Cost-based compilation under fault injection: the step budget trips
    // inside the planned join kernels (every probe is charged) and the
    // cancellation/deadline checks trip at the SCC scheduler's stage
    // boundaries. Sequential planned evaluation is deterministic, so
    // resume must match the straight run *including* engine counters, and
    // the checkpoint's active-SCC record must stay inside the program's
    // component range.
    let programs = all_programs();
    let opts = EvalOptions {
        parallel: false,
        ..EvalOptions::default()
    }
    .with_planner(PlannerMode::CostBased);
    for index in 0..16usize {
        let program = &programs[index % programs.len()];
        let s = fixture_for(program, 4_100 + (index % programs.len()) as u64);
        let eval = Evaluator::new(program);
        let baseline = eval.run(&s, opts);
        let scc_count = eval.compiled().scc_count();
        let (label, gov) = chaos::injection(chaos_seed(), 1_100 + index, 60);
        match eval.try_run_governed(&s, opts, &gov) {
            Ok(done) => assert_results_identical(&baseline, &done, &label),
            Err(interrupted) => {
                let cp_stats = interrupted.checkpoint.eval_stats();
                assert!(
                    stats_monotone(&cp_stats, &baseline.eval_stats),
                    "{label}: checkpoint stats exceed the full planned run"
                );
                assert!(
                    interrupted
                        .checkpoint
                        .active_sccs()
                        .iter()
                        .all(|&c| (c as usize) < scc_count),
                    "{label}: checkpoint records an out-of-range SCC"
                );
                let resumed = eval
                    .resume(&s, opts, &Governor::unlimited(), interrupted.checkpoint)
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"));
                assert_results_identical(&baseline, &resumed, &label);
            }
        }
    }
}

#[test]
fn chaos_planned_parallel_interrupt_resume_matches_stages() {
    // The same contract under rule-variant parallelism. Duplicate
    // suppression is scratch-local there, so counters may legitimately
    // differ between runs; the guarantee is stage identity and the same
    // fixpoint.
    let programs = all_programs();
    let opts = chaos_options().with_planner(PlannerMode::CostBased);
    for index in 0..8usize {
        let program = &programs[index % programs.len()];
        let s = fixture_for(program, 4_100 + (index % programs.len()) as u64);
        let eval = Evaluator::new(program);
        let baseline = eval.run(&s, opts);
        let (label, gov) = chaos::injection(chaos_seed(), 1_200 + index, 60);
        let run = match eval.try_run_governed(&s, opts, &gov) {
            Ok(done) => done,
            Err(interrupted) => eval
                .resume(&s, opts, &Governor::unlimited(), interrupted.checkpoint)
                .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}")),
        };
        assert!(run.same_stages(&baseline), "{label}: stages differ");
        assert_eq!(run.converged, baseline.converged, "{label}");
        for (i, (a, b)) in baseline.idb.iter().zip(&run.idb).enumerate() {
            assert_eq!(a.len(), b.len(), "{label}: IDB {i} size");
            assert!(a.iter().all(|t| b.contains(t)), "{label}: IDB {i} tuples");
        }
    }
}

#[test]
fn chaos_generic_join_interrupt_resume_equals_run() {
    // Fault injection inside the generic-join variable loop: on the cyclic
    // triangle body the Auto lowering engages wcoj, whose per-value and
    // per-refinement charges give the governor interruption points between
    // variable bindings. Sequential evaluation is deterministic, so resume
    // must match the straight run including the new batched counters, and
    // every checkpoint must stay monotone in them.
    use datalog_expressiveness::datalog::programs::triangles;
    let program = triangles();
    let opts = EvalOptions {
        parallel: false,
        ..EvalOptions::default()
    }
    .with_planner(PlannerMode::CostBased);
    for index in 0..12usize {
        let s = random_digraph(10, 0.3, 33_000 + (index % 4) as u64).to_structure();
        let eval = Evaluator::new(&program);
        let baseline = eval.run(&s, opts);
        assert!(
            baseline.eval_stats.wcoj_rules > 0,
            "triangles must take the generic lowering"
        );
        let (label, gov) = chaos::injection(chaos_seed(), 1_300 + index, 50);
        match eval.try_run_governed(&s, opts, &gov) {
            Ok(done) => assert_results_identical(&baseline, &done, &label),
            Err(interrupted) => {
                let cp_stats = interrupted.checkpoint.eval_stats();
                assert!(
                    stats_monotone(&cp_stats, &baseline.eval_stats),
                    "{label}: checkpoint stats exceed the full generic run"
                );
                let resumed = eval
                    .resume(&s, opts, &Governor::unlimited(), interrupted.checkpoint)
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"));
                assert_results_identical(&baseline, &resumed, &label);
            }
        }
    }
}

#[test]
fn chaos_batched_block_loop_interrupt_resume_equals_run() {
    // Fault injection inside the batched block loop: a transitive closure
    // over ~70 edges makes every scan span multiple SCAN_BLOCK-sized
    // columnar blocks, each charging the governor, so the step budget can
    // trip between blocks of the same scan. Resume must land on the
    // straight run exactly (sequential planned runs are deterministic).
    let program = transitive_closure();
    let opts = EvalOptions {
        parallel: false,
        ..EvalOptions::default()
    }
    .with_planner(PlannerMode::CostBased);
    for index in 0..8usize {
        let s = random_digraph(30, 0.08, 7 + (index % 2) as u64).to_structure();
        let eval = Evaluator::new(&program);
        let baseline = eval.run(&s, opts);
        let (label, gov) = chaos::injection(chaos_seed(), 1_400 + index, 70);
        match eval.try_run_governed(&s, opts, &gov) {
            Ok(done) => assert_results_identical(&baseline, &done, &label),
            Err(interrupted) => {
                let cp_stats = interrupted.checkpoint.eval_stats();
                assert!(
                    stats_monotone(&cp_stats, &baseline.eval_stats),
                    "{label}: checkpoint stats exceed the full batched run"
                );
                let resumed = eval
                    .resume(&s, opts, &Governor::unlimited(), interrupted.checkpoint)
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"));
                assert_results_identical(&baseline, &resumed, &label);
            }
        }
    }
}

#[test]
fn chaos_seeded_magic_interrupt_resume_equals_run() {
    // The magic-set demand path checkpoints through the ordinary
    // `EvalCheckpoint` (seeds are interned as stage 0 before the first
    // governed stage): resume must reproduce the uninterrupted seeded
    // run's goal relation exactly.
    use datalog_expressiveness::datalog::{BindingPattern, MagicProgram};
    let programs = [transitive_closure(), avoiding_path()];
    let queries: [&[u32]; 2] = [&[0, 6], &[0, 6, 3]];
    for index in 0..8usize {
        let program = &programs[index % 2];
        let query = queries[index % 2];
        let s = random_digraph(8, 0.3, 32_000 + (index % 4) as u64).to_structure();
        let magic = MagicProgram::rewrite(program, &BindingPattern::all_bound(query.len()))
            .expect("bench programs rewrite");
        let compiled = magic.compile();
        let seeds = vec![(magic.magic_goal(), magic.seed(query))];
        let baseline = compiled
            .try_run_seeded(&s, chaos_options(), &seeds)
            .expect("no limits configured");
        let (label, gov) = chaos::injection(chaos_seed(), 1_000 + index, 60);
        let run = match compiled.try_run_governed_seeded(&s, chaos_options(), &gov, &seeds) {
            Ok(done) => done,
            Err(interrupted) => {
                let cp_stats = interrupted.checkpoint.eval_stats();
                assert!(
                    stats_monotone(&cp_stats, &baseline.eval_stats),
                    "{label}: checkpoint stats exceed the full seeded run"
                );
                compiled
                    .resume(
                        &s,
                        chaos_options(),
                        &Governor::unlimited(),
                        interrupted.checkpoint,
                    )
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"))
            }
        };
        assert_results_identical(&baseline, &run, &label);
    }
}

#[test]
fn chaos_incremental_maintenance_interrupt_resume_equals_batch() {
    // Fault injection across both phases of an incremental maintenance
    // batch. Each point builds an engine from a program fixture, then
    // applies one mutation batch (retract a third of the EDB, insert
    // rotated variants of a quarter of it — collisions exercise multiset
    // support) under an injected governor. The deletion phase commits
    // nothing when tripped; the insertion phase keeps committed stages;
    // either way, resuming under an unlimited governor must land on the
    // uninterrupted batch exactly — summary counters, EvalStats, and
    // every IDB store.
    use datalog_expressiveness::datalog::{Fact, IdbId, IncrementalEngine, JoinLowering};
    use datalog_expressiveness::structures::Element;

    fn mutation_batch(s: &Structure) -> (Vec<Fact>, Vec<Fact>) {
        let n = s.universe_size() as u32;
        let mut inserts = Vec::new();
        let mut retracts = Vec::new();
        for rel in s.vocabulary().relations() {
            for (i, t) in s.relation(rel).iter().enumerate() {
                if i % 3 == 0 {
                    retracts.push((rel, t.to_vec()));
                }
                if i % 4 == 0 {
                    let rotated: Vec<Element> = t.iter().map(|&e| (e + 1) % n).collect();
                    inserts.push((rel, rotated));
                }
            }
        }
        (inserts, retracts)
    }

    let programs = all_programs();
    let option_matrix = [
        chaos_options(),
        chaos_options().with_planner(PlannerMode::CostBased),
        chaos_options()
            .with_planner(PlannerMode::CostBased)
            .with_lowering(JoinLowering::Generic),
    ];
    for index in 0..24usize {
        let program = &programs[index % programs.len()];
        let opts = option_matrix[index % option_matrix.len()];
        let s = fixture_for(program, 4_100 + (index % programs.len()) as u64);
        let (inserts, retracts) = mutation_batch(&s);

        let (mut straight, _) = IncrementalEngine::from_structure(program, &s, opts);
        let baseline = straight.apply_batch(&inserts, &retracts);

        let (mut engine, _) = IncrementalEngine::from_structure(program, &s, opts);
        let (label, gov) = chaos::injection(chaos_seed(), 1_500 + index, 60);
        let summary = match engine.try_apply_batch_governed(&inserts, &retracts, &gov) {
            Ok(done) => done,
            Err(_) => {
                assert!(
                    engine.has_pending(),
                    "{label}: interrupted batch not pending"
                );
                engine
                    .resume_batch(&Governor::unlimited())
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"))
            }
        };
        assert!(!engine.has_pending(), "{label}: batch left pending");
        assert_eq!(summary.eval_stats, baseline.eval_stats, "{label}: stats");
        assert_eq!(summary.epoch, baseline.epoch, "{label}: epoch");
        assert_eq!(
            summary.delta_tuples, baseline.delta_tuples,
            "{label}: delta"
        );
        assert_eq!(
            summary.deleted_tuples, baseline.deleted_tuples,
            "{label}: deleted"
        );
        assert_eq!(
            summary.rederived_tuples, baseline.rederived_tuples,
            "{label}: rederived"
        );
        assert_eq!(summary.stage_new, baseline.stage_new, "{label}: stages");
        for i in 0..program.idb_count() {
            assert!(
                engine
                    .idb_store(IdbId(i))
                    .store()
                    .set_eq(straight.idb_store(IdbId(i)).store()),
                "{label}: IDB {i} diverged"
            );
        }
    }
}
