//! Differential tests for the demand-driven evaluation paths.
//!
//! Two answer-identity guarantees, checked program-by-program and
//! game-by-game against the eager implementations:
//!
//! 1. **Magic sets**: for every program in `kv_datalog::programs` and
//!    every binding pattern of its goal (all 2^arity of them — `bb`, `bf`,
//!    `fb`, `ff` for the binary goals), the rewritten program seeded from
//!    a query tuple derives *exactly* the full-saturation goal tuples that
//!    agree with the query on its bound positions (selection equality).
//! 2. **Lazy arenas**: the demand-driven pebble solver names the same
//!    winner as the eager worklist solver — existential games for
//!    `k ∈ {1, 2, 3}` under both homomorphism kinds, CNF games, and the
//!    acyclic two-player game behind the Theorem 6.2 dispatch — while
//!    never materializing a larger arena.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{
    BindingPattern, EvalOptions, Evaluator, MagicProgram, Program,
};
use datalog_expressiveness::homeo::{self, PatternSpec};
use datalog_expressiveness::pebble::acyclic::AcyclicGame;
use datalog_expressiveness::pebble::{CnfFormula, CnfGame, ExistentialGame};
use datalog_expressiveness::structures::generators::{
    directed_path, random_dag, random_digraph, two_crossing_paths, two_disjoint_paths,
};
use datalog_expressiveness::structures::{
    Element, Governor, HomKind, QueryPlan, Structure, Vocabulary,
};
use std::sync::Arc;

/// One structure appropriate for each program's vocabulary (mirrors the
/// chaos suite's fixtures).
fn fixture_for(program: &Program, seed: u64) -> Structure {
    let vocab = program.vocabulary();
    if vocab.constant_count() == 4 {
        let mut g = random_dag(8, 0.35, seed);
        g.set_distinguished(vec![0, 6, 1, 7]);
        g.to_structure_with(Arc::new(two_pairs_vocabulary()))
    } else if vocab.relation_count() == 2 {
        let mut v = Vocabulary::new();
        let r = v.add_relation("R", 3);
        let a = v.add_relation("A", 1);
        let mut s = Structure::new(Arc::new(v), 7);
        s.insert(a, &[0]);
        s.insert(a, &[1]);
        for &(x, y, z) in &[(2, 0, 1), (3, 2, 0), (4, 3, 2), (5, 6, 6), (6, 4, 5)] {
            s.insert(r, &[x, y, z]);
        }
        s
    } else {
        random_digraph(7, 0.3, seed).to_structure()
    }
}

fn all_programs() -> Vec<Program> {
    vec![
        transitive_closure(),
        avoiding_path(),
        q_prime(),
        q_kl(2, 1),
        path_systems(),
        two_disjoint_paths_acyclic(),
        two_disjoint_paths_paper_rules(),
    ]
}

/// Every binding pattern of the given arity, `ff…f` through `bb…b`.
fn all_patterns(arity: usize) -> Vec<BindingPattern> {
    (0..1usize << arity)
        .map(|mask| BindingPattern::new((0..arity).map(|i| mask >> i & 1 == 1).collect()))
        .collect()
}

/// A few query tuples inside the structure's universe, spread so both
/// in-answer and out-of-answer selections occur.
fn sample_queries(arity: usize, universe: usize) -> Vec<Vec<Element>> {
    let n = universe as Element;
    (0..3u32)
        .map(|j| {
            (0..arity)
                .map(|i| (j * 3 + 2 * i as Element + 1) % n)
                .collect()
        })
        .collect()
}

/// Selection equality of the adorned goal against the full goal: tuples
/// agreeing with `query` on `pattern`'s bound positions must coincide.
fn assert_selection_equality(
    program: &Program,
    s: &Structure,
    pattern: &BindingPattern,
    query: &[Element],
    label: &str,
) {
    let full = Evaluator::new(program).run(s, EvalOptions::default());
    let full_goal = &full.idb[program.goal().0];
    let magic = MagicProgram::rewrite(program, pattern)
        .unwrap_or_else(|e| panic!("{label}: rewrite failed for {pattern}: {e}"));
    let seeds = vec![(magic.magic_goal(), magic.seed(query))];
    let demand = magic
        .compile()
        .try_run_seeded(s, EvalOptions::default(), &seeds)
        .unwrap_or_else(|e| panic!("{label}: seeded run hit a limit: {e:?}"));
    let demand_goal = &demand.idb[magic.goal().0];
    let matches = |t: &[Element]| pattern.bound_positions().all(|i| t[i] == query[i]);
    for t in full_goal.iter().filter(|t| matches(t)) {
        assert!(
            demand_goal.contains(t),
            "{label}: demand missed {t:?} (pattern {pattern}, query {query:?})"
        );
    }
    for t in demand_goal.iter().filter(|t| matches(t)) {
        assert!(
            full_goal.contains(t),
            "{label}: demand over-derived {t:?} (pattern {pattern}, query {query:?})"
        );
    }
}

#[test]
fn magic_equals_full_for_every_program_and_binding_pattern() {
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 9_000 + pi as u64);
        let arity = program.idb_arity(program.goal());
        for pattern in all_patterns(arity) {
            for query in sample_queries(arity, s.universe_size()) {
                let label = format!("program {pi}");
                assert_selection_equality(program, &s, &pattern, &query, &label);
            }
        }
    }
}

#[test]
fn magic_equals_full_under_parallel_evaluation() {
    // The demand path composes with rule-variant parallelism: same
    // selection equality with `parallel: true` (and it must agree with
    // the sequential demand run tuple-for-tuple).
    let program = transitive_closure();
    let s = random_digraph(12, 0.2, 9_900).to_structure();
    let magic = MagicProgram::rewrite(&program, &BindingPattern::all_bound(2)).unwrap();
    let compiled = magic.compile();
    let seeds = vec![(magic.magic_goal(), magic.seed(&[0, 11]))];
    let opts = |parallel| EvalOptions {
        parallel,
        ..EvalOptions::default()
    };
    let seq = compiled.try_run_seeded(&s, opts(false), &seeds).unwrap();
    let par = compiled.try_run_seeded(&s, opts(true), &seeds).unwrap();
    for (a, b) in seq.idb.iter().zip(&par.idb) {
        assert_eq!(a.len(), b.len());
        assert!(a.iter().all(|t| b.contains(t)));
    }
    assert_selection_equality(
        &program,
        &s,
        &BindingPattern::all_bound(2),
        &[0, 11],
        "parallel",
    );
}

#[test]
fn lazy_existential_games_match_eager_for_all_k_and_kinds() {
    let pairs: Vec<(Structure, Structure)> = vec![
        (directed_path(4), directed_path(7)),
        (directed_path(7), directed_path(4)),
        (two_disjoint_paths(2), two_crossing_paths(2)),
        (
            random_digraph(5, 0.3, 9_910).to_structure(),
            random_digraph(5, 0.3, 9_911).to_structure(),
        ),
        (
            random_digraph(6, 0.25, 9_912).to_structure(),
            random_digraph(6, 0.25, 9_913).to_structure(),
        ),
    ];
    for (pi, (a, b)) in pairs.iter().enumerate() {
        for k in 1..=3usize {
            for kind in [HomKind::Homomorphism, HomKind::OneToOne] {
                let eager = ExistentialGame::solve(a, b, k, kind);
                let lazy = ExistentialGame::solve_lazy(a, b, k, kind);
                assert_eq!(
                    lazy.winner(),
                    eager.winner(),
                    "pair {pi}, k={k}, kind {kind:?}"
                );
                assert!(
                    lazy.arena_size() <= eager.arena_size(),
                    "pair {pi}, k={k}, kind {kind:?}: lazy arena {} > eager {}",
                    lazy.arena_size(),
                    eager.arena_size()
                );
            }
        }
    }
}

#[test]
fn lazy_cnf_games_match_eager_for_all_k() {
    let formulas = [
        CnfFormula::complete(1),
        CnfFormula::complete(2),
        CnfFormula::units_plus_negated_clause(3),
    ];
    for (fi, formula) in formulas.iter().enumerate() {
        for k in 1..=3usize {
            let eager = CnfGame::solve(formula, k);
            let lazy = CnfGame::solve_lazy(formula, k);
            assert_eq!(lazy.winner(), eager.winner(), "formula {fi}, k={k}");
            assert!(
                lazy.arena_size() <= eager.arena_size(),
                "formula {fi}, k={k}"
            );
        }
    }
}

#[test]
fn lazy_acyclic_games_match_eager() {
    for seed in 0..12u64 {
        let g = random_dag(8, 0.3, 9_800 + seed);
        for (pattern, d) in [
            (PatternSpec::two_disjoint_edges(), vec![0u32, 6, 1, 7]),
            (PatternSpec::path_length_two(), vec![0u32, 6, 7]),
        ] {
            let eager = AcyclicGame::solve(pattern.clone(), &g, &d);
            let lazy = AcyclicGame::solve_lazy(pattern.clone(), &g, &d);
            assert_eq!(lazy.winner(), eager.winner(), "seed {seed}");
        }
    }
}

#[test]
fn homeo_dispatch_demand_plan_matches_full_plan() {
    // The (s, t) boolean homeomorphism query picks the demand path
    // automatically; an explicit full plan must reach the same verdict by
    // the same method.
    let p = PatternSpec::two_disjoint_edges();
    let full = QueryPlan::full(4);
    for seed in 0..10u64 {
        let g = random_dag(9, 0.3, 9_700 + seed);
        let d = [0u32, 7, 1, 8];
        let gov = Governor::unlimited();
        let auto = homeo::try_solve(&p, &g, &d, &gov).unwrap();
        let eager = homeo::try_solve_with_plan(&p, &g, &d, &full, &gov).unwrap();
        assert_eq!(auto, eager, "seed {seed}");
    }
}
