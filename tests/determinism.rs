//! Cross-run determinism: the library's results must not depend on hash
//! iteration order or any other incidental nondeterminism — a requirement
//! for reproducible experiments.

use datalog_expressiveness::datalog::programs::{avoiding_path, q_kl};
use datalog_expressiveness::datalog::{EvalOptions, Evaluator};
use datalog_expressiveness::homeo::{solve, PatternSpec};
use datalog_expressiveness::pebble::cnf::CnfFormula;
use datalog_expressiveness::pebble::{CnfGame, ExistentialGame};
use datalog_expressiveness::reduction::GPhi;
use datalog_expressiveness::structures::generators::{random_dag, random_digraph};
use datalog_expressiveness::structures::HomKind;

#[test]
fn datalog_evaluation_is_deterministic() {
    let g = random_digraph(10, 0.2, 42);
    let s = g.to_structure();
    for program in [avoiding_path(), q_kl(2, 0)] {
        let a = Evaluator::new(&program).run(&s, EvalOptions::default());
        let b = Evaluator::new(&program).run(&s, EvalOptions::default());
        assert_eq!(a.idb, b.idb);
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn game_solving_is_deterministic() {
    let a = random_digraph(5, 0.3, 1).to_structure();
    let b = random_digraph(5, 0.3, 2).to_structure();
    let g1 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
    let g2 = ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne);
    assert_eq!(g1.winner(), g2.winner());
    assert_eq!(g1.arena_size(), g2.arena_size());
    assert_eq!(g1.family_size(), g2.family_size());
}

#[test]
fn cnf_game_is_deterministic() {
    let f = CnfFormula::complete(2);
    let g1 = CnfGame::solve(&f, 2);
    let g2 = CnfGame::solve(&f, 2);
    assert_eq!(g1.winner(), g2.winner());
    assert_eq!(g1.arena_size(), g2.arena_size());
}

#[test]
fn gphi_construction_is_deterministic() {
    let a = GPhi::build(CnfFormula::complete(2));
    let b = GPhi::build(CnfFormula::complete(2));
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.clause_nodes, b.clause_nodes);
    assert_eq!(a.var_tops, b.var_tops);
}

#[test]
fn dispatch_solver_is_deterministic() {
    let g = random_dag(9, 0.3, 3);
    let p = PatternSpec::two_disjoint_edges();
    let d = [0u32, 7, 1, 8];
    assert_eq!(solve(&p, &g, &d), solve(&p, &g, &d));
}
