//! Differential suite for the delta-first incremental engine.
//!
//! The contract under test: after **every** batch of EDB insertions and
//! retractions, the [`IncrementalEngine`]'s live IDB relations equal a
//! from-scratch fixpoint of the same program over the engine's own
//! materialized EDB — for every program in `kv_datalog::programs`, under
//! randomized mutation schedules, across all three join lowerings
//! (textual, cost-based binary, cost-based generic). The initial batch is
//! additionally held to Theorem 3.6 stage identity: its stage sequence is
//! tuple-for-tuple the from-scratch semi-naive stage sequence.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{
    EvalOptions, Evaluator, Fact, IdbId, IncrementalEngine, JoinLowering, PlannerMode, Program,
};
use datalog_expressiveness::structures::generators::{random_dag, random_digraph};
use datalog_expressiveness::structures::{Element, SplitMix64, Structure, Vocabulary};
use std::collections::HashSet;
use std::sync::Arc;

/// One structure appropriate for each program's vocabulary (mirrors the
/// chaos suite's fixtures).
fn fixture_for(program: &Program, seed: u64) -> Structure {
    let vocab = program.vocabulary();
    if vocab.constant_count() == 4 {
        let mut g = random_dag(8, 0.35, seed);
        g.set_distinguished(vec![0, 6, 1, 7]);
        g.to_structure_with(Arc::new(two_pairs_vocabulary()))
    } else if vocab.relation_count() == 2 {
        let mut v = Vocabulary::new();
        let r = v.add_relation("R", 3);
        let a = v.add_relation("A", 1);
        let mut s = Structure::new(Arc::new(v), 7);
        s.insert(a, &[0]);
        s.insert(a, &[1]);
        for &(x, y, z) in &[(2, 0, 1), (3, 2, 0), (4, 3, 2), (5, 6, 6), (6, 4, 5)] {
            s.insert(r, &[x, y, z]);
        }
        s
    } else {
        random_digraph(7, 0.3, seed).to_structure()
    }
}

fn all_programs() -> Vec<Program> {
    vec![
        transitive_closure(),
        avoiding_path(),
        q_prime(),
        q_kl(2, 1),
        path_systems(),
        two_disjoint_paths_acyclic(),
        two_disjoint_paths_paper_rules(),
    ]
}

fn lowerings() -> [EvalOptions; 3] {
    [
        EvalOptions::default(), // textual
        EvalOptions::default().with_planner(PlannerMode::CostBased),
        EvalOptions::default()
            .with_planner(PlannerMode::CostBased)
            .with_lowering(JoinLowering::Generic),
    ]
}

/// A random mutation batch against the engine's current EDB: each live
/// tuple is retracted with probability ~1/4, and a handful of fresh random
/// tuples (valid arity, in-universe) are inserted per relation.
fn random_batch(engine: &IncrementalEngine, rng: &mut SplitMix64) -> (Vec<Fact>, Vec<Fact>) {
    let s = engine.edb_structure();
    let n = s.universe_size() as u32;
    let mut inserts = Vec::new();
    let mut retracts = Vec::new();
    for rel in s.vocabulary().relations() {
        for t in s.relation(rel).iter() {
            if rng.gen_bool(0.25) {
                retracts.push((rel, t.to_vec()));
            }
        }
        let arity = s.vocabulary().arity(rel);
        for _ in 0..rng.gen_range(0u32..4) {
            let t: Vec<Element> = (0..arity).map(|_| rng.gen_range(0..n)).collect();
            inserts.push((rel, t));
        }
    }
    (inserts, retracts)
}

/// The engine's live IDB sets must equal a from-scratch run over the
/// engine's own materialized EDB.
fn assert_matches_scratch(engine: &IncrementalEngine, program: &Program, label: &str) {
    let scratch = Evaluator::new(program).run(&engine.edb_structure(), engine.options());
    for i in 0..program.idb_count() {
        let live: HashSet<Vec<Element>> = engine
            .idb_store(IdbId(i))
            .live_iter()
            .map(|t| t.to_vec())
            .collect();
        let expect: HashSet<Vec<Element>> = scratch.idb[i].iter().map(|t| t.to_vec()).collect();
        assert_eq!(
            live,
            expect,
            "{label}: IDB {} diverged from scratch",
            program.idb_name(IdbId(i))
        );
    }
}

#[test]
fn every_program_matches_scratch_under_random_schedules() {
    for (pi, program) in all_programs().iter().enumerate() {
        for (oi, opts) in lowerings().into_iter().enumerate() {
            for schedule in 0..3u64 {
                let label = format!("program {pi} lowering {oi} schedule {schedule}");
                let s = fixture_for(program, 4_100 + pi as u64 + 13 * schedule);
                let (mut engine, _) = IncrementalEngine::from_structure(program, &s, opts);
                assert_matches_scratch(&engine, program, &format!("{label} initial"));
                let mut rng = SplitMix64::seed_from_u64(
                    0x1990 + 1_000 * pi as u64 + 100 * oi as u64 + schedule,
                );
                for batch in 0..4u32 {
                    let (inserts, retracts) = random_batch(&engine, &mut rng);
                    engine.apply_batch(&inserts, &retracts);
                    assert_matches_scratch(&engine, program, &format!("{label} batch {batch}"));
                }
            }
        }
    }
}

#[test]
fn initial_batch_has_stage_identity_on_every_program() {
    // Theorem 3.6 stage identity: the initial batch derives, stage by
    // stage, exactly the from-scratch semi-naive stage sequence.
    for (pi, program) in all_programs().iter().enumerate() {
        for (oi, opts) in lowerings().into_iter().enumerate() {
            let s = fixture_for(program, 4_100 + pi as u64);
            let (_, summary) = IncrementalEngine::from_structure(program, &s, opts);
            let scratch = Evaluator::new(program).run(&s, opts);
            let scratch_stages: Vec<Vec<usize>> = scratch
                .stats
                .iter()
                .map(|st| st.new_tuples.clone())
                .collect();
            assert_eq!(
                summary.stage_new, scratch_stages,
                "program {pi} lowering {oi}: initial-batch stage identity"
            );
        }
    }
}

#[test]
fn drain_and_refill_round_trips() {
    // Retract everything, then re-insert the original EDB: the engine
    // must pass through the empty fixpoint and land back on the original
    // one (epoch-advanced, content-identical).
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 4_200 + pi as u64);
        let (mut engine, _) =
            IncrementalEngine::from_structure(program, &s, EvalOptions::default());
        let all: Vec<Fact> = s
            .vocabulary()
            .relations()
            .flat_map(|rel| {
                s.relation(rel)
                    .iter()
                    .map(move |t| (rel, t.to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        engine.apply_batch(&[], &all);
        assert_matches_scratch(&engine, program, &format!("program {pi} drained"));
        engine.apply_batch(&all, &[]);
        assert_matches_scratch(&engine, program, &format!("program {pi} refilled"));
    }
}

/// Deterministic in-place Fisher–Yates shuffle.
fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..(i as u32 + 1)) as usize;
        items.swap(i, j);
    }
}

#[test]
fn reordered_batches_are_equivalent_to_unreordered() {
    // The engine canonicalizes every coalesced batch to retracts-before-
    // inserts, grouped by predicate, so the *presentation order* of a
    // batch is semantically inert: any permutation of the inserts and any
    // permutation of the retracts must commit the identical engine state
    // and the identical summary counters. This is what makes replayed
    // (WAL) and resumed batches reproducible regardless of how callers
    // assembled them.
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 4_300 + pi as u64);
        let opts = EvalOptions::default();
        let (mut plain, _) = IncrementalEngine::from_structure(program, &s, opts);
        let (mut shuffled, _) = IncrementalEngine::from_structure(program, &s, opts);
        let mut rng = SplitMix64::seed_from_u64(0x0de4 + pi as u64);
        for batch in 0..3u32 {
            let (inserts, retracts) = random_batch(&plain, &mut rng);
            let mut inserts_perm = inserts.clone();
            let mut retracts_perm = retracts.clone();
            shuffle(&mut inserts_perm, &mut rng);
            shuffle(&mut retracts_perm, &mut rng);
            let a = plain.apply_batch(&inserts, &retracts);
            let b = shuffled.apply_batch(&inserts_perm, &retracts_perm);
            let label = format!("program {pi} batch {batch}");
            assert_eq!(
                (a.edb_inserted, a.edb_retracted, a.delta_tuples),
                (b.edb_inserted, b.edb_retracted, b.delta_tuples),
                "{label}: insertion counters diverged under reordering"
            );
            assert_eq!(
                (a.deleted_tuples, a.rederived_tuples, a.overdeleted_tuples),
                (b.deleted_tuples, b.rederived_tuples, b.overdeleted_tuples),
                "{label}: deletion counters diverged under reordering"
            );
            for rel in s.vocabulary().relations() {
                let ea = plain.edb_store(rel);
                let eb = shuffled.edb_store(rel);
                assert_eq!(ea.live_len(), eb.live_len(), "{label}: EDB {rel:?} size");
                for t in ea.live_iter() {
                    let sa = ea.lookup(t).map(|id| ea.support(id));
                    let sb = eb.lookup(t).map(|id| eb.support(id));
                    assert!(
                        eb.contains_live(t) && sa == sb,
                        "{label}: EDB {rel:?} tuple {t:?} support diverged"
                    );
                }
            }
            for i in 0..program.idb_count() {
                let la: HashSet<Vec<Element>> = plain
                    .idb_store(IdbId(i))
                    .live_iter()
                    .map(|t| t.to_vec())
                    .collect();
                let lb: HashSet<Vec<Element>> = shuffled
                    .idb_store(IdbId(i))
                    .live_iter()
                    .map(|t| t.to_vec())
                    .collect();
                assert_eq!(
                    la,
                    lb,
                    "{label}: IDB {} diverged",
                    program.idb_name(IdbId(i))
                );
            }
            assert_matches_scratch(&shuffled, program, &format!("{label} reordered"));
        }
    }
}
