//! Cross-crate integration tests: one test per headline claim of the
//! paper, exercising the full stack through the facade crate.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, q_kl, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{Evaluator, Program};
use datalog_expressiveness::homeo::{acyclic_game_program, brute_force_homeomorphism, PatternSpec};
use datalog_expressiveness::logic::stage::StageTranslation;
use datalog_expressiveness::pebble::acyclic::AcyclicGame;
use datalog_expressiveness::pebble::play::{play_game, RandomSpoiler};
use datalog_expressiveness::pebble::{preceq, CnfGame, ExistentialGame, Winner};
use datalog_expressiveness::reduction::thm66::Thm66Witness;
use datalog_expressiveness::reduction::GPhi;
use datalog_expressiveness::structures::generators::{directed_path, random_dag, random_digraph};
use datalog_expressiveness::structures::{Digraph, HomKind};
use datalog_expressiveness::{classify_and_report, Expressibility};
use std::sync::Arc;

/// Theorem 3.6: stage formulas define the Datalog(≠) stages with a fixed
/// variable budget; pure Datalog yields inequality-free formulas.
#[test]
fn theorem_3_6_stage_translation() {
    for program in [transitive_closure(), avoiding_path()] {
        let mut translation = StageTranslation::new(&program);
        let budget = translation.var_budget();
        let goal = program.goal();
        let s = random_digraph(5, 0.3, 99).to_structure();
        let result = Evaluator::new(&program)
            .run(&s, datalog_expressiveness::datalog::EvalOptions::default());
        for n in 1..=result.stage_count() {
            let formula = translation.stage(n, goal);
            assert!(formula.all_vars().len() <= budget);
            assert!(formula.is_existential_positive());
            assert_eq!(
                formula.is_inequality_free(),
                program.is_pure_datalog(),
                "inequality-freeness tracks the Datalog fragment"
            );
        }
    }
}

/// Theorem 4.8 / Proposition 4.2 direction: a one-to-one homomorphism
/// gives `A ≼^k B` for every k; and `≼^k` is monotone in k (more pebbles
/// help only the Spoiler).
#[test]
fn preceq_basic_laws() {
    let a = directed_path(3);
    let b = directed_path(6);
    for k in 1..=3 {
        assert!(preceq(&a, &b, k));
    }
    // Anti-monotonicity in k: if the Spoiler wins with k pebbles he wins
    // with k+1.
    let c = directed_path(6);
    let d = directed_path(3);
    let mut lost_at = None;
    for k in 1..=3 {
        if !preceq(&c, &d, k) {
            lost_at = lost_at.or(Some(k));
        } else {
            assert!(lost_at.is_none(), "preceq must be antitone in k");
        }
    }
    assert_eq!(lost_at, Some(2));
}

/// Proposition 5.3 (the game winner is computable) exercised with play
/// validation on a batch of random structure pairs.
#[test]
fn proposition_5_3_solver_vs_play() {
    use datalog_expressiveness::pebble::play::validate_by_play;
    for seed in 0..6 {
        let a = random_digraph(5, 0.3, 7000 + seed).to_structure();
        let b = random_digraph(5, 0.3, 8000 + seed).to_structure();
        assert!(
            validate_by_play(&a, &b, 2, HomKind::OneToOne, 150, 0..4),
            "solver verdict refuted by play on seed {seed}"
        );
    }
}

/// Theorem 6.1: the generated Q_{k,l} programs agree with max-flow and
/// brute force (k = 2 shown here; deeper sweeps live in kv-datalog).
#[test]
fn theorem_6_1_positive_side() {
    let program = q_kl(2, 1);
    for seed in 0..4 {
        let g = random_digraph(7, 0.3, 9000 + seed);
        let s = g.to_structure();
        let rel = Evaluator::new(&program).goal(&s);
        for src in 0..3u32 {
            for a in 3..5u32 {
                for b in 5..7u32 {
                    for t in 0..7u32 {
                        if [a, b, t].contains(&src) || a == b || t == a || t == b {
                            continue;
                        }
                        let expected = datalog_expressiveness::graphalg::disjoint::has_disjoint_fan(
                            &g,
                            src,
                            &[a, b],
                            &[t],
                        );
                        assert_eq!(
                            rel.contains(&[src, a, b, t][..]),
                            expected,
                            "Q_2,1({src};{a},{b}|{t}) seed {seed}"
                        );
                    }
                }
            }
        }
    }
}

/// Theorem 6.2: program ≡ two-player game ≡ brute force on random DAGs,
/// and the extended abstract's 3-rule cooperative program over-accepts.
#[test]
fn theorem_6_2_acyclic_inputs() {
    let and_or = two_disjoint_paths_acyclic();
    let paper = two_disjoint_paths_paper_rules();
    let vocab = Arc::new(two_pairs_vocabulary());
    let pattern = PatternSpec::two_disjoint_edges();
    let mut paper_overshoots = 0;
    for seed in 0..25 {
        let g = random_dag(9, 0.3, 10_000 + seed);
        let d = [0u32, 7, 1, 8]; // s1, t1, s2, t2
        let mut gg = g.clone();
        gg.set_distinguished(vec![d[0], d[1], d[2], d[3]]);
        let s = gg.to_structure_with(Arc::clone(&vocab));
        // Pattern node order for H1 is (0 -> 1, 2 -> 3) = (s1, t1, s2, t2),
        // matching the program vocabulary's constant order.
        let by_and_or = Evaluator::new(&and_or).holds(&s, &[]);
        let by_game = AcyclicGame::solve(pattern.clone(), &g, &d).duplicator_wins();
        let by_brute = brute_force_homeomorphism(&pattern, &g, &d);
        assert_eq!(by_and_or, by_game, "seed {seed}");
        assert_eq!(by_and_or, by_brute, "seed {seed}");
        // The cooperative program may only over-accept.
        let by_paper = Evaluator::new(&paper).goal(&s).contains(&[d[0], d[2]][..]);
        assert!(
            by_paper || !by_and_or,
            "cooperative under-accepts?! seed {seed}"
        );
        if by_paper && !by_and_or {
            paper_overshoots += 1;
        }
    }
    let _ = paper_overshoots; // the deterministic 5-node witness is tested elsewhere
}

/// The general π_H generator agrees with the game for a 3-edge pattern.
#[test]
fn theorem_6_2_general_pattern_program() {
    let p = PatternSpec {
        node_count: 4,
        edges: vec![(0, 1), (1, 2), (3, 2)],
    };
    let program = acyclic_game_program(&p);
    for seed in 0..8 {
        let g = random_dag(8, 0.35, 11_000 + seed);
        let d = [0u32, 3, 6, 1];
        let by_program = datalog_expressiveness::homeo::programs::eval_on(&program, &g, &d);
        let by_game = AcyclicGame::solve(p.clone(), &g, &d).duplicator_wins();
        let by_brute = brute_force_homeomorphism(&p, &g, &d);
        assert_eq!(by_program, by_game, "seed {seed}");
        assert_eq!(by_program, by_brute, "seed {seed}");
    }
}

/// Theorem 6.6, assembled: the game-side witness at k = 1 and k = 2.
#[test]
fn theorem_6_6_witness_assembled() {
    // k = 1: every piece checkable by brute force.
    let w = Thm66Witness::new(1);
    let a_graph = Digraph::from_structure(&w.a);
    assert!(brute_force_homeomorphism(
        &PatternSpec::two_disjoint_edges(),
        &a_graph,
        w.a.constant_values(),
    ));
    assert!(!w.gphi.has_two_disjoint_paths_brute());
    // Strategy survives adversarial play.
    for seed in 0..8 {
        let mut sp = RandomSpoiler::new(w.a.universe_size(), seed);
        let mut dup = w.duplicator();
        assert_eq!(
            play_game(&w.a, &w.b, 1, HomKind::OneToOne, &mut sp, &mut dup, 200),
            Winner::Duplicator
        );
    }
    // k = 1 is small enough for the generic solver: it must agree that
    // the Duplicator wins — i.e. A ≼¹ B despite the query separating them.
    let solver = ExistentialGame::solve(&w.a, &w.b, 1, HomKind::OneToOne);
    assert_eq!(solver.winner(), Winner::Duplicator);
}

/// The CNF game bookkeeping behind Theorem 6.6 (Definition 6.5).
#[test]
fn definition_6_5_cnf_games() {
    use datalog_expressiveness::pebble::cnf::CnfFormula;
    for k in 1..=2 {
        let phi = CnfFormula::complete(k);
        assert_eq!(CnfGame::solve(&phi, k).winner(), Winner::Duplicator);
        assert_eq!(CnfGame::solve(&phi, k + 1).winner(), Winner::Spoiler);
    }
}

/// SAT reduction (Figures 2–6): satisfiability ⟺ two disjoint paths.
#[test]
fn reduction_is_faithful() {
    use datalog_expressiveness::pebble::cnf::{clause, CnfFormula, Lit};
    let formulas = [
        CnfFormula::new(2, vec![clause([Lit::pos(0), Lit::neg(1)])]),
        CnfFormula::new(
            2,
            vec![clause([Lit::pos(0)]), clause([Lit::neg(0), Lit::pos(1)])],
        ),
        CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])]),
    ];
    for f in formulas {
        let sat = f.brute_force_sat().is_some();
        let g = GPhi::build(f);
        assert_eq!(g.has_two_disjoint_paths_brute(), sat);
    }
}

/// The full dichotomy pipeline classifies and equips every small pattern.
#[test]
fn dichotomy_pipeline_total_on_small_patterns() {
    for n in 1..=3usize {
        let all_edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        let m = all_edges.len();
        for mask in 0u32..(1 << m) {
            let edges: Vec<(usize, usize)> = (0..m)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| all_edges[b])
                .collect();
            let p = PatternSpec {
                node_count: n,
                edges,
            };
            let report = classify_and_report(&p);
            match report.verdict {
                Expressibility::ExpressibleEverywhere(prog) => {
                    check_program_wellformed(&prog);
                }
                Expressibility::InexpressibleGeneral {
                    acyclic_program, ..
                } => check_program_wellformed(&acyclic_program),
                Expressibility::Degenerate => {
                    assert!(p.edges.is_empty(), "loop-free degenerate must be empty");
                }
            }
        }
    }
}

fn check_program_wellformed(p: &Program) {
    assert!(p.idb_count() >= 1);
    assert_eq!(p.idb_arity(p.goal()), 0);
}
