//! Differential tests for cost-based query compilation (the planner).
//!
//! The planner may reorder rule bodies, pick specialized join kernels,
//! hoist ≠-constraints, and skip provably-dead rules — but it must never
//! change *what* is derived, nor *when*: Theorem 3.6 translates Datalog
//! stages into `L^k` stage formulas, so the certification suites compare
//! runs stage by stage. These tests pin the guarantee
//!
//! ```text
//! CostBased ≡ Textual, stage for stage,
//! ```
//!
//! for every program in `kv_datalog::programs`, over random structures,
//! under magic-set rewriting for **all** `2^arity` goal binding patterns,
//! and under parallel evaluation.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, triangles,
    two_disjoint_paths_acyclic, two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{
    BindingPattern, EvalOptions, Evaluator, JoinLowering, MagicProgram, PlannerMode, Program,
};
use datalog_expressiveness::structures::generators::{random_dag, random_digraph};
use datalog_expressiveness::structures::{Element, Structure, Vocabulary};
use std::sync::Arc;

/// One structure appropriate for each program's vocabulary (mirrors the
/// chaos and demand suites' fixtures).
fn fixture_for(program: &Program, seed: u64) -> Structure {
    let vocab = program.vocabulary();
    if vocab.constant_count() == 4 {
        let mut g = random_dag(8, 0.35, seed);
        g.set_distinguished(vec![0, 6, 1, 7]);
        g.to_structure_with(Arc::new(two_pairs_vocabulary()))
    } else if vocab.relation_count() == 2 {
        let mut v = Vocabulary::new();
        let r = v.add_relation("R", 3);
        let a = v.add_relation("A", 1);
        let mut s = Structure::new(Arc::new(v), 7);
        s.insert(a, &[0]);
        s.insert(a, &[1]);
        for &(x, y, z) in &[(2, 0, 1), (3, 2, 0), (4, 3, 2), (5, 6, 6), (6, 4, 5)] {
            s.insert(r, &[x, y, z]);
        }
        s
    } else {
        random_digraph(7, 0.3, seed).to_structure()
    }
}

fn all_programs() -> Vec<Program> {
    vec![
        transitive_closure(),
        avoiding_path(),
        q_prime(),
        q_kl(2, 1),
        path_systems(),
        two_disjoint_paths_acyclic(),
        two_disjoint_paths_paper_rules(),
        triangles(),
    ]
}

fn opts(planner: PlannerMode, parallel: bool) -> EvalOptions {
    EvalOptions {
        parallel,
        ..EvalOptions::default()
    }
    .with_planner(planner)
}

#[test]
fn cost_based_matches_textual_stage_for_stage() {
    for (pi, program) in all_programs().iter().enumerate() {
        for round in 0..3u64 {
            let s = fixture_for(program, 11_000 + 17 * pi as u64 + round);
            let textual = Evaluator::new(program).run(&s, opts(PlannerMode::Textual, true));
            let planned = Evaluator::new(program).run(&s, opts(PlannerMode::CostBased, true));
            assert_eq!(textual.idb, planned.idb, "program {pi}, round {round}");
            assert!(
                textual.same_stages(&planned),
                "program {pi}, round {round}: stage structure diverged"
            );
            assert_eq!(
                textual.eval_stats.tuples_interned, planned.eval_stats.tuples_interned,
                "program {pi}, round {round}"
            );
            assert_eq!(
                textual.eval_stats.stages, planned.eval_stats.stages,
                "program {pi}, round {round}"
            );
        }
    }
}

/// Every binding pattern of the given arity, `ff…f` through `bb…b`.
fn all_patterns(arity: usize) -> Vec<BindingPattern> {
    (0..1usize << arity)
        .map(|mask| BindingPattern::new((0..arity).map(|i| mask >> i & 1 == 1).collect()))
        .collect()
}

#[test]
fn cost_based_matches_textual_under_magic_for_every_binding_pattern() {
    // Magic rewriting happens first, planning second: the planner sees the
    // adorned program (magic guards and all) and must preserve its stages
    // for every goal adornment.
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 12_000 + pi as u64);
        let arity = program.idb_arity(program.goal());
        let query: Vec<Element> = (0..arity)
            .map(|i| (2 * i as Element + 1) % s.universe_size() as Element)
            .collect();
        for pattern in all_patterns(arity) {
            let label = format!("program {pi}, pattern {pattern}");
            let magic = MagicProgram::rewrite(program, &pattern)
                .unwrap_or_else(|e| panic!("{label}: rewrite failed: {e}"));
            let compiled = magic.compile();
            let seeds = vec![(magic.magic_goal(), magic.seed(&query))];
            let textual = compiled
                .try_run_seeded(&s, opts(PlannerMode::Textual, true), &seeds)
                .unwrap_or_else(|e| panic!("{label}: textual run hit a limit: {e:?}"));
            let planned = compiled
                .try_run_seeded(&s, opts(PlannerMode::CostBased, true), &seeds)
                .unwrap_or_else(|e| panic!("{label}: planned run hit a limit: {e:?}"));
            assert_eq!(textual.idb, planned.idb, "{label}");
            assert!(textual.same_stages(&planned), "{label}");
        }
    }
}

#[test]
fn cost_based_parallel_matches_sequential() {
    // Worker-private scratch stores merge by set union, so planned
    // parallel runs must be stage-identical to planned sequential runs
    // (counters may differ: duplicate suppression is scratch-local).
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 13_000 + pi as u64);
        let seq = Evaluator::new(program).run(&s, opts(PlannerMode::CostBased, false));
        let par = Evaluator::new(program).run(&s, opts(PlannerMode::CostBased, true));
        assert_eq!(seq.idb, par.idb, "program {pi}");
        assert!(seq.same_stages(&par), "program {pi}");
    }
}

#[test]
fn cost_based_respects_explicit_thread_counts() {
    // The harness's thread-scaling rows pin worker counts explicitly; every
    // count must reach the same fixpoint with the same stage structure.
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 14_000 + pi as u64);
        let baseline = Evaluator::new(program).run(&s, opts(PlannerMode::CostBased, false));
        for threads in [1usize, 2, 4] {
            let run = Evaluator::new(program).run(
                &s,
                opts(PlannerMode::CostBased, true).with_threads(Some(threads)),
            );
            assert_eq!(baseline.idb, run.idb, "program {pi}, threads {threads}");
            assert!(
                baseline.same_stages(&run),
                "program {pi}, threads {threads}"
            );
        }
    }
}

#[test]
fn generic_lowering_matches_binary_stage_for_stage() {
    // The worst-case-optimal generic join must be a pure execution-strategy
    // swap: for every program and structure, forcing JoinLowering::Generic
    // derives exactly the same stages as forcing JoinLowering::Binary (and
    // as the textual baseline), sequential and parallel alike.
    for (pi, program) in all_programs().iter().enumerate() {
        for round in 0..3u64 {
            let s = fixture_for(program, 15_000 + 17 * pi as u64 + round);
            for parallel in [false, true] {
                let label = format!("program {pi}, round {round}, parallel {parallel}");
                let textual = Evaluator::new(program).run(&s, opts(PlannerMode::Textual, parallel));
                let binary = Evaluator::new(program).run(
                    &s,
                    opts(PlannerMode::CostBased, parallel).with_lowering(JoinLowering::Binary),
                );
                let generic = Evaluator::new(program).run(
                    &s,
                    opts(PlannerMode::CostBased, parallel).with_lowering(JoinLowering::Generic),
                );
                assert_eq!(binary.idb, generic.idb, "{label}");
                assert_eq!(textual.idb, generic.idb, "{label}");
                assert!(binary.same_stages(&generic), "{label}");
                assert!(textual.same_stages(&generic), "{label}");
            }
        }
    }
}

#[test]
fn generic_lowering_matches_binary_under_magic_for_every_binding_pattern() {
    // Magic rewriting inserts guard atoms and seeds demand tuples; the
    // generic executor must preserve stages across every goal adornment of
    // every program, exactly as the binary kernels do.
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 16_000 + pi as u64);
        let arity = program.idb_arity(program.goal());
        let query: Vec<Element> = (0..arity)
            .map(|i| (2 * i as Element + 1) % s.universe_size() as Element)
            .collect();
        for pattern in all_patterns(arity) {
            let label = format!("program {pi}, pattern {pattern}");
            let magic = MagicProgram::rewrite(program, &pattern)
                .unwrap_or_else(|e| panic!("{label}: rewrite failed: {e}"));
            let compiled = magic.compile();
            let seeds = vec![(magic.magic_goal(), magic.seed(&query))];
            let binary = compiled
                .try_run_seeded(
                    &s,
                    opts(PlannerMode::CostBased, true).with_lowering(JoinLowering::Binary),
                    &seeds,
                )
                .unwrap_or_else(|e| panic!("{label}: binary run hit a limit: {e:?}"));
            let generic = compiled
                .try_run_seeded(
                    &s,
                    opts(PlannerMode::CostBased, true).with_lowering(JoinLowering::Generic),
                    &seeds,
                )
                .unwrap_or_else(|e| panic!("{label}: generic run hit a limit: {e:?}"));
            assert_eq!(binary.idb, generic.idb, "{label}");
            assert!(binary.same_stages(&generic), "{label}");
        }
    }
}

#[test]
fn generic_join_beats_binary_probes_on_triangles() {
    // On the canonical cyclic body the generic lowering must engage under
    // Auto and visit fewer candidate tuples than the binary plan.
    let program = triangles();
    let s = random_digraph(24, 0.2, 21).to_structure();
    let auto = Evaluator::new(&program).run(
        &s,
        opts(PlannerMode::CostBased, false).with_lowering(JoinLowering::Auto),
    );
    assert!(auto.eval_stats.wcoj_rules > 0, "Auto must pick generic");
    let binary = Evaluator::new(&program).run(
        &s,
        opts(PlannerMode::CostBased, false).with_lowering(JoinLowering::Binary),
    );
    assert_eq!(auto.idb, binary.idb);
    assert!(auto.same_stages(&binary));
}

#[test]
fn cost_based_never_regresses_probes_on_bench_programs() {
    // The bench gate tracks these three cases; keep the win locked in at
    // the property level too (sequential runs, so counters are exact).
    let cases: [(Program, Structure); 3] = [
        (
            transitive_closure(),
            random_digraph(30, 0.08, 7).to_structure(),
        ),
        (avoiding_path(), random_digraph(12, 0.12, 8).to_structure()),
        (q_kl(2, 1), random_digraph(10, 0.15, 9).to_structure()),
    ];
    for (i, (program, s)) in cases.iter().enumerate() {
        let textual = Evaluator::new(program).run(s, opts(PlannerMode::Textual, false));
        let planned = Evaluator::new(program).run(s, opts(PlannerMode::CostBased, false));
        assert_eq!(textual.idb, planned.idb, "case {i}");
        assert!(
            planned.eval_stats.join_probes <= textual.eval_stats.join_probes,
            "case {i}: planned probes {} > textual {}",
            planned.eval_stats.join_probes,
            textual.eval_stats.join_probes
        );
        assert!(
            planned.eval_stats.duplicate_derivations <= textual.eval_stats.duplicate_derivations,
            "case {i}: planned dups {} > textual {}",
            planned.eval_stats.duplicate_derivations,
            textual.eval_stats.duplicate_derivations
        );
    }
}
