//! Kill-and-restart chaos for the durable storage layer.
//!
//! Each case spawns the `recovery_harness` subprocess against a fresh
//! durable directory with a seeded [`CrashPoint`] armed — the process
//! `abort()`s *inside* the commit protocol (mid-WAL-record, between WAL
//! and apply, after apply, mid-checkpoint write, on either side of the
//! manifest swap) — then restarts it and asserts, for every program in
//! the paper suite under all three join lowerings:
//!
//! 1. **Recovered ≡ clean**: the recovered state (EDB facts with
//!    support counts, IDB fixpoint, epoch) is string-identical to a
//!    fresh in-memory engine replaying the same deterministic batch
//!    prefix.
//! 2. **Epoch discipline**: a batch whose WAL record tore never
//!    happened; a batch whose record landed always happened — there is
//!    no third state.
//! 3. **Carry on**: the recovered directory accepts the remaining
//!    batches and converges to the clean full-stream state.
//!
//! A separate case kills the harness from the *outside*
//! ([`std::process::Child::kill`] — SIGKILL on Unix) at a wall-clock
//! moment, covering kills that land anywhere, not just at protocol
//! seams. The per-case recovery timings observed along the way are
//! written to `target/recovery-times.json` for the CI artifact.
//!
//! Seeded via `KV_CHAOS_SEED` (CI runs a small matrix of seeds).

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const PROGRAMS: &[&str] = &[
    "tc",
    "avoiding",
    "q_prime",
    "q_kl",
    "path_systems",
    "tdp_acyclic",
    "tdp_paper",
];

const LOWERINGS: &[&str] = &["auto", "binary", "generic"];

/// The seeded kill points: ≥8 distinct seams, including mid-batch-commit
/// (`wal-torn` tears the record of a committing batch; `after-wal`
/// crashes between its WAL append and its in-memory apply). With
/// `--batches 8 --checkpoint-every 3`, the checkpoint seams fire while
/// committing epoch 3.
const KILL_POINTS: &[(&str, Option<u64>)] = &[
    // (crash spec, expected recovered epoch if deterministic)
    ("wal-torn:2:1", Some(1)),
    ("wal-torn:5:40", Some(4)),
    ("after-wal:2", Some(2)),
    ("after-wal:6", Some(6)),
    ("after-apply:4", Some(4)),
    ("ckpt-torn:1", Some(3)),
    ("ckpt-torn:25", Some(3)),
    ("before-manifest", Some(3)),
    ("after-manifest", Some(3)),
];

const BATCHES: u64 = 8;

fn seed() -> u64 {
    std::env::var("KV_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1263933840)
}

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recovery_harness"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kv-recovery-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_harness(args: &[&str]) -> Output {
    harness()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn recovery_harness")
}

fn stdout_of(out: &Output, ctx: &str) -> String {
    assert!(
        out.status.success(),
        "{ctx}: harness failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The canonical state block of a dump (from the `epoch` line through
/// `state-ok`), stripped of the recovery-report preamble.
fn state_block(dump: &str, ctx: &str) -> String {
    let start = dump
        .find("epoch ")
        .unwrap_or_else(|| panic!("{ctx}: no state in dump:\n{dump}"));
    let block = &dump[start..];
    assert!(
        block.ends_with("state-ok\n"),
        "{ctx}: dump is not terminated:\n{dump}"
    );
    block.to_string()
}

fn recovered_epoch(dump: &str, ctx: &str) -> u64 {
    dump.lines()
        .find_map(|l| l.strip_prefix("epoch "))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{ctx}: no epoch in dump:\n{dump}"))
}

/// Recovery timing parsed from the dump preamble, for the CI artifact.
fn recovery_us(dump: &str) -> Option<u64> {
    dump.lines()
        .find(|l| l.starts_with("recovery "))?
        .split_whitespace()
        .find_map(|f| f.strip_prefix("us="))?
        .parse()
        .ok()
}

struct Timing {
    label: String,
    us: u64,
}

fn write_timings(timings: &[Timing]) {
    // Best-effort artifact; concurrent test binaries may race on the
    // file, which is fine — CI uploads whatever the last writer left.
    let mut json = String::from("[\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"case\": \"{}\", \"recovery_us\": {}}}{}\n",
            t.label,
            t.us,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/recovery-times.json", json).ok();
}

/// Crash at the seam, recover, and require the recovered state to be
/// string-identical to the clean replay — then carry on to the full
/// stream and require that to match too. Returns the recovery timing.
fn crash_recover_and_verify(
    program: &str,
    lowering: &str,
    crash: &str,
    expect_epoch: Option<u64>,
) -> Timing {
    let seed = seed().to_string();
    let batches = BATCHES.to_string();
    let dir = temp_dir(&format!("{program}-{lowering}-{}", crash.replace(':', "_")));
    let dir_s = dir.to_str().expect("utf-8 temp dir");
    let ctx = format!("{program}/{lowering}/{crash}");

    // 1. Run with the crash armed: the process must die (abort), not exit.
    let out = run_harness(&[
        "run",
        "--program",
        program,
        "--seed",
        &seed,
        "--dir",
        dir_s,
        "--batches",
        &batches,
        "--checkpoint-every",
        "3",
        "--lowering",
        lowering,
        "--crash",
        crash,
    ]);
    assert!(
        !out.status.success(),
        "{ctx}: armed run must crash\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // 2. Recover and dump.
    let dump = stdout_of(
        &run_harness(&[
            "dump",
            "--program",
            program,
            "--seed",
            &seed,
            "--dir",
            dir_s,
            "--lowering",
            lowering,
        ]),
        &ctx,
    );
    let epoch = recovered_epoch(&dump, &ctx);
    if let Some(expect) = expect_epoch {
        assert_eq!(epoch, expect, "{ctx}: recovered epoch");
    }

    // 3. Clean replay of the same prefix must match exactly.
    let clean = stdout_of(
        &run_harness(&[
            "clean",
            "--program",
            program,
            "--seed",
            &seed,
            "--upto",
            &epoch.to_string(),
            "--lowering",
            lowering,
        ]),
        &ctx,
    );
    assert_eq!(
        state_block(&dump, &ctx),
        state_block(&clean, &ctx),
        "{ctx}: recovered state diverged from clean replay"
    );

    // 4. Carry on: the recovered directory finishes the stream...
    let out = run_harness(&[
        "run",
        "--program",
        program,
        "--seed",
        &seed,
        "--dir",
        dir_s,
        "--batches",
        &batches,
        "--checkpoint-every",
        "3",
        "--lowering",
        lowering,
    ]);
    let resumed = stdout_of(&out, &ctx);
    assert!(
        resumed.contains(&format!("final-epoch {BATCHES}")),
        "{ctx}: continuation did not reach the full stream:\n{resumed}"
    );
    // ...and lands on the clean full-stream state.
    let final_dump = stdout_of(
        &run_harness(&[
            "dump",
            "--program",
            program,
            "--seed",
            &seed,
            "--dir",
            dir_s,
            "--lowering",
            lowering,
        ]),
        &ctx,
    );
    let final_clean = stdout_of(
        &run_harness(&[
            "clean",
            "--program",
            program,
            "--seed",
            &seed,
            "--upto",
            &BATCHES.to_string(),
            "--lowering",
            lowering,
        ]),
        &ctx,
    );
    assert_eq!(
        state_block(&final_dump, &ctx),
        state_block(&final_clean, &ctx),
        "{ctx}: post-recovery continuation diverged"
    );

    let us = recovery_us(&dump).unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();
    Timing { label: ctx, us }
}

/// The full seeded matrix: every program × every lowering × every kill
/// point. ~189 crash-recover-verify cycles.
#[test]
fn killed_mid_protocol_recovers_to_clean_state_everywhere() {
    let mut timings = Vec::new();
    for program in PROGRAMS {
        for lowering in LOWERINGS {
            for (crash, expect) in KILL_POINTS {
                timings.push(crash_recover_and_verify(program, lowering, crash, *expect));
            }
        }
    }
    write_timings(&timings);
}

/// Wall-clock SIGKILL from the parent: no cooperation from the victim at
/// all. The recovered epoch is whatever it is — but the state must be
/// exactly the clean replay of that many batches.
#[test]
fn sigkilled_at_arbitrary_moments_recovers_to_clean_state() {
    let seed_v = seed();
    for (i, program) in PROGRAMS.iter().enumerate() {
        let dir = temp_dir(&format!("sigkill-{program}"));
        let dir_s = dir.to_str().expect("utf-8 temp dir");
        let ctx = format!("{program}/sigkill");
        let seed_s = seed_v.to_string();
        let mut child = harness()
            .args([
                "run",
                "--program",
                program,
                "--seed",
                &seed_s,
                "--dir",
                dir_s,
                "--batches",
                &BATCHES.to_string(),
                "--checkpoint-every",
                "2",
                "--sleep-ms",
                "15",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn harness");
        // A seeded, per-program delay so the kill lands at varied points
        // of the batch stream (including possibly mid-batch).
        let delay = 20 + (seed_v.wrapping_add(i as u64 * 37) % 90);
        std::thread::sleep(std::time::Duration::from_millis(delay));
        child.kill().expect("kill harness");
        child.wait().expect("reap harness");

        let dump = stdout_of(
            &run_harness(&[
                "dump",
                "--program",
                program,
                "--seed",
                &seed_s,
                "--dir",
                dir_s,
            ]),
            &ctx,
        );
        let epoch = recovered_epoch(&dump, &ctx);
        assert!(epoch <= BATCHES, "{ctx}: impossible epoch {epoch}");
        let clean = stdout_of(
            &run_harness(&[
                "clean",
                "--program",
                program,
                "--seed",
                &seed_s,
                "--upto",
                &epoch.to_string(),
            ]),
            &ctx,
        );
        assert_eq!(
            state_block(&dump, &ctx),
            state_block(&clean, &ctx),
            "{ctx}: recovered state diverged after SIGKILL at {delay}ms"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Corrupting durable files by hand must surface as a typed error from
/// the harness (exit code 3 with a diagnostic), never a panic or a
/// silent wrong answer.
#[test]
fn corrupted_directories_fail_typed_not_panicked() {
    let seed_s = seed().to_string();
    let dir = temp_dir("corrupt");
    let dir_s = dir.to_str().expect("utf-8 temp dir");
    // Build a healthy directory first.
    stdout_of(
        &run_harness(&[
            "run",
            "--program",
            "tc",
            "--seed",
            &seed_s,
            "--dir",
            dir_s,
            "--batches",
            "6",
            "--checkpoint-every",
            "3",
        ]),
        "corrupt/setup",
    );
    // Flip a byte in the middle of every durable file (manifest, WAL,
    // checkpoint). Recovery must either succeed (the flip hit slack the
    // format tolerates, e.g. the truncatable WAL tail) or fail with the
    // typed storage error path — exit code 3, diagnostic on stderr,
    // never a crash signal.
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("entry").path();
        let mut bytes = std::fs::read(&path).expect("read file");
        if bytes.is_empty() {
            continue;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let out = run_harness(&["dump", "--program", "tc", "--seed", &seed_s, "--dir", dir_s]);
        let code = out.status.code();
        assert!(
            code == Some(0) || code == Some(3),
            "corrupt {}: expected typed failure or tolerated flip, got {:?}\nstderr: {}",
            path.display(),
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        if code == Some(3) {
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("recovery failed"),
                "corrupt {}: missing diagnostic: {stderr}",
                path.display()
            );
        }
        // Restore for the next file's turn.
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("restore file");
    }
    std::fs::remove_dir_all(&dir).ok();
}
