//! Snapshot-isolation property suite for the multi-tenant query service.
//!
//! The contract under test: while a writer applies randomized
//! insert/retract batches, every concurrently served answer equals
//! membership in the **from-scratch fixpoint of the exact epoch the
//! answer reports** — never a torn, mid-batch, or mixed-epoch state. The
//! suite replays the writer's committed batch sequence after the fact to
//! reconstruct the ground-truth fixpoint at every epoch and checks every
//! recorded answer against it.

use datalog_expressiveness::datalog::programs::transitive_closure;
use datalog_expressiveness::datalog::{EvalOptions, Evaluator, Fact};
use datalog_expressiveness::service::{Request, Response, ServiceBuilder, TenantId, TenantPolicy};
use datalog_expressiveness::structures::generators::random_digraph;
use datalog_expressiveness::structures::{Element, RelId, SplitMix64, Structure, Vocabulary};
use datalog_expressiveness::ProgramQuery;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N: u32 = 10; // universe size
const BATCHES: usize = 24;
const READERS: usize = 4;

fn edge() -> RelId {
    RelId(0)
}

/// A random batch over the edge relation: a few inserts and a few
/// retracts, all in-universe; retracts may miss (multiset no-op).
fn random_batch(rng: &mut SplitMix64) -> (Vec<Fact>, Vec<Fact>) {
    let pick = |rng: &mut SplitMix64| loop {
        let u = rng.gen_range(0..N);
        let v = rng.gen_range(0..N);
        if u != v {
            return vec![u, v];
        }
    };
    let inserts: Vec<Fact> = (0..rng.gen_range(1u32..4))
        .map(|_| (edge(), pick(rng)))
        .collect();
    let retracts: Vec<Fact> = (0..rng.gen_range(0u32..3))
        .map(|_| (edge(), pick(rng)))
        .collect();
    (inserts, retracts)
}

/// Ground truth: folds the committed batch sequence over the initial EDB
/// (retracts first, saturating multiset, exactly the writer's semantics)
/// and returns the transitive-closure fixpoint at every epoch
/// `0..=batches.len()`.
fn fixpoints_per_epoch(
    initial: &Structure,
    batches: &[(Vec<Fact>, Vec<Fact>)],
) -> Vec<HashSet<Vec<Element>>> {
    let vocab = Arc::new(Vocabulary::graph());
    let mut support: HashMap<Vec<Element>, u32> = HashMap::new();
    for t in initial.relation(edge()).iter() {
        *support.entry(t.to_vec()).or_insert(0) += 1;
    }
    let program = transitive_closure();
    let ev = Evaluator::new(&program);
    let fixpoint = |support: &HashMap<Vec<Element>, u32>| {
        let mut s = Structure::new(Arc::clone(&vocab), N as usize);
        for (t, &count) in support {
            if count > 0 {
                s.insert(edge(), t);
            }
        }
        ev.run(&s, EvalOptions::default()).idb[0]
            .iter()
            .map(|t| t.to_vec())
            .collect::<HashSet<_>>()
    };
    let mut truth = vec![fixpoint(&support)];
    for (inserts, retracts) in batches {
        for (_, t) in retracts {
            if let Some(c) = support.get_mut(t) {
                *c = c.saturating_sub(1);
            }
        }
        for (_, t) in inserts {
            *support.entry(t.clone()).or_insert(0) += 1;
        }
        truth.push(fixpoint(&support));
    }
    truth
}

#[test]
fn concurrent_readers_observe_only_committed_fixpoints() {
    let initial = random_digraph(N as usize, 0.2, 0x5e71).to_structure();
    let mut builder = ServiceBuilder::new(&initial).cache_capacity(64);
    let q = builder.register_query(
        "tc",
        ProgramQuery::at_tuple("tc", transitive_closure(), vec![0, 1]),
    );
    let tenants: Vec<TenantId> = (0..READERS)
        .map(|i| builder.register_tenant(TenantPolicy::unlimited(format!("reader-{i}"))))
        .collect();
    let svc = Arc::new(builder.build());
    // A second compiled copy of the query, for evaluating *held*
    // snapshots directly (outside the serve path).
    let direct = Arc::new(ProgramQuery::at_tuple(
        "tc",
        transitive_closure(),
        vec![0, 1],
    ));

    let done = AtomicBool::new(false);
    let mut committed: Vec<(Vec<Fact>, Vec<Fact>)> = Vec::new();
    // (tuple, holds, epoch) as observed by each reader, via the full
    // serve path (admission → snapshot → shared cache → evaluation).
    let mut observed: Vec<Vec<(Vec<Element>, bool, u64)>> = Vec::new();

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for (i, &tenant) in tenants.iter().enumerate() {
            let svc = Arc::clone(&svc);
            let direct = Arc::clone(&direct);
            let done = &done;
            readers.push(scope.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(0xbeef + i as u64);
                let mut seen: Vec<(Vec<Element>, bool, u64)> = Vec::new();
                let mut last_epoch = 0u64;
                while !done.load(Ordering::SeqCst) || seen.len() < 50 {
                    // A deliberately small tuple pool makes repeats (and
                    // thus shared-cache hits) common under contention.
                    let u = rng.gen_range(0..4);
                    let v = rng.gen_range(0..N);
                    match svc.serve(&Request {
                        tenant,
                        query: q,
                        tuple: vec![u, v],
                    }) {
                        Response::Answer {
                            holds,
                            epoch,
                            cached: _,
                        } => {
                            assert!(
                                epoch >= last_epoch,
                                "reader {i}: epoch went backwards ({last_epoch} -> {epoch})"
                            );
                            last_epoch = epoch;
                            seen.push((vec![u, v], holds, epoch));
                        }
                        other => panic!("reader {i}: unexpected response {other:?}"),
                    }
                    // Additionally pin the *held snapshot* contract: an
                    // acquired snapshot stays a committed fixpoint even
                    // while the writer keeps publishing newer epochs.
                    if seen.len().is_multiple_of(16) {
                        let snap = svc.snapshot();
                        let tuple = vec![rng.gen_range(0..N), rng.gen_range(0..N)];
                        std::thread::yield_now();
                        let gov = datalog_expressiveness::structures::Governor::unlimited();
                        let holds = direct
                            .try_eval_at_uncached(snap.edb(), &tuple, &gov)
                            .unwrap();
                        seen.push((tuple, holds, snap.epoch()));
                    }
                }
                seen
            }));
        }

        // The writer: randomized batches, committed while every reader
        // hammers the serve path.
        let mut rng = SplitMix64::seed_from_u64(0x317e);
        for _ in 0..BATCHES {
            let (inserts, retracts) = random_batch(&mut rng);
            let outcome = svc.apply_batch(&inserts, &retracts);
            committed.push((inserts, retracts));
            assert_eq!(outcome.epoch, committed.len() as u64);
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);
        for r in readers {
            observed.push(r.join().expect("reader thread panicked"));
        }
    });

    // Replay: every observed answer must equal membership in the
    // fixpoint of exactly the epoch it reported.
    let truth = fixpoints_per_epoch(&initial, &committed);
    let mut checked = 0usize;
    for (i, seen) in observed.iter().enumerate() {
        for (tuple, holds, epoch) in seen {
            let expect = truth[*epoch as usize].contains(tuple);
            assert_eq!(
                *holds, expect,
                "reader {i}: answer for {tuple:?} at epoch {epoch} is not that epoch's fixpoint"
            );
            checked += 1;
        }
    }
    assert!(checked >= READERS * 50, "too few observations: {checked}");

    // The repeat-heavy tuple pool must have produced shared-cache hits,
    // and nobody was ever rejected or interrupted.
    let m = svc.metrics();
    assert_eq!(m.rejected, 0);
    assert_eq!(m.interrupted, 0);
    assert!(m.cache_hits > 0, "no cache hits under repeat traffic");
    assert_eq!(m.batches, BATCHES as u64);
}
