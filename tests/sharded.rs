//! Sharded parallel evaluation: hash-partitioned deltas with inter-worker
//! exchange at stage barriers.
//!
//! The load-bearing guarantee is that sharding is invisible to the paper's
//! semantics: the global stage loop is preserved, so Theorem 3.6 stage
//! identity holds for **any** worker count. These tests pin that down:
//!
//! 1. **Stage identity**: for every program, every planner/lowering
//!    combination, and `W ∈ {1, 2, 4, 8}`, the sharded run produces the
//!    same tuple set at every stage as the unsharded run. (Counters such
//!    as `join_probes` may differ — each worker walks the full rule list
//!    over its delta sub-range — so the comparison is set-based.)
//! 2. **Magic sets**: seeded demand-driven runs of the rewritten programs
//!    are likewise stage-identical under sharding, for every binding
//!    pattern of the goal.
//! 3. **Interrupt/resume through exchange seams**: a governed sharded run
//!    that trips mid-evaluation resumes to the same stages as a straight
//!    run — checkpoints never contain in-flight exchange tuples, and the
//!    resumed run re-derives its owner ranges from the committed deltas.
//! 4. **Shard statistics sanity**: owned-tuple counts sum to the derived
//!    total, `W = 1` exchanges nothing, and the skew metric is finite.

use datalog_expressiveness::datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use datalog_expressiveness::datalog::{
    BindingPattern, EvalOptions, Evaluator, MagicProgram, PlannerMode, Program,
};
use datalog_expressiveness::structures::generators::{random_dag, random_digraph};
use datalog_expressiveness::structures::govern::chaos;
use datalog_expressiveness::structures::{Governor, JoinLowering, Structure, Vocabulary};
use std::sync::Arc;

/// One structure appropriate for each program's vocabulary (mirrors the
/// chaos suite's fixtures).
fn fixture_for(program: &Program, seed: u64) -> Structure {
    let vocab = program.vocabulary();
    if vocab.constant_count() == 4 {
        let mut g = random_dag(8, 0.35, seed);
        g.set_distinguished(vec![0, 6, 1, 7]);
        g.to_structure_with(Arc::new(two_pairs_vocabulary()))
    } else if vocab.relation_count() == 2 {
        let mut v = Vocabulary::new();
        let r = v.add_relation("R", 3);
        let a = v.add_relation("A", 1);
        let mut s = Structure::new(Arc::new(v), 7);
        s.insert(a, &[0]);
        s.insert(a, &[1]);
        for &(x, y, z) in &[(2, 0, 1), (3, 2, 0), (4, 3, 2), (5, 6, 6), (6, 4, 5)] {
            s.insert(r, &[x, y, z]);
        }
        s
    } else {
        random_digraph(9, 0.25, seed).to_structure()
    }
}

fn all_programs() -> Vec<Program> {
    vec![
        transitive_closure(),
        avoiding_path(),
        q_prime(),
        q_kl(2, 1),
        path_systems(),
        two_disjoint_paths_acyclic(),
        two_disjoint_paths_paper_rules(),
    ]
}

/// The planner/lowering matrix every differential check runs under.
fn option_matrix() -> Vec<(&'static str, EvalOptions)> {
    vec![
        ("textual", EvalOptions::default()),
        (
            "cost-binary",
            EvalOptions {
                planner: PlannerMode::CostBased,
                lowering: JoinLowering::Binary,
                ..EvalOptions::default()
            },
        ),
        (
            "cost-generic",
            EvalOptions {
                planner: PlannerMode::CostBased,
                lowering: JoinLowering::Generic,
                ..EvalOptions::default()
            },
        ),
        (
            "cost-auto",
            EvalOptions {
                planner: PlannerMode::CostBased,
                lowering: JoinLowering::Auto,
                ..EvalOptions::default()
            },
        ),
    ]
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn sharded_stages_match_unsharded_for_every_worker_count() {
    for program in all_programs() {
        let s = fixture_for(&program, 9_100);
        let label = program.idb_name(program.goal()).to_string();
        let eval = Evaluator::new(&program);
        for (mode, base) in option_matrix() {
            let baseline = eval.run(&s, base);
            for w in WORKER_COUNTS {
                let sharded = eval.run(&s, base.with_shards(Some(w)));
                assert!(
                    baseline.same_stages(&sharded),
                    "{}/{mode}: sharded W={w} diverged from unsharded",
                    label
                );
                assert_eq!(
                    baseline.converged, sharded.converged,
                    "{}/{mode}: convergence flag differs at W={w}",
                    label
                );
                let stats = sharded.shard.as_ref().unwrap_or_else(|| {
                    panic!("{}/{mode}: sharded run reported no ShardStats", label)
                });
                assert_eq!(stats.workers, w, "{}/{mode}", label);
            }
        }
    }
}

#[test]
fn sharded_naive_evaluation_matches_semi_naive() {
    // Naive stages have no delta windows; sharding falls back to rule
    // partitioning there but must still route derivations by owner.
    for program in all_programs() {
        let s = fixture_for(&program, 9_200);
        let label = program.idb_name(program.goal()).to_string();
        let eval = Evaluator::new(&program);
        let baseline = eval.run(&s, EvalOptions::default());
        for w in [2, 8] {
            let naive = eval.run(
                &s,
                EvalOptions {
                    semi_naive: false,
                    shards: Some(w),
                    ..EvalOptions::default()
                },
            );
            assert!(
                baseline.same_stages(&naive),
                "{}: naive sharded W={w} diverged",
                label
            );
        }
    }
}

#[test]
fn sharded_magic_runs_match_unsharded_for_every_binding_pattern() {
    for program in all_programs() {
        let s = fixture_for(&program, 9_300);
        let label = program.idb_name(program.goal()).to_string();
        let arity = program.idb_arity(program.goal());
        let n = s.universe_size() as u32;
        let query: Vec<u32> = (0..arity).map(|i| (2 * i as u32 + 1) % n.max(1)).collect();
        for mask in 0..1usize << arity {
            let pattern = BindingPattern::new((0..arity).map(|i| mask >> i & 1 == 1).collect());
            let magic = match MagicProgram::rewrite(&program, &pattern) {
                Ok(m) => m,
                Err(_) => continue,
            };
            let seeds = vec![(magic.magic_goal(), magic.seed(&query))];
            let compiled = magic.compile();
            let baseline = compiled
                .try_run_seeded(&s, EvalOptions::default(), &seeds)
                .unwrap_or_else(|e| panic!("{}: seeded baseline: {e:?}", label));
            for w in [2, 4] {
                let sharded = compiled
                    .try_run_seeded(&s, EvalOptions::default().with_shards(Some(w)), &seeds)
                    .unwrap_or_else(|e| panic!("{}: seeded sharded W={w}: {e:?}", label));
                assert!(
                    baseline.same_stages(&sharded),
                    "{}: magic {pattern} sharded W={w} diverged",
                    label
                );
            }
        }
    }
}

#[test]
fn sharded_interrupt_resume_equals_straight_run() {
    let programs = all_programs();
    for index in 0..24usize {
        let program = &programs[index % programs.len()];
        let s = fixture_for(program, 9_400 + (index % programs.len()) as u64);
        let w = WORKER_COUNTS[index % WORKER_COUNTS.len()];
        let options = EvalOptions::default().with_shards(Some(w));
        let eval = Evaluator::new(program);
        let baseline = eval.run(&s, options);
        let (label, gov) = chaos::injection(0x4b56_1990, index, 60);
        match eval.try_run_governed(&s, options, &gov) {
            Ok(done) => assert!(
                baseline.same_stages(&done),
                "{label}: governed sharded W={w} diverged (program {index})"
            ),
            Err(interrupted) => {
                let resumed = eval
                    .resume(&s, options, &Governor::unlimited(), interrupted.checkpoint)
                    .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}"));
                assert!(
                    baseline.same_stages(&resumed),
                    "{label}: resumed sharded W={w} diverged (program {index})"
                );
            }
        }
    }
}

#[test]
fn sharded_checkpoints_resume_under_different_worker_counts() {
    // A checkpoint records committed stages only — never in-flight exchange
    // queues — so it can be resumed under any worker count, including
    // unsharded, and still land on the same stages.
    let program = transitive_closure();
    let s = fixture_for(&program, 9_500);
    let eval = Evaluator::new(&program);
    let baseline = eval.run(&s, EvalOptions::default());
    let (_, gov) = chaos::injection(0x4b56_1990, 3, 30);
    if let Err(interrupted) =
        eval.try_run_governed(&s, EvalOptions::default().with_shards(Some(4)), &gov)
    {
        for resume_opts in [
            EvalOptions::default(),
            EvalOptions::default().with_shards(Some(2)),
            EvalOptions::default().with_shards(Some(8)),
        ] {
            let resumed = eval
                .resume(
                    &s,
                    resume_opts,
                    &Governor::unlimited(),
                    interrupted.checkpoint.clone(),
                )
                .unwrap_or_else(|e| panic!("cross-shard resume interrupted: {e}"));
            assert!(
                baseline.same_stages(&resumed),
                "cross-shard resume diverged"
            );
        }
    }
}

#[test]
fn shard_stats_are_consistent() {
    let program = transitive_closure();
    let s = random_digraph(24, 0.2, 77).to_structure();
    let eval = Evaluator::new(&program);

    // W = 1: everything is local, nothing crosses a shard boundary.
    let solo = eval.run(&s, EvalOptions::default().with_shards(Some(1)));
    let solo_stats = solo.shard.as_ref().expect("shard stats");
    assert_eq!(solo_stats.exchanged_tuples, 0, "W=1 must exchange nothing");
    assert_eq!(solo_stats.workers, 1);

    for w in [2, 4, 8] {
        let run = eval.run(&s, EvalOptions::default().with_shards(Some(w)));
        let stats = run.shard.as_ref().expect("shard stats");
        assert_eq!(stats.owned.len(), w);
        let owned_total: u64 = stats.owned.iter().sum();
        let derived: u64 = run.idb.iter().map(|r| r.len() as u64).sum();
        assert_eq!(
            owned_total, derived,
            "W={w}: per-worker owned counts must sum to the derived total"
        );
        assert!(
            stats.skew_pct() >= 0.0 && stats.skew_pct().is_finite(),
            "W={w}"
        );
        assert_eq!(stats.idb_keys.len(), run.idb.len(), "W={w}");
        assert!(
            stats.local_variants + stats.exchange_variants > 0,
            "W={w}: planner classified no variants"
        );
    }
}

// ---------------------------------------------------------------------
// Incremental maintenance under sharding
// ---------------------------------------------------------------------

use datalog_expressiveness::datalog::{Fact, IdbId, IncrementalEngine};
use datalog_expressiveness::structures::{Element, SplitMix64};
use std::collections::HashMap;

/// A random mutation batch against the engine's current EDB (mirrors the
/// incremental suite's schedule generator).
fn random_batch(engine: &IncrementalEngine, rng: &mut SplitMix64) -> (Vec<Fact>, Vec<Fact>) {
    let s = engine.edb_structure();
    let n = s.universe_size() as u32;
    let mut inserts = Vec::new();
    let mut retracts = Vec::new();
    for rel in s.vocabulary().relations() {
        for t in s.relation(rel).iter() {
            if rng.gen_bool(0.25) {
                retracts.push((rel, t.to_vec()));
            }
        }
        let arity = s.vocabulary().arity(rel);
        for _ in 0..rng.gen_range(0u32..4) {
            let t: Vec<Element> = (0..arity).map(|_| rng.gen_range(0..n)).collect();
            inserts.push((rel, t));
        }
    }
    (inserts, retracts)
}

/// Live tuple → derivation-support map of one maintained IDB predicate.
fn support_map(engine: &IncrementalEngine, i: usize) -> HashMap<Vec<Element>, u32> {
    let store = engine.idb_store(IdbId(i));
    store
        .store()
        .iter()
        .zip(store.support_counts())
        .filter(|&(_, &c)| c > 0)
        .map(|(t, &c)| (t.to_vec(), c))
        .collect()
}

#[test]
fn sharded_incremental_engine_matches_unsharded_supports_exactly() {
    // Counting exactness: every derivation must be credited exactly once
    // globally, so the sharded engine's per-tuple support counts — not
    // just its live sets — must equal the unsharded engine's after every
    // batch of a mutation schedule.
    for (pi, program) in all_programs().iter().enumerate() {
        for w in [1usize, 2, 4] {
            let s = fixture_for(program, 9_600 + pi as u64);
            let (mut plain, _) =
                IncrementalEngine::from_structure(program, &s, EvalOptions::default());
            let (mut sharded, first) = IncrementalEngine::from_structure(
                program,
                &s,
                EvalOptions::default().with_shards(Some(w)),
            );
            if w == 1 {
                assert_eq!(first.exchanged_tuples, 0, "W=1 exchanges nothing");
            }
            let mut rng = SplitMix64::seed_from_u64(0x1990_9600 + pi as u64 * 31 + w as u64);
            for batch in 0..4u32 {
                let (inserts, retracts) = random_batch(&plain, &mut rng);
                plain.apply_batch(&inserts, &retracts);
                sharded.apply_batch(&inserts, &retracts);
                for i in 0..program.idb_count() {
                    assert_eq!(
                        support_map(&plain, i),
                        support_map(&sharded, i),
                        "program {pi} W={w} batch {batch}: support diverged on IDB {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_initial_batch_has_stage_identity() {
    // Theorem 3.6 stage identity survives sharded maintenance: the
    // initial batch derives, stage by stage, exactly the from-scratch
    // semi-naive stage counts — for any worker count.
    for (pi, program) in all_programs().iter().enumerate() {
        let s = fixture_for(program, 9_700 + pi as u64);
        let scratch = Evaluator::new(program).run(&s, EvalOptions::default());
        let scratch_stages: Vec<Vec<usize>> = scratch
            .stats
            .iter()
            .map(|st| st.new_tuples.clone())
            .collect();
        for w in [1usize, 2, 8] {
            let (_, summary) = IncrementalEngine::from_structure(
                program,
                &s,
                EvalOptions::default().with_shards(Some(w)),
            );
            assert_eq!(
                summary.stage_new, scratch_stages,
                "program {pi} W={w}: initial-batch stage identity"
            );
        }
    }
}

#[test]
fn sharded_batch_interrupt_resume_equals_straight_batch() {
    // A governed sharded batch interrupted mid-pass and resumed must land
    // on exactly the straight batch's state: the owner-sorted EDB appends
    // and the pure-function shard plan are both re-derived from committed
    // state, and checkpoints hold no in-flight exchange tuples.
    let programs = all_programs();
    for index in 0..16usize {
        let program = &programs[index % programs.len()];
        let s = fixture_for(program, 9_800 + (index % programs.len()) as u64);
        let w = WORKER_COUNTS[index % WORKER_COUNTS.len()];
        let options = EvalOptions::default().with_shards(Some(w));
        let (mut straight, _) = IncrementalEngine::from_structure(program, &s, options);
        let (mut chaotic, _) = IncrementalEngine::from_structure(program, &s, options);
        let mut rng = SplitMix64::seed_from_u64(0x1990_9800 + index as u64);
        let (inserts, retracts) = random_batch(&straight, &mut rng);
        let expect = straight.apply_batch(&inserts, &retracts);
        let (label, gov) = chaos::injection(0x4b56_1990, index, 40);
        let got = match chaotic.try_apply_batch_governed(&inserts, &retracts, &gov) {
            Ok(summary) => summary,
            Err(_) => chaotic
                .resume_batch(&Governor::unlimited())
                .unwrap_or_else(|e| panic!("{label}: unlimited resume interrupted: {e}")),
        };
        assert_eq!(
            expect.stage_new, got.stage_new,
            "{label} W={w}: stage counts diverged across resume"
        );
        for i in 0..program.idb_count() {
            assert_eq!(
                support_map(&straight, i),
                support_map(&chaotic, i),
                "{label} W={w}: support diverged on IDB {i}"
            );
        }
    }
}
